//! The register-bytecode execution backend.
//!
//! [`compile`](LaunchProgram::prepare) lowers a verified `grover-ir`
//! function into a compact, flat op array: the CFG is linearised with
//! pre-resolved branch targets, constants and `__local` buffer pointers are
//! interned into a register-file template, phi nodes become per-edge
//! parallel-copy move lists, work-item geometry queries with constant
//! dimensions are pre-resolved, and the ubiquitous `gep`+`load`/`store`
//! pairs are fused into single address-computing memory ops. The dispatch
//! loop then executes ops by index — no per-step `HashMap` or block
//! lookups, no per-instruction allocation, no `Option` unwrapping on
//! register reads.
//!
//! The backend is observably identical to the tree-walking interpreter for
//! verified kernels: same output buffers bit-for-bit, same
//! [`LaunchStats`](crate::LaunchStats), same trace streams (including
//! `pc` values, which carry the original IR value ids), same budget
//! accounting and fault-injection sites. Instruction counting mirrors the
//! interpreter exactly: every op increments the work-item instruction
//! counter and spends launch budget *before* executing (a fused op does so
//! twice — once per original IR instruction), and phi parallel-copies add
//! their count without spending budget, exactly like the interpreter's
//! block-head phi batch.
//!
//! Malformed-IR corner cases the interpreter reports at runtime (entry
//! blocks with phis, missing terminators, phis outside a block head or
//! with missing incoming edges) are lowered to dedicated failure ops that
//! raise the identical [`ExecError`] at the same point in execution, so
//! compilation itself is infallible.

use grover_ir::{
    AddressSpace, BinOp, BlockId, Builtin, CastKind, CmpPred, ConstVal, Function, Inst, Scalar,
    Type, ValueDef, ValueId,
};

use crate::buffer::BufferData;
use crate::interp::{
    corrupt_val, emit_at, eval_bin, eval_call, eval_cast, eval_cmp, mem_load, mem_store,
    workitem_query, GroupRun, GroupStats, LaunchCtx, LocalBudget,
};
use crate::trace::{TraceOp, TraceSink};
use crate::val::{PtrVal, Val};
use crate::ExecError;

/// Which execution engine a launch runs on.
///
/// Both backends produce bit-identical output buffers,
/// [`LaunchStats`](crate::LaunchStats) and trace streams for verified
/// kernels; `Bytecode` lowers the kernel once per launch and executes the
/// lowered form in a tight dispatch loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The tree-walking NDRange interpreter (the reference engine).
    #[default]
    Interp,
    /// The compiled register-bytecode engine.
    Bytecode,
}

impl Backend {
    /// Stable lower-case name, used in JSON output and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Bytecode => "bytecode",
        }
    }

    /// Parse a backend name as accepted by the CLI `--backend` flag.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "interp" => Some(Backend::Interp),
            "bytecode" => Some(Backend::Bytecode),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One bytecode op. Operands are register indices (= IR value indices)
/// into the flat per-item register file; branch targets are op indices.
#[derive(Clone, Debug)]
enum Op {
    /// Binary arithmetic/logic: `regs[dst] = lhs <op> rhs`.
    Bin {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// Comparison: `regs[dst] = lhs <pred> rhs`.
    Cmp {
        pred: CmpPred,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `regs[dst] = cond ? then_r : else_r` (`cond` must be bool).
    Select {
        dst: u32,
        cond: u32,
        then_r: u32,
        else_r: u32,
    },
    /// Scalar cast.
    Cast {
        kind: CastKind,
        dst: u32,
        src: u32,
        to: Type,
    },
    /// Work-item geometry query with a compile-time constant dimension.
    Query { which: Builtin, dim: u8, dst: u32 },
    /// Generic builtin call; argument registers gathered at dispatch.
    Call {
        builtin: Builtin,
        dst: u32,
        args: Box<[u32]>,
    },
    /// Address arithmetic: `regs[dst] = base + index * elem` bytes.
    Gep {
        dst: u32,
        base: u32,
        index: u32,
        elem: i64,
    },
    /// A `gep` whose base has a non-pointer static type: performs the
    /// interpreter's runtime operand checks, then raises its error.
    GepNoPointee { base: u32, index: u32 },
    /// Memory load; `bytes`/`lanes` pre-computed from the result type,
    /// `pc` carries the original IR value id for the trace stream.
    Load {
        dst: u32,
        ptr: u32,
        lanes: u8,
        bytes: u32,
        pc: u32,
    },
    /// Fused `gep`+`load` (gep immediately precedes its only use):
    /// counts and spends as two instructions.
    GepLoad {
        dst: u32,
        base: u32,
        index: u32,
        elem: i64,
        lanes: u8,
        bytes: u32,
        pc: u32,
    },
    /// Memory store.
    Store {
        ptr: u32,
        value: u32,
        bytes: u32,
        pc: u32,
    },
    /// Fused `gep`+`store`: counts and spends as two instructions.
    GepStore {
        base: u32,
        index: u32,
        elem: i64,
        value: u32,
        bytes: u32,
        pc: u32,
    },
    /// `regs[dst] = vector[lane]`.
    ExtractLane { dst: u32, vector: u32, lane: u32 },
    /// `regs[dst] = vector with [lane] = value`.
    InsertLane {
        dst: u32,
        vector: u32,
        lane: u32,
        value: u32,
    },
    /// Build an `n`-lane vector from scalar registers.
    BuildVector { dst: u32, lanes: [u32; 4], n: u8 },
    /// Unconditional branch: apply the edge's phi moves, jump to `target`.
    Jump { target: u32, edge: u32 },
    /// Conditional branch (`cond` must be bool).
    CondJump {
        cond: u32,
        then_target: u32,
        then_edge: u32,
        else_target: u32,
        else_edge: u32,
    },
    /// Work-group barrier rendezvous; the op index is the identity the
    /// group must agree on (bijective with the IR barrier's value id).
    Barrier,
    /// Work-item return.
    Ret,
    /// Raise a pre-computed error after counting/spending (mirrors
    /// interpreter errors raised after the per-instruction budget spend).
    Fail(ExecError),
    /// Raise a pre-computed error without counting/spending (mirrors
    /// interpreter errors raised before the budget spend: fell-off-block,
    /// non-instruction block entries, entry-block phis).
    FailNoSpend(ExecError),
}

/// The phi parallel-copy list of one CFG edge.
#[derive(Clone, Debug)]
struct Edge {
    /// `(dst, src)` register moves, applied with parallel-copy semantics.
    moves: Box<[(u32, u32)]>,
    /// Phi count of the successor block: added to the work-item
    /// instruction counter without spending budget, like the
    /// interpreter's block-head phi batch.
    n_phis: u32,
    /// Successor block (the block whose phis this edge feeds); the
    /// profiler attributes the edge's phi executions to it.
    succ: u32,
    /// Set when some phi of the successor has no incoming entry for this
    /// edge's predecessor: taking the edge raises this error.
    fail: Option<ExecError>,
}

impl Edge {
    fn empty() -> Edge {
        Edge {
            moves: Box::new([]),
            n_phis: 0,
            succ: 0,
            fail: None,
        }
    }
}

/// A kernel lowered to register bytecode.
pub(crate) struct CompiledKernel {
    ops: Vec<Op>,
    edges: Vec<Edge>,
    /// Register-file template with constants and `__local` buffer
    /// pointers pre-decoded; parameters are seeded per launch.
    regs_base: Vec<Val>,
    /// Op index execution starts at.
    entry: u32,
    /// First op index of each block, in block order (non-decreasing): the
    /// profiler's op-index → block map. Ops past the last entry (the
    /// entry-phi / invalid-entry failure tail) belong to no block.
    block_start: Vec<u32>,
    /// Original IR value id of each block's first instruction (the
    /// block's stable label in profiles), `u32::MAX` for empty blocks.
    block_first_value: Vec<u32>,
}

/// A compiled kernel plus the launch's parameter seeds already applied to
/// the register template: what every worker of one launch executes.
pub(crate) struct LaunchProgram {
    compiled: CompiledKernel,
    regs_init: Vec<Val>,
}

impl LaunchProgram {
    /// Lower `f` and bake the launch's `(register, value)` parameter
    /// seeds into the register-file template.
    pub(crate) fn prepare(f: &Function, params: &[(usize, Val)]) -> LaunchProgram {
        let compiled = compile(f);
        let mut regs_init = compiled.regs_base.clone();
        for &(i, v) in params {
            regs_init[i] = v;
        }
        LaunchProgram {
            compiled,
            regs_init,
        }
    }
}

/// Raw profiling counters of one worker: dynamic execution counts per
/// bytecode op index and per phi edge. Merging is plain addition, so the
/// launch-wide totals are bit-identical under any work-group schedule.
#[derive(Default)]
pub(crate) struct ProfBuf {
    op_counts: Vec<u64>,
    edge_counts: Vec<u64>,
}

impl ProfBuf {
    /// A zeroed buffer sized for `prog`.
    pub(crate) fn for_program(prog: &LaunchProgram) -> ProfBuf {
        ProfBuf {
            op_counts: vec![0; prog.compiled.ops.len()],
            edge_counts: vec![0; prog.compiled.edges.len()],
        }
    }

    /// Add another worker's counts into this buffer.
    pub(crate) fn merge(&mut self, other: &ProfBuf) {
        for (a, b) in self.op_counts.iter_mut().zip(&other.op_counts) {
            *a += b;
        }
        for (a, b) in self.edge_counts.iter_mut().zip(&other.edge_counts) {
            *a += b;
        }
    }
}

/// One row of the per-opcode profile table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpKindProfile {
    /// Stable opcode-kind tag (the profiler's op taxonomy — see
    /// DESIGN.md §17): `bin`, `cmp`, `select`, `cast`, `query`, `call`,
    /// `gep`, `load`, `gep.load`, `store`, `gep.store`, `extract`,
    /// `insert`, `bvec`, `phi`, `jump`, `cjump`, `barrier`, `ret`.
    pub kind: &'static str,
    /// Dynamic executions of ops of this kind, summed over all work-items.
    pub count: u64,
    /// Charge units attributed — the contribution to
    /// [`LaunchStats::instructions`](crate::LaunchStats): 2 per fused
    /// `gep.load`/`gep.store` execution, 1 per phi, 1 otherwise.
    pub charged: u64,
}

/// One row of the per-basic-block profile table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockProfile {
    /// Block index in the original IR's block order.
    pub block: u32,
    /// Original IR value id of the block's first instruction (`None` for
    /// an empty block) — the stable label tying the row back to the IR
    /// and the golden disassembly.
    pub first_value: Option<u32>,
    /// Dynamic op executions attributed to this block (phis included).
    pub count: u64,
    /// Charge units attributed to this block.
    pub charged: u64,
}

/// The aggregated per-opcode/per-block execution profile of one bytecode
/// launch. `total_charged` reconciles exactly with
/// [`LaunchStats::instructions`](crate::LaunchStats) for a successful
/// launch — every budget charge unit (including the double charge of
/// fused memory ops and the no-spend phi count) is attributed to exactly
/// one opcode kind and one block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Per-opcode-kind rows, in taxonomy order, zero-count kinds omitted.
    pub ops: Vec<OpKindProfile>,
    /// Per-basic-block rows, in block order, zero-count blocks omitted.
    pub blocks: Vec<BlockProfile>,
    /// Total dynamic op executions (phis counted individually).
    pub total_count: u64,
    /// Total charge units — equals `LaunchStats::instructions`.
    pub total_charged: u64,
}

/// Taxonomy order of the profile table (hot kinds first).
const KIND_ORDER: [&str; 22] = [
    "gep.load",
    "gep.store",
    "load",
    "store",
    "bin",
    "cmp",
    "select",
    "cast",
    "query",
    "call",
    "gep",
    "extract",
    "insert",
    "bvec",
    "phi",
    "jump",
    "cjump",
    "barrier",
    "ret",
    "gep.bad",
    "fail",
    "fail.nospend",
];

impl Op {
    /// Stable kind tag (profile taxonomy; a subset of [`KIND_ORDER`]).
    fn kind_name(&self) -> &'static str {
        match self {
            Op::Bin { .. } => "bin",
            Op::Cmp { .. } => "cmp",
            Op::Select { .. } => "select",
            Op::Cast { .. } => "cast",
            Op::Query { .. } => "query",
            Op::Call { .. } => "call",
            Op::Gep { .. } => "gep",
            Op::GepNoPointee { .. } => "gep.bad",
            Op::Load { .. } => "load",
            Op::GepLoad { .. } => "gep.load",
            Op::Store { .. } => "store",
            Op::GepStore { .. } => "gep.store",
            Op::ExtractLane { .. } => "extract",
            Op::InsertLane { .. } => "insert",
            Op::BuildVector { .. } => "bvec",
            Op::Jump { .. } => "jump",
            Op::CondJump { .. } => "cjump",
            Op::Barrier => "barrier",
            Op::Ret => "ret",
            Op::Fail(_) => "fail",
            Op::FailNoSpend(_) => "fail.nospend",
        }
    }

    /// Budget charge units one execution of this op contributes to
    /// `LaunchStats::instructions`: fused memory ops charge for both
    /// original IR instructions; `FailNoSpend` errors out before the
    /// charge.
    fn charge_units(&self) -> u64 {
        match self {
            Op::GepLoad { .. } | Op::GepStore { .. } => 2,
            Op::FailNoSpend(_) => 0,
            _ => 1,
        }
    }
}

impl LaunchProgram {
    /// Fold merged raw counters into the launch's [`OpProfile`].
    pub(crate) fn aggregate(&self, prof: &ProfBuf) -> OpProfile {
        let ck = &self.compiled;
        let nb = ck.block_start.len();
        let mut by_kind: std::collections::HashMap<&'static str, (u64, u64)> =
            std::collections::HashMap::new();
        let mut by_block: Vec<(u64, u64)> = vec![(0, 0); nb];

        // The op index → block map: block_start is non-decreasing, so the
        // owning block is the *last* one starting at or before the index
        // (empty blocks share their successor's start and own no ops).
        let block_of = |i: usize| -> Option<usize> {
            let p = ck.block_start.partition_point(|&s| (s as usize) <= i);
            p.checked_sub(1)
        };

        for (i, n) in prof.op_counts.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let op = &ck.ops[i];
            let charged = n * op.charge_units();
            let e = by_kind.entry(op.kind_name()).or_insert((0, 0));
            e.0 += n;
            e.1 += charged;
            if let Some(b) = block_of(i) {
                by_block[b].0 += n;
                by_block[b].1 += charged;
            }
        }
        // Phi executions: attributed to the edge's successor block, one
        // charge unit per phi (counted into `instructions` without a
        // budget spend, like the interpreter's block-head batch).
        for (j, n) in prof.edge_counts.iter().enumerate() {
            let e = &ck.edges[j];
            if *n == 0 || e.n_phis == 0 {
                continue;
            }
            let phis = n * u64::from(e.n_phis);
            let k = by_kind.entry("phi").or_insert((0, 0));
            k.0 += phis;
            k.1 += phis;
            if (e.succ as usize) < nb {
                by_block[e.succ as usize].0 += phis;
                by_block[e.succ as usize].1 += phis;
            }
        }

        let ops: Vec<OpKindProfile> = KIND_ORDER
            .iter()
            .filter_map(|&kind| {
                by_kind.get(kind).map(|&(count, charged)| OpKindProfile {
                    kind,
                    count,
                    charged,
                })
            })
            .collect();
        let blocks: Vec<BlockProfile> = by_block
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c > 0)
            .map(|(b, &(count, charged))| BlockProfile {
                block: b as u32,
                first_value: match ck.block_first_value[b] {
                    u32::MAX => None,
                    v => Some(v),
                },
                count,
                charged,
            })
            .collect();
        OpProfile {
            total_count: ops.iter().map(|o| o.count).sum(),
            total_charged: ops.iter().map(|o| o.charged).sum(),
            ops,
            blocks,
        }
    }
}

fn decode_const(c: &ConstVal) -> Val {
    match c {
        ConstVal::Bool(b) => Val::Bool(*b),
        ConstVal::I32(x) => Val::I32(*x),
        ConstVal::I64(x) => Val::I64(*x),
        ConstVal::F32Bits(b) => Val::F32(f32::from_bits(*b)),
    }
}

/// Visit every value operand of `inst` (used for use-counting).
fn for_each_operand(inst: &Inst, mut f: impl FnMut(ValueId)) {
    match inst {
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            f(*lhs);
            f(*rhs);
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            f(*cond);
            f(*then_val);
            f(*else_val);
        }
        Inst::Cast { value, .. } => f(*value),
        Inst::Call { args, .. } => args.iter().copied().for_each(f),
        Inst::Gep { base, index } => {
            f(*base);
            f(*index);
        }
        Inst::Load { ptr } => f(*ptr),
        Inst::Store { ptr, value } => {
            f(*ptr);
            f(*value);
        }
        Inst::ExtractLane { vector, lane } => {
            f(*vector);
            f(*lane);
        }
        Inst::InsertLane {
            vector,
            lane,
            value,
        } => {
            f(*vector);
            f(*lane);
            f(*value);
        }
        Inst::BuildVector { lanes } => lanes.iter().copied().for_each(f),
        Inst::Phi { incoming } => incoming.iter().for_each(|&(_, v)| f(v)),
        Inst::CondBr { cond, .. } => f(*cond),
        Inst::Barrier { .. } | Inst::Br { .. } | Inst::Ret => {}
    }
}

fn count_uses(f: &Function) -> Vec<u32> {
    let mut uses = vec![0u32; f.num_values()];
    for i in 0..f.num_values() {
        if let ValueDef::Inst(inst) = &f.value(ValueId(i as u32)).def {
            for_each_operand(inst, |u| uses[u.index()] += 1);
        }
    }
    uses
}

/// Build the phi parallel-copy edge from `pred` into a block whose
/// prologue phis are `phis`.
fn make_edge(phis: &[(ValueId, &[(BlockId, ValueId)])], pred: BlockId, succ: BlockId) -> Edge {
    let mut moves = Vec::with_capacity(phis.len());
    for (iv, incoming) in phis {
        match incoming.iter().find(|(b, _)| *b == pred) {
            Some((_, v)) => moves.push((iv.index() as u32, v.index() as u32)),
            None => {
                return Edge {
                    moves: Box::new([]),
                    n_phis: 0,
                    succ: succ.0,
                    fail: Some(ExecError::Internal("phi missing incoming edge".into())),
                }
            }
        }
    }
    Edge {
        n_phis: moves.len() as u32,
        moves: moves.into(),
        succ: succ.0,
        fail: None,
    }
}

/// Lower `f` to bytecode. Infallible: malformed-IR cases become failure
/// ops that raise the interpreter's exact error at the same point.
#[allow(clippy::too_many_lines)]
fn compile(f: &Function) -> CompiledKernel {
    let nv = f.num_values();
    let mut regs_base = vec![Val::I32(0); nv];
    for (i, reg) in regs_base.iter_mut().enumerate() {
        match &f.value(ValueId(i as u32)).def {
            ValueDef::Const(c) => *reg = decode_const(c),
            ValueDef::LocalBuf(id) => {
                *reg = Val::Ptr(PtrVal {
                    space: AddressSpace::Local,
                    buf: id.0,
                    offset: 0,
                })
            }
            _ => {}
        }
    }

    let uses = count_uses(f);
    let nb = f.num_blocks();

    // Prologue phis of every block (contiguous run from the block head,
    // terminated by the first non-phi or non-instruction entry — the same
    // scan rule the interpreter's block-head batch uses).
    type BlockPhis<'a> = Vec<(ValueId, &'a [(BlockId, ValueId)])>;
    let mut block_phis: Vec<BlockPhis<'_>> = Vec::with_capacity(nb);
    for b in 0..nb {
        let mut phis = Vec::new();
        for &iv in &f.block(BlockId(b as u32)).insts {
            match f.inst(iv) {
                Some(Inst::Phi { incoming }) => phis.push((iv, incoming.as_slice())),
                _ => break,
            }
        }
        block_phis.push(phis);
    }

    let mut edges = vec![Edge::empty()];
    let edge_for = |edges: &mut Vec<Edge>, succ: BlockId, pred: BlockId| -> u32 {
        let sb = succ.0 as usize;
        if sb >= nb || block_phis[sb].is_empty() {
            return 0;
        }
        edges.push(make_edge(&block_phis[sb], pred, succ));
        (edges.len() - 1) as u32
    };

    let mut ops: Vec<Op> = Vec::new();
    let mut block_start = vec![0u32; nb];
    let reg = |v: ValueId| v.index() as u32;
    for b in 0..nb {
        let bid = BlockId(b as u32);
        block_start[b] = ops.len() as u32;
        let insts = &f.block(bid).insts;
        let mut i = block_phis[b].len();
        while i < insts.len() {
            let iv = insts[i];
            let Some(inst) = f.inst(iv) else {
                ops.push(Op::FailNoSpend(ExecError::Internal(
                    "block entry is not an instruction".into(),
                )));
                i += 1;
                continue;
            };
            match inst {
                Inst::Bin { op, lhs, rhs } => ops.push(Op::Bin {
                    op: *op,
                    dst: reg(iv),
                    lhs: reg(*lhs),
                    rhs: reg(*rhs),
                }),
                Inst::Cmp { pred, lhs, rhs } => ops.push(Op::Cmp {
                    pred: *pred,
                    dst: reg(iv),
                    lhs: reg(*lhs),
                    rhs: reg(*rhs),
                }),
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                } => ops.push(Op::Select {
                    dst: reg(iv),
                    cond: reg(*cond),
                    then_r: reg(*then_val),
                    else_r: reg(*else_val),
                }),
                Inst::Cast { kind, value, to } => ops.push(Op::Cast {
                    kind: *kind,
                    dst: reg(iv),
                    src: reg(*value),
                    to: *to,
                }),
                Inst::Call { builtin, args } => {
                    // Pre-resolve geometry queries with a constant,
                    // in-range dimension; everything else dispatches
                    // through the shared `eval_call`.
                    let const_dim = if builtin.is_workitem_query() {
                        args.first().and_then(|&a| match &f.value(a).def {
                            ValueDef::Const(ConstVal::I32(x)) => Some(*x as i64),
                            ValueDef::Const(ConstVal::I64(x)) => Some(*x),
                            ValueDef::Const(ConstVal::Bool(x)) => Some(*x as i64),
                            _ => None,
                        })
                    } else {
                        None
                    };
                    match const_dim {
                        Some(d) if (0..3).contains(&d) => ops.push(Op::Query {
                            which: *builtin,
                            dim: d as u8,
                            dst: reg(iv),
                        }),
                        _ => ops.push(Op::Call {
                            builtin: *builtin,
                            dst: reg(iv),
                            args: args.iter().map(|&a| reg(a)).collect(),
                        }),
                    }
                }
                Inst::Gep { base, index } => {
                    let elem = f.ty(*base).pointee().map(|s| s.size_bytes() as i64);
                    let Some(elem) = elem else {
                        ops.push(Op::GepNoPointee {
                            base: reg(*base),
                            index: reg(*index),
                        });
                        i += 1;
                        continue;
                    };
                    // Fuse with an immediately following load/store that
                    // is this gep's only use: one op computes the address
                    // and touches memory (still counted and budgeted as
                    // the two original IR instructions).
                    let next = insts.get(i + 1).copied();
                    let fused = match next.and_then(|nv| f.inst(nv).map(|ni| (nv, ni))) {
                        Some((nv, Inst::Load { ptr })) if *ptr == iv && uses[iv.index()] == 1 => {
                            let ty = f.ty(nv);
                            ops.push(Op::GepLoad {
                                dst: reg(nv),
                                base: reg(*base),
                                index: reg(*index),
                                elem,
                                lanes: ty.lanes(),
                                bytes: ty.size_bytes() as u32,
                                pc: nv.0,
                            });
                            true
                        }
                        Some((nv, Inst::Store { ptr, value }))
                            if *ptr == iv && *value != iv && uses[iv.index()] == 1 =>
                        {
                            ops.push(Op::GepStore {
                                base: reg(*base),
                                index: reg(*index),
                                elem,
                                value: reg(*value),
                                bytes: f.ty(*value).size_bytes() as u32,
                                pc: nv.0,
                            });
                            true
                        }
                        _ => {
                            ops.push(Op::Gep {
                                dst: reg(iv),
                                base: reg(*base),
                                index: reg(*index),
                                elem,
                            });
                            false
                        }
                    };
                    if fused {
                        i += 2;
                        continue;
                    }
                }
                Inst::Load { ptr } => {
                    let ty = f.ty(iv);
                    ops.push(Op::Load {
                        dst: reg(iv),
                        ptr: reg(*ptr),
                        lanes: ty.lanes(),
                        bytes: ty.size_bytes() as u32,
                        pc: iv.0,
                    });
                }
                Inst::Store { ptr, value } => ops.push(Op::Store {
                    ptr: reg(*ptr),
                    value: reg(*value),
                    bytes: f.ty(*value).size_bytes() as u32,
                    pc: iv.0,
                }),
                Inst::ExtractLane { vector, lane } => ops.push(Op::ExtractLane {
                    dst: reg(iv),
                    vector: reg(*vector),
                    lane: reg(*lane),
                }),
                Inst::InsertLane {
                    vector,
                    lane,
                    value,
                } => ops.push(Op::InsertLane {
                    dst: reg(iv),
                    vector: reg(*vector),
                    lane: reg(*lane),
                    value: reg(*value),
                }),
                Inst::BuildVector { lanes } => {
                    if lanes.len() > 4 {
                        ops.push(Op::Fail(ExecError::Unsupported(
                            "vectors wider than 4 lanes".into(),
                        )));
                    } else {
                        let mut a = [0u32; 4];
                        for (j, &l) in lanes.iter().enumerate() {
                            a[j] = reg(l);
                        }
                        ops.push(Op::BuildVector {
                            dst: reg(iv),
                            lanes: a,
                            n: lanes.len() as u8,
                        });
                    }
                }
                Inst::Phi { .. } => ops.push(Op::Fail(ExecError::Internal(
                    "phi outside block head".into(),
                ))),
                Inst::Barrier { .. } => ops.push(Op::Barrier),
                Inst::Ret => ops.push(Op::Ret),
                Inst::Br { target } => {
                    if (target.0 as usize) < nb {
                        let edge = edge_for(&mut edges, *target, bid);
                        ops.push(Op::Jump {
                            target: target.0,
                            edge,
                        });
                    } else {
                        ops.push(Op::Fail(ExecError::Internal(
                            "branch to invalid block".into(),
                        )));
                    }
                }
                Inst::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    if (then_blk.0 as usize) < nb && (else_blk.0 as usize) < nb {
                        let then_edge = edge_for(&mut edges, *then_blk, bid);
                        let else_edge = edge_for(&mut edges, *else_blk, bid);
                        ops.push(Op::CondJump {
                            cond: reg(*cond),
                            then_target: then_blk.0,
                            then_edge,
                            else_target: else_blk.0,
                            else_edge,
                        });
                    } else {
                        ops.push(Op::Fail(ExecError::Internal(
                            "branch to invalid block".into(),
                        )));
                    }
                }
            }
            i += 1;
        }
        // The interpreter raises this (without spending budget) whenever
        // control reaches the end of a block's instruction list; only an
        // unconditional terminator as the last instruction makes the slot
        // unreachable.
        let terminated = matches!(
            insts.last().and_then(|&last| f.inst(last)),
            Some(Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret)
        );
        if !terminated {
            ops.push(Op::FailNoSpend(ExecError::Internal(
                "fell off the end of a block".into(),
            )));
        }
    }

    // Function entry: a phi in the entry block has no predecessor — the
    // interpreter fails on the first instruction without spending budget.
    // Back edges into the entry block still use its normal start.
    let eb = f.entry.0 as usize;
    let entry = if eb < nb && block_phis[eb].is_empty() {
        block_start[eb]
    } else if eb < nb {
        ops.push(Op::FailNoSpend(ExecError::Internal(
            "phi executed with no predecessor".into(),
        )));
        (ops.len() - 1) as u32
    } else {
        ops.push(Op::FailNoSpend(ExecError::Internal(
            "branch to invalid block".into(),
        )));
        (ops.len() - 1) as u32
    };

    // Patch branch targets from block ids to op indices.
    for op in &mut ops {
        match op {
            Op::Jump { target, .. } => *target = block_start[*target as usize],
            Op::CondJump {
                then_target,
                else_target,
                ..
            } => {
                *then_target = block_start[*then_target as usize];
                *else_target = block_start[*else_target as usize];
            }
            _ => {}
        }
    }

    let block_first_value: Vec<u32> = (0..nb)
        .map(|b| {
            f.block(BlockId(b as u32))
                .insts
                .first()
                .map_or(u32::MAX, |iv| iv.0)
        })
        .collect();

    CompiledKernel {
        ops,
        edges,
        regs_base,
        entry,
        block_start,
        block_first_value,
    }
}

/// Per-work-item bytecode execution state.
struct BcItem {
    regs: Vec<Val>,
    pc: u32,
    done: bool,
    insts: u64,
    lid: [u64; 3],
    wg: [u64; 3],
    local_linear: u32,
}

/// Per-worker scratch: work-item register files, the group's local memory
/// and the phi parallel-copy buffer, allocated once and reset per group.
#[derive(Default)]
pub(crate) struct BcScratch {
    items: Vec<BcItem>,
    local_mem: Vec<BufferData>,
    copy_buf: Vec<Val>,
}

enum BcStop {
    Barrier(u32),
    Done,
}

#[inline]
fn apply_edge(
    edges: &[Edge],
    idx: u32,
    wi: &mut BcItem,
    copy_buf: &mut Vec<Val>,
    prof: Option<&mut ProfBuf>,
) -> Result<(), ExecError> {
    let e = &edges[idx as usize];
    if let Some(err) = &e.fail {
        return Err(err.clone());
    }
    if let Some(p) = prof {
        p.edge_counts[idx as usize] += 1;
    }
    if !e.moves.is_empty() {
        // Parallel-copy semantics: read every source before writing any
        // destination, exactly like the interpreter's phi batch.
        copy_buf.clear();
        copy_buf.extend(e.moves.iter().map(|&(_, s)| wi.regs[s as usize]));
        for (j, &(d, _)) in e.moves.iter().enumerate() {
            wi.regs[d as usize] = copy_buf[j];
        }
    }
    wi.insts += u64::from(e.n_phis);
    Ok(())
}

/// Execute one work-group of a compiled launch. The exact mirror of the
/// interpreter's `run_group`: same deadline/fault hooks, local-memory
/// reset, barrier rendezvous rules and trace/statistics protocol.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_group(
    prog: &LaunchProgram,
    launch: &LaunchCtx<'_>,
    wg: [u64; 3],
    group_linear: u32,
    sink: &mut dyn TraceSink,
    budget: &mut LocalBudget<'_>,
    scratch: &mut BcScratch,
    mut prof: Option<&mut ProfBuf>,
) -> Result<GroupStats, ExecError> {
    let nd = launch.nd;

    launch.pool.check_deadline()?;
    #[cfg(feature = "fault-injection")]
    let corrupt_group = match &launch.fault {
        Some(i) => crate::fault::group_hook(i, group_linear)?,
        None => false,
    };
    #[cfg(not(feature = "fault-injection"))]
    let corrupt_group = false;
    #[cfg(feature = "fault-injection")]
    let load_offset = match &launch.fault {
        Some(i) => crate::fault::load_offset(i, group_linear).unwrap_or(0),
        None => 0,
    };
    #[cfg(not(feature = "fault-injection"))]
    let load_offset = 0;

    // (Re)initialise this group's local memory from the launch template.
    if scratch.local_mem.len() != launch.local_templ.len() {
        scratch.local_mem = launch
            .local_templ
            .iter()
            .map(|&(elem, elems)| match elem {
                Scalar::F32 => BufferData::F32(vec![0.0; elems]),
                Scalar::I32 | Scalar::Bool => BufferData::I32(vec![0; elems]),
                Scalar::I64 => BufferData::I64(vec![0; elems]),
            })
            .collect();
    } else {
        for data in &mut scratch.local_mem {
            match data {
                BufferData::F32(v) => v.fill(0.0),
                BufferData::I32(v) => v.fill(0),
                BufferData::I64(v) => v.fill(0),
            }
        }
    }

    // (Re)initialise the work-item states; register files are seeded by a
    // flat copy of the launch template (params and constants included).
    let (lsx, lsy, lsz) = (nd.local[0], nd.local[1], nd.local[2]);
    let n_items = (lsx * lsy * lsz) as usize;
    let regs_init = &prog.regs_init;
    if scratch.items.len() != n_items
        || scratch
            .items
            .first()
            .is_some_and(|it| it.regs.len() != regs_init.len())
    {
        scratch.items = (0..n_items)
            .map(|_| BcItem {
                regs: regs_init.clone(),
                pc: prog.compiled.entry,
                done: false,
                insts: 0,
                lid: [0, 0, 0],
                wg,
                local_linear: 0,
            })
            .collect();
    }
    let mut i = 0;
    for lz in 0..lsz {
        for ly in 0..lsy {
            for lx in 0..lsx {
                let wi = &mut scratch.items[i];
                wi.regs.copy_from_slice(regs_init);
                wi.pc = prog.compiled.entry;
                wi.done = false;
                wi.insts = 0;
                wi.lid = [lx, ly, lz];
                wi.wg = wg;
                wi.local_linear = i as u32;
                i += 1;
            }
        }
    }

    let BcScratch {
        items,
        local_mem,
        copy_buf,
    } = scratch;
    let mut run = GroupRun {
        launch,
        local_mem,
        group_linear,
        corrupt_stores: launch.corrupt_launch || corrupt_group,
        load_offset,
    };
    let wants = sink.wants_events();
    let mut stats = GroupStats {
        items: n_items as u64,
        ..GroupStats::default()
    };

    // Barrier-synchronised rounds, identical to the interpreter's.
    loop {
        let mut barrier_at: Option<u32> = None;
        let mut all_done = true;
        for wi in items.iter_mut() {
            if wi.done {
                continue;
            }
            let stop = run_item(
                &prog.compiled,
                &mut run,
                wi,
                copy_buf,
                sink,
                budget,
                wants,
                prof.as_deref_mut(),
            )?;
            match stop {
                BcStop::Done => {
                    wi.done = true;
                    sink.workitem_done(group_linear, wi.local_linear, wi.insts);
                    stats.instructions += wi.insts;
                    wi.insts = 0;
                }
                BcStop::Barrier(at) => {
                    all_done = false;
                    match barrier_at {
                        None => barrier_at = Some(at),
                        Some(prev) if prev == at => {}
                        Some(_) => return Err(ExecError::BarrierDivergence),
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if barrier_at.is_some() && items.iter().any(|w| w.done) {
            // Some items returned while others wait at a barrier.
            return Err(ExecError::BarrierDivergence);
        }
        stats.barriers += 1;
        sink.barrier(group_linear, n_items as u32);
    }
    Ok(stats)
}

/// The dispatch loop: run one work-item until it returns or reaches a
/// barrier. Every op increments the instruction counter and spends budget
/// before executing (fused ops twice), mirroring the interpreter's
/// per-instruction accounting and fault-site order.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_item(
    prog: &CompiledKernel,
    r: &mut GroupRun<'_, '_>,
    wi: &mut BcItem,
    copy_buf: &mut Vec<Val>,
    sink: &mut dyn TraceSink,
    budget: &mut LocalBudget<'_>,
    wants: bool,
    mut prof: Option<&mut ProfBuf>,
) -> Result<BcStop, ExecError> {
    let ops = &prog.ops;
    let edges = &prog.edges;
    loop {
        let op = &ops[wi.pc as usize];
        if let Op::FailNoSpend(e) = op {
            return Err(e.clone());
        }
        if let Some(p) = prof.as_deref_mut() {
            p.op_counts[wi.pc as usize] += 1;
        }
        wi.insts += 1;
        budget.spend()?;
        match op {
            Op::Bin { op, dst, lhs, rhs } => {
                wi.regs[*dst as usize] =
                    eval_bin(*op, wi.regs[*lhs as usize], wi.regs[*rhs as usize])?;
            }
            Op::Cmp {
                pred,
                dst,
                lhs,
                rhs,
            } => {
                wi.regs[*dst as usize] =
                    eval_cmp(*pred, wi.regs[*lhs as usize], wi.regs[*rhs as usize])?;
            }
            Op::Select {
                dst,
                cond,
                then_r,
                else_r,
            } => {
                let c = wi.regs[*cond as usize]
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeMismatch("select on non-bool".into()))?;
                wi.regs[*dst as usize] = if c {
                    wi.regs[*then_r as usize]
                } else {
                    wi.regs[*else_r as usize]
                };
            }
            Op::Cast { kind, dst, src, to } => {
                wi.regs[*dst as usize] = eval_cast(*kind, wi.regs[*src as usize], *to)?;
            }
            Op::Query { which, dim, dst } => {
                let v = workitem_query(&r.launch.nd, &wi.lid, &wi.wg, *which, *dim as usize);
                wi.regs[*dst as usize] = Val::I64(v as i64);
            }
            Op::Call { builtin, dst, args } => {
                let mut buf = [Val::I32(0); 4];
                let vals: &[Val] = if args.len() <= 4 {
                    for (j, &a) in args.iter().enumerate() {
                        buf[j] = wi.regs[a as usize];
                    }
                    &buf[..args.len()]
                } else {
                    copy_buf.clear();
                    copy_buf.extend(args.iter().map(|&a| wi.regs[a as usize]));
                    copy_buf
                };
                wi.regs[*dst as usize] = eval_call(&r.launch.nd, &wi.lid, &wi.wg, *builtin, vals)?;
            }
            Op::Gep {
                dst,
                base,
                index,
                elem,
            } => {
                let p = wi.regs[*base as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
                let idx = wi.regs[*index as usize]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
                wi.regs[*dst as usize] = Val::Ptr(PtrVal {
                    space: p.space,
                    buf: p.buf,
                    offset: p.offset + idx * elem,
                });
            }
            Op::GepNoPointee { base, index } => {
                wi.regs[*base as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
                wi.regs[*index as usize]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
                return Err(ExecError::TypeMismatch(
                    "gep through non-pointer type".into(),
                ));
            }
            Op::Load {
                dst,
                ptr,
                lanes,
                bytes,
                pc,
            } => {
                let p = wi.regs[*ptr as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("load through non-pointer".into()))?;
                let v = load_with_fault(r, p, *lanes, *bytes)?;
                if wants {
                    emit_at(sink, r, wi.local_linear, TraceOp::Load, p, *bytes, *pc);
                }
                wi.regs[*dst as usize] = v;
            }
            Op::GepLoad {
                dst,
                base,
                index,
                elem,
                lanes,
                bytes,
                pc,
            } => {
                let bp = wi.regs[*base as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
                let idx = wi.regs[*index as usize]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
                let p = PtrVal {
                    space: bp.space,
                    buf: bp.buf,
                    offset: bp.offset + idx * elem,
                };
                // Second IR instruction of the fused pair.
                wi.insts += 1;
                budget.spend()?;
                let v = load_with_fault(r, p, *lanes, *bytes)?;
                if wants {
                    emit_at(sink, r, wi.local_linear, TraceOp::Load, p, *bytes, *pc);
                }
                wi.regs[*dst as usize] = v;
            }
            Op::Store {
                ptr,
                value,
                bytes,
                pc,
            } => {
                let p = wi.regs[*ptr as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("store through non-pointer".into()))?;
                let mut v = wi.regs[*value as usize];
                if r.corrupt_stores && p.space == AddressSpace::Global {
                    v = corrupt_val(v);
                }
                mem_store(r, p, v)?;
                if wants {
                    emit_at(sink, r, wi.local_linear, TraceOp::Store, p, *bytes, *pc);
                }
            }
            Op::GepStore {
                base,
                index,
                elem,
                value,
                bytes,
                pc,
            } => {
                let bp = wi.regs[*base as usize]
                    .as_ptr()
                    .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
                let idx = wi.regs[*index as usize]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
                let p = PtrVal {
                    space: bp.space,
                    buf: bp.buf,
                    offset: bp.offset + idx * elem,
                };
                // Second IR instruction of the fused pair.
                wi.insts += 1;
                budget.spend()?;
                let mut v = wi.regs[*value as usize];
                if r.corrupt_stores && p.space == AddressSpace::Global {
                    v = corrupt_val(v);
                }
                mem_store(r, p, v)?;
                if wants {
                    emit_at(sink, r, wi.local_linear, TraceOp::Store, p, *bytes, *pc);
                }
            }
            Op::ExtractLane { dst, vector, lane } => {
                let v = wi.regs[*vector as usize];
                let i = wi.regs[*lane as usize].as_int().unwrap_or(0) as usize;
                wi.regs[*dst as usize] = v
                    .lane(i)
                    .ok_or_else(|| ExecError::TypeMismatch("extractlane out of range".into()))?;
            }
            Op::InsertLane {
                dst,
                vector,
                lane,
                value,
            } => {
                let v = wi.regs[*vector as usize];
                let i = wi.regs[*lane as usize].as_int().unwrap_or(0) as usize;
                let x = wi.regs[*value as usize];
                wi.regs[*dst as usize] = v
                    .with_lane(i, x)
                    .ok_or_else(|| ExecError::TypeMismatch("insertlane mismatch".into()))?;
            }
            Op::BuildVector { dst, lanes, n } => {
                let n = *n as usize;
                let mut gathered = [Val::I32(0); 4];
                for j in 0..n {
                    gathered[j] = wi.regs[lanes[j] as usize];
                }
                let vals = &gathered[..n];
                wi.regs[*dst as usize] = build_vector(vals)?;
            }
            Op::Jump { target, edge } => {
                apply_edge(edges, *edge, wi, copy_buf, prof.as_deref_mut())?;
                wi.pc = *target;
                continue;
            }
            Op::CondJump {
                cond,
                then_target,
                then_edge,
                else_target,
                else_edge,
            } => {
                let c = wi.regs[*cond as usize]
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeMismatch("condbr on non-bool".into()))?;
                let (t, e) = if c {
                    (*then_target, *then_edge)
                } else {
                    (*else_target, *else_edge)
                };
                apply_edge(edges, e, wi, copy_buf, prof.as_deref_mut())?;
                wi.pc = t;
                continue;
            }
            Op::Barrier => {
                let at = wi.pc;
                wi.pc += 1;
                return Ok(BcStop::Barrier(at));
            }
            Op::Ret => return Ok(BcStop::Done),
            Op::Fail(e) => return Err(e.clone()),
            Op::FailNoSpend(_) => unreachable!("handled before the budget spend"),
        }
        wi.pc += 1;
    }
}

/// Global-load path shared by `Load` and `GepLoad`, including the
/// load-offset fault's offset-then-fallback behaviour. The trace event is
/// emitted by the caller with the unoffset pointer, like the interpreter.
#[inline]
fn load_with_fault(
    r: &GroupRun<'_, '_>,
    p: PtrVal,
    lanes: u8,
    bytes: u32,
) -> Result<Val, ExecError> {
    if r.load_offset != 0 && p.space == AddressSpace::Global {
        let pp = PtrVal {
            offset: p.offset + r.load_offset * bytes as i64,
            ..p
        };
        mem_load(r, pp, lanes).or_else(|_| mem_load(r, p, lanes))
    } else {
        mem_load(r, p, lanes)
    }
}

/// `BuildVector` semantics, byte-for-byte the interpreter's (including the
/// panic on an empty lane list, which becomes a `WorkerPanic`).
fn build_vector(vals: &[Val]) -> Result<Val, ExecError> {
    let n = vals.len() as u8;
    match vals[0] {
        Val::F32(_) => {
            let mut a = [0.0f32; 4];
            for (i, v) in vals.iter().enumerate() {
                a[i] = v
                    .as_f32()
                    .ok_or_else(|| ExecError::TypeMismatch("mixed vector lanes".into()))?;
            }
            Ok(Val::VF32(a, n))
        }
        Val::I32(_) => {
            let mut a = [0i32; 4];
            for (i, v) in vals.iter().enumerate() {
                a[i] = v
                    .as_i32()
                    .ok_or_else(|| ExecError::TypeMismatch("mixed vector lanes".into()))?;
            }
            Ok(Val::VI32(a, n))
        }
        _ => Err(ExecError::Unsupported("vector of this kind".into())),
    }
}

/// Render the bytecode a function lowers to as stable, diffable text:
/// the register seed table, the op array and the phi edge table. Used by
/// the golden-snapshot suite (`tests/golden/bytecode/`).
pub fn disassemble(f: &Function) -> String {
    use std::fmt::Write as _;
    let ck = compile(f);
    let mut out = String::new();
    let _ = writeln!(out, "entry @{:04}", ck.entry);
    let _ = writeln!(out, "regs {}", ck.regs_base.len());
    let mut seeds = String::new();
    for i in 0..f.num_values() {
        match &f.value(ValueId(i as u32)).def {
            ValueDef::Param(p) => {
                let _ = writeln!(seeds, "  r{i} = param {p}");
            }
            ValueDef::Const(c) => {
                let _ = writeln!(seeds, "  r{i} = const {c:?}");
            }
            ValueDef::LocalBuf(id) => {
                let _ = writeln!(seeds, "  r{i} = local {}", id.0);
            }
            ValueDef::Inst(_) => {}
        }
    }
    if !seeds.is_empty() {
        out.push_str("seeds:\n");
        out.push_str(&seeds);
    }
    out.push_str("ops:\n");
    for (i, op) in ck.ops.iter().enumerate() {
        let _ = writeln!(out, "  {i:04}: {}", fmt_op(op));
    }
    if ck.edges.len() > 1 {
        out.push_str("edges:\n");
        for (i, e) in ck.edges.iter().enumerate() {
            if let Some(err) = &e.fail {
                let _ = writeln!(out, "  {i}: fail {err}");
                continue;
            }
            let moves: Vec<String> = e
                .moves
                .iter()
                .map(|&(d, s)| format!("r{d} <- r{s}"))
                .collect();
            let _ = writeln!(
                out,
                "  {i}: phis={} {}",
                e.n_phis,
                if moves.is_empty() {
                    "(none)".to_string()
                } else {
                    moves.join(", ")
                }
            );
        }
    }
    out
}

fn fmt_op(op: &Op) -> String {
    match op {
        Op::Bin { op, dst, lhs, rhs } => format!("bin.{op:?} r{dst}, r{lhs}, r{rhs}"),
        Op::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => format!("cmp.{pred:?} r{dst}, r{lhs}, r{rhs}"),
        Op::Select {
            dst,
            cond,
            then_r,
            else_r,
        } => format!("select r{dst}, r{cond} ? r{then_r} : r{else_r}"),
        Op::Cast { kind, dst, src, to } => format!("cast.{kind:?} r{dst}, r{src} -> {to}"),
        Op::Query { which, dim, dst } => format!("query.{} r{dst}, dim={dim}", which.name()),
        Op::Call { builtin, dst, args } => {
            let a: Vec<String> = args.iter().map(|x| format!("r{x}")).collect();
            format!("call.{} r{dst}, [{}]", builtin.name(), a.join(", "))
        }
        Op::Gep {
            dst,
            base,
            index,
            elem,
        } => format!("gep r{dst}, r{base} + r{index}*{elem}"),
        Op::GepNoPointee { base, index } => format!("gep.bad r{base}, r{index}"),
        Op::Load {
            dst,
            ptr,
            lanes,
            bytes,
            pc,
        } => format!("load r{dst}, [r{ptr}] lanes={lanes} bytes={bytes} pc=v{pc}"),
        Op::GepLoad {
            dst,
            base,
            index,
            elem,
            lanes,
            bytes,
            pc,
        } => format!(
            "gep.load r{dst}, [r{base} + r{index}*{elem}] lanes={lanes} bytes={bytes} pc=v{pc}"
        ),
        Op::Store {
            ptr,
            value,
            bytes,
            pc,
        } => format!("store [r{ptr}], r{value} bytes={bytes} pc=v{pc}"),
        Op::GepStore {
            base,
            index,
            elem,
            value,
            bytes,
            pc,
        } => format!("gep.store [r{base} + r{index}*{elem}], r{value} bytes={bytes} pc=v{pc}"),
        Op::ExtractLane { dst, vector, lane } => format!("extract r{dst}, r{vector}[r{lane}]"),
        Op::InsertLane {
            dst,
            vector,
            lane,
            value,
        } => format!("insert r{dst}, r{vector}[r{lane}] = r{value}"),
        Op::BuildVector { dst, lanes, n } => {
            let a: Vec<String> = lanes[..*n as usize]
                .iter()
                .map(|x| format!("r{x}"))
                .collect();
            format!("bvec r{dst}, [{}]", a.join(", "))
        }
        Op::Jump { target, edge } => format!("jump @{target:04} edge={edge}"),
        Op::CondJump {
            cond,
            then_target,
            then_edge,
            else_target,
            else_edge,
        } => format!(
            "cjump r{cond} ? @{then_target:04} edge={then_edge} : @{else_target:04} edge={else_edge}"
        ),
        Op::Barrier => "barrier".to_string(),
        Op::Ret => "ret".to_string(),
        Op::Fail(e) => format!("fail {e}"),
        Op::FailNoSpend(e) => format!("fail.nospend {e}"),
    }
}
