//! The error matrix: every recoverable [`ExecError`] variant, provoked by a
//! real kernel, under both the serial and the parallel work-group schedule.
//! The parallel engine replays the serial semantics, so for each scenario
//! both policies must report the *same* error — the one belonging to the
//! first failing group in group-linear order.

use std::time::Duration;

use grover_frontend::{compile, BuildOptions};
use grover_ir::Function;
use grover_runtime::{
    enqueue_with_policy, ArgValue, Context, ExecError, ExecPolicy, Limits, NdRange, NullSink,
};

fn kernel(src: &str) -> Function {
    compile(src, &BuildOptions::new())
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .kernels
        .remove(0)
}

const POLICIES: [ExecPolicy; 2] = [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 4 }];

/// Run `k` over a fresh 8-element i32 buffer per policy and hand each
/// outcome to `check`.
fn for_each_policy(
    k: &Function,
    nd: &NdRange,
    limits: &Limits,
    check: impl Fn(ExecPolicy, Result<(), ExecError>),
) {
    for policy in POLICIES {
        let mut ctx = Context::new();
        let a = ctx.zeros_i32(8);
        let res = enqueue_with_policy(
            &mut ctx,
            k,
            &[ArgValue::Buffer(a)],
            nd,
            &mut NullSink,
            limits,
            policy,
        )
        .map(|_| ());
        check(policy, res);
    }
}

#[test]
fn out_of_bounds_same_under_both_policies() {
    // Group 3 runs off the end of the 8-element buffer.
    let k = kernel(
        "__kernel void oob(__global int* a) {
             int w = get_group_id(0);
             int i = w == 3 ? w + 100 : w;
             a[i] = w;
         }",
    );
    for_each_policy(&k, &NdRange::d1(6, 1), &Limits::default(), |policy, res| {
        assert_eq!(
            res.unwrap_err(),
            ExecError::OutOfBounds {
                buffer: 0,
                index: 103,
                len: 8
            },
            "policy {policy:?}"
        );
    });
}

#[test]
fn division_by_zero_same_under_both_policies() {
    let k = kernel(
        "__kernel void dbz(__global int* a) {
             int w = get_group_id(0);
             a[w] = 100 / (2 - w);
         }",
    );
    for_each_policy(&k, &NdRange::d1(8, 1), &Limits::default(), |policy, res| {
        assert_eq!(
            res.unwrap_err(),
            ExecError::DivisionByZero,
            "policy {policy:?}"
        );
    });
}

#[test]
fn barrier_divergence_same_under_both_policies() {
    // Within group 1, work-item 0 skips the barrier the others reach.
    let k = kernel(
        "__kernel void div(__global int* a) {
             int w = get_group_id(0);
             int lx = get_local_id(0);
             if (w != 1 || lx != 0) {
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             a[w] = lx;
         }",
    );
    for_each_policy(&k, &NdRange::d1(8, 2), &Limits::default(), |policy, res| {
        assert_eq!(
            res.unwrap_err(),
            ExecError::BarrierDivergence,
            "policy {policy:?}"
        );
    });
}

#[test]
fn instruction_limit_same_under_both_policies() {
    // An effectively unbounded loop must die on the shared budget, not hang.
    let k = kernel(
        "__kernel void spin(__global int* a) {
             int acc = 0;
             for (int i = 0; i < 100000000; i++) { acc = acc + i; }
             a[get_group_id(0)] = acc;
         }",
    );
    let limits = Limits {
        max_instructions: 10_000,
        ..Limits::default()
    };
    for_each_policy(&k, &NdRange::d1(8, 1), &limits, |policy, res| {
        assert_eq!(
            res.unwrap_err(),
            ExecError::InstructionLimit,
            "policy {policy:?}"
        );
    });
}

#[test]
fn bad_ndrange_same_under_both_policies() {
    // Local size does not divide the global size.
    let k = kernel(
        "__kernel void ok(__global int* a) {
             a[get_group_id(0)] = 1;
         }",
    );
    for_each_policy(
        &k,
        &NdRange::d1(10, 3),
        &Limits::default(),
        |policy, res| {
            assert!(
                matches!(res.unwrap_err(), ExecError::BadNdRange(_)),
                "policy {policy:?}"
            );
        },
    );
}

#[test]
fn deadline_exceeded_same_under_both_policies() {
    // A hot loop against a deadline that has effectively already passed:
    // the watchdog drains the budget and every worker reports the deadline
    // (never InstructionLimit — the drain must not be mistaken for budget
    // exhaustion).
    let k = kernel(
        "__kernel void spin(__global int* a) {
             int acc = 0;
             for (int i = 0; i < 100000000; i++) { acc = acc + i; }
             a[get_group_id(0)] = acc;
         }",
    );
    let limits = Limits {
        deadline: Some(Duration::ZERO),
        ..Limits::default()
    };
    for_each_policy(&k, &NdRange::d1(8, 1), &limits, |policy, res| {
        assert_eq!(
            res.unwrap_err(),
            ExecError::DeadlineExceeded,
            "policy {policy:?}"
        );
    });
}

#[test]
fn generous_deadline_does_not_trip() {
    let k = kernel(
        "__kernel void ok(__global int* a) {
             a[get_group_id(0)] = get_group_id(0);
         }",
    );
    let limits = Limits {
        deadline: Some(Duration::from_secs(3600)),
        ..Limits::default()
    };
    for_each_policy(&k, &NdRange::d1(8, 1), &limits, |policy, res| {
        assert!(res.is_ok(), "policy {policy:?}");
    });
}

#[test]
fn first_failing_group_wins_under_parallel() {
    // Groups 2 and 5 both fail, differently. Group-linear replay means both
    // schedules must surface group 2's out-of-bounds store, and groups 0–1
    // must have committed their results.
    let k = kernel(
        "__kernel void two(__global int* a) {
             int w = get_group_id(0);
             int i = w == 2 ? 1000 : w;
             int d = w == 5 ? 0 : 1;
             a[i] = w / d;
         }",
    );
    for policy in POLICIES {
        let mut ctx = Context::new();
        let a = ctx.zeros_i32(8);
        let err = enqueue_with_policy(
            &mut ctx,
            &k,
            &[ArgValue::Buffer(a)],
            &NdRange::d1(8, 1),
            &mut NullSink,
            &Limits::default(),
            policy,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::OutOfBounds {
                buffer: 0,
                index: 1000,
                len: 8
            },
            "policy {policy:?}"
        );
        assert_eq!(&ctx.read_i32(a)[..2], &[0, 1], "policy {policy:?}");
    }
}

#[test]
fn arg_count_same_under_both_policies() {
    let k = kernel(
        "__kernel void ok(__global int* a, int n) {
             a[get_group_id(0)] = n;
         }",
    );
    for policy in POLICIES {
        let mut ctx = Context::new();
        let a = ctx.zeros_i32(8);
        let err = enqueue_with_policy(
            &mut ctx,
            &k,
            &[ArgValue::Buffer(a)],
            &NdRange::d1(8, 1),
            &mut NullSink,
            &Limits::default(),
            policy,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::ArgCount {
                expected: 2,
                got: 1
            },
            "policy {policy:?}"
        );
    }
}
