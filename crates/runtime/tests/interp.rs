//! Integration tests: compile OpenCL C with the front-end, execute with the
//! interpreter, check functional results and trace behaviour.

use grover_frontend::{compile, BuildOptions};
use grover_ir::Function;
use grover_runtime::{
    enqueue, enqueue_with_policy, ArgValue, Context, CountingSink, ExecError, ExecPolicy, Limits,
    NdRange, NullSink, TraceOp, VecSink,
};

fn kernel(src: &str) -> Function {
    compile(src, &BuildOptions::new())
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .kernels
        .remove(0)
}

#[test]
fn copy_kernel_runs() {
    let k = kernel(
        "__kernel void copy(__global float* in, __global float* out) {
             int i = get_global_id(0);
             out[i] = in[i];
         }",
    );
    let mut ctx = Context::new();
    let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let a = ctx.buffer_f32(&data);
    let b = ctx.zeros_f32(64);
    let stats = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &NdRange::d1(64, 16),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(b), &data[..]);
    assert_eq!(stats.work_items, 64);
    assert_eq!(stats.work_groups, 4);
}

#[test]
fn barrier_staged_reversal() {
    // Reverse within each work-group through local memory. Without correct
    // barrier semantics the interleaving would read unwritten slots.
    let k = kernel(
        "__kernel void rev(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             int wx = get_group_id(0);
             lm[lx] = in[wx * 16 + lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[wx * 16 + lx] = lm[15 - lx];
         }",
    );
    let mut ctx = Context::new();
    let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let a = ctx.buffer_f32(&data);
    let b = ctx.zeros_f32(32);
    let stats = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &NdRange::d1(32, 16),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    let out = ctx.read_f32(b);
    for g in 0..2 {
        for i in 0..16 {
            assert_eq!(out[g * 16 + i], data[g * 16 + (15 - i)]);
        }
    }
    assert_eq!(stats.barriers, 2); // one rendezvous per work-group
}

#[test]
fn matrix_multiply_matches_reference() {
    let k = kernel(
        "__kernel void mm(__global float* a, __global float* b, __global float* c, int n) {
             int col = get_global_id(0);
             int row = get_global_id(1);
             float acc = 0.0f;
             for (int t = 0; t < n; t++) {
                 acc += a[row * n + t] * b[t * n + col];
             }
             c[row * n + col] = acc;
         }",
    );
    let n = 8usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32 - 2.0).collect();
    let mut expect = vec![0.0f32; n * n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for t in 0..n {
                acc += a[r * n + t] * b[t * n + c];
            }
            expect[r * n + c] = acc;
        }
    }
    let mut ctx = Context::new();
    let ba = ctx.buffer_f32(&a);
    let bb = ctx.buffer_f32(&b);
    let bc = ctx.zeros_f32(n * n);
    enqueue(
        &mut ctx,
        &k,
        &[
            ArgValue::Buffer(ba),
            ArgValue::Buffer(bb),
            ArgValue::Buffer(bc),
            ArgValue::I32(n as i32),
        ],
        &NdRange::d2(n as u64, n as u64, 4, 4),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(bc), &expect[..]);
}

#[test]
fn float4_vector_kernel() {
    let k = kernel(
        "__kernel void vs(__global float4* a, __global float4* b) {
             int i = get_global_id(0);
             float4 x = a[i];
             float4 y = x * 2.0f + (float4)(1.0f, 0.0f, 1.0f, 0.0f);
             y.x = y.x - 1.0f;
             b[i] = y;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.buffer_f32(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let b = ctx.zeros_f32(8);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &NdRange::d1(2, 2),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(
        ctx.read_f32(b),
        &[2.0, 4.0, 7.0, 8.0, 10.0, 12.0, 15.0, 16.0]
    );
}

#[test]
fn trace_counts_accesses() {
    let k = kernel(
        "__kernel void st(__global float* in, __global float* out) {
             __local float lm[8];
             int lx = get_local_id(0);
             int gx = get_global_id(0);
             lm[lx] = in[gx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[gx] = lm[7 - lx];
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_f32(16);
    let b = ctx.zeros_f32(16);
    let mut sink = CountingSink::default();
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &NdRange::d1(16, 8),
        &mut sink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(sink.global_loads, 16);
    assert_eq!(sink.global_stores, 16);
    assert_eq!(sink.local_loads, 16);
    assert_eq!(sink.local_stores, 16);
    assert_eq!(sink.barriers, 2);
    assert!(sink.instructions > 0);
}

#[test]
fn trace_addresses_are_buffer_relative() {
    let k = kernel(
        "__kernel void t(__global float* a) {
             int i = get_global_id(0);
             a[i] = a[i] + 1.0f;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.buffer_f32(&[0.0; 4]);
    let base = ctx.base_addr(a);
    let mut sink = VecSink::default();
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(4, 4),
        &mut sink,
        &Limits::default(),
    )
    .unwrap();
    let loads: Vec<_> = sink
        .events
        .iter()
        .filter(|e| e.op == TraceOp::Load)
        .collect();
    assert_eq!(loads.len(), 4);
    let mut addrs: Vec<u64> = loads.iter().map(|e| e.addr).collect();
    addrs.sort_unstable();
    assert_eq!(addrs, vec![base, base + 4, base + 8, base + 12]);
}

#[test]
fn divergent_barrier_detected() {
    let k = kernel(
        "__kernel void div(__global float* a) {
             int lx = get_local_id(0);
             if (lx < 2) {
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             a[lx] = 1.0f;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_f32(4);
    let err = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(4, 4),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap_err();
    assert_eq!(err, ExecError::BarrierDivergence);
}

#[test]
fn out_of_bounds_detected() {
    let k = kernel(
        "__kernel void oob(__global float* a) {
             int i = get_global_id(0);
             a[i + 100] = 0.0f;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_f32(4);
    let err = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(4, 4),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::OutOfBounds { .. }));
}

#[test]
fn instruction_limit_enforced() {
    let k = kernel(
        "__kernel void spin(__global int* a) {
             int x = 0;
             while (a[0] == 0) { x = x + 1; }
             a[1] = x;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(2);
    let err = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits {
            max_instructions: 10_000,
            ..Limits::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, ExecError::InstructionLimit);
}

#[test]
fn arg_validation() {
    let k = kernel("__kernel void f(__global float* a, int n) { a[0] = (float)n; }");
    let mut ctx = Context::new();
    let a = ctx.zeros_f32(1);
    let ib = ctx.zeros_i32(1);
    // wrong count
    assert!(matches!(
        enqueue(
            &mut ctx,
            &k,
            &[ArgValue::Buffer(a)],
            &NdRange::d1(1, 1),
            &mut NullSink,
            &Limits::default()
        ),
        Err(ExecError::ArgCount { .. })
    ));
    // wrong buffer kind
    assert!(matches!(
        enqueue(
            &mut ctx,
            &k,
            &[ArgValue::Buffer(ib), ArgValue::I32(1)],
            &NdRange::d1(1, 1),
            &mut NullSink,
            &Limits::default()
        ),
        Err(ExecError::TypeMismatch(_))
    ));
    // wrong scalar kind
    assert!(matches!(
        enqueue(
            &mut ctx,
            &k,
            &[ArgValue::Buffer(a), ArgValue::F32(1.0)],
            &NdRange::d1(1, 1),
            &mut NullSink,
            &Limits::default()
        ),
        Err(ExecError::TypeMismatch(_))
    ));
}

#[test]
fn bad_ndrange_rejected() {
    let k = kernel("__kernel void f(__global float* a) { a[0] = 1.0f; }");
    let mut ctx = Context::new();
    let a = ctx.zeros_f32(1);
    let err = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(10, 4),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::BadNdRange(_)));
}

#[test]
fn two_dim_ids() {
    let k = kernel(
        "__kernel void ids(__global int* out, int w) {
             int gx = get_global_id(0);
             int gy = get_global_id(1);
             out[gy * w + gx] = gy * 100 + gx;
         }",
    );
    let mut ctx = Context::new();
    let out = ctx.zeros_i32(8 * 4);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(out), ArgValue::I32(8)],
        &NdRange::d2(8, 4, 2, 2),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    let o = ctx.read_i32(out);
    for y in 0..4 {
        for x in 0..8 {
            assert_eq!(o[y * 8 + x], (y * 100 + x) as i32);
        }
    }
}

#[test]
fn loop_carried_swap_phis() {
    // Exercises parallel phi-copy semantics (the classic swap problem).
    let k = kernel(
        "__kernel void swap(__global int* out, int n) {
             int a = 1;
             int b = 2;
             for (int i = 0; i < n; i++) {
                 int t = a;
                 a = b;
                 b = t;
             }
             out[0] = a;
             out[1] = b;
         }",
    );
    let mut ctx = Context::new();
    let out = ctx.zeros_i32(2);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(out), ArgValue::I32(3)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(out), &[2, 1]); // three swaps of (1,2)
}

#[test]
fn builtins_work() {
    let k = kernel(
        "__kernel void m(__global float* out) {
             out[0] = sqrt(16.0f);
             out[1] = fabs(-3.0f);
             out[2] = fmin(1.0f, 2.0f);
             out[3] = fmax(1.0f, 2.0f);
             out[4] = mad(2.0f, 3.0f, 4.0f);
             out[5] = rsqrt(4.0f);
             out[6] = (float)min(3, 5);
             out[7] = clamp(7.0f, 0.0f, 5.0f);
         }",
    );
    let mut ctx = Context::new();
    let out = ctx.zeros_f32(8);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(out)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(
        ctx.read_f32(out),
        &[4.0, 3.0, 1.0, 2.0, 10.0, 0.5, 3.0, 5.0]
    );
}

#[test]
fn division_by_zero_reported() {
    let k = kernel("__kernel void d(__global int* a) { a[0] = a[1] / a[2]; }");
    let mut ctx = Context::new();
    let a = ctx.buffer_i32(&[0, 5, 0]);
    let err = enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap_err();
    assert_eq!(err, ExecError::DivisionByZero);
}

#[test]
fn parallel_instruction_limit_enforced() {
    // An infinite loop in one work-item must still trip the shared budget
    // under the parallel schedule (the pool is chunked per worker, so the
    // launch stops within workers * chunk of the limit).
    let k = kernel(
        "__kernel void spin(__global int* a) {
             int x = 0;
             while (a[0] == 0) { x = x + 1; }
             a[1] = x;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(2);
    let err = enqueue_with_policy(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(4, 1),
        &mut NullSink,
        &Limits {
            max_instructions: 10_000,
            ..Limits::default()
        },
        ExecPolicy::Parallel { threads: 2 },
    )
    .unwrap_err();
    assert_eq!(err, ExecError::InstructionLimit);
}

#[test]
fn parallel_error_reports_first_failing_group() {
    // Group 2 (and only group 2) divides by zero; whatever the schedule,
    // the reported error must be that group's — the serial answer.
    let k = kernel(
        "__kernel void f(__global int* a) {
             int w = get_group_id(0);
             a[w] = 100 / (2 - w);
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(8);
    let err = enqueue_with_policy(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(8, 1),
        &mut NullSink,
        &Limits::default(),
        ExecPolicy::Parallel { threads: 4 },
    )
    .unwrap_err();
    assert_eq!(err, ExecError::DivisionByZero);
    // Groups 0 and 1 precede the failing group and must have completed.
    assert_eq!(&ctx.read_i32(a)[..2], &[50, 100]);
}
