//! Deeper interpreter-semantics coverage: conversions, unsigned arithmetic,
//! 3-D launches, `__constant` memory, vector edge cases, multiple kernels.

use grover_frontend::{compile, BuildOptions};
use grover_ir::Function;
use grover_runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};

fn kernel(src: &str) -> Function {
    compile(src, &BuildOptions::new())
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .kernels
        .remove(0)
}

#[test]
fn unsigned_comparison_and_shift() {
    let k = kernel(
        "__kernel void u(__global int* a) {
             uint x = 0x80000000;
             uint y = 1;
             a[0] = x > y ? 1 : 0;        // unsigned: big
             int sx = -2147483648;
             a[1] = sx > 1 ? 1 : 0;       // signed: negative
             a[2] = (int)(x >> 31);       // logical shift
             a[3] = sx >> 31;             // arithmetic shift
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(4);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(a), &[1, 0, 1, -1]);
}

#[test]
fn float_int_conversions() {
    let k = kernel(
        "__kernel void c(__global float* f, __global int* i) {
             i[0] = (int)f[0];           // trunc toward zero
             i[1] = (int)f[1];
             f[2] = (float)i[2];
             long big = 5000000000;
             i[3] = (int)big;            // wraps
         }",
    );
    let mut ctx = Context::new();
    let f = ctx.buffer_f32(&[3.7, -3.7, 0.0, 0.0]);
    let i = ctx.buffer_i32(&[0, 0, -7, 0]);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(f), ArgValue::Buffer(i)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(i)[0], 3);
    assert_eq!(ctx.read_i32(i)[1], -3);
    assert_eq!(ctx.read_f32(f)[2], -7.0);
    assert_eq!(ctx.read_i32(i)[3], 5000000000u64 as i32);
}

#[test]
fn three_dimensional_launch() {
    let k = kernel(
        "__kernel void t3(__global int* out, int nx, int ny) {
             int x = get_global_id(0);
             int y = get_global_id(1);
             int z = get_global_id(2);
             out[(z * ny + y) * nx + x] = x + 10 * y + 100 * z;
         }",
    );
    let mut ctx = Context::new();
    let out = ctx.zeros_i32(4 * 2 * 3);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(out), ArgValue::I32(4), ArgValue::I32(2)],
        &NdRange::d3([4, 2, 3], [2, 1, 1]),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    let o = ctx.read_i32(out);
    for z in 0..3 {
        for y in 0..2 {
            for x in 0..4 {
                assert_eq!(o[(z * 2 + y) * 4 + x], (x + 10 * y + 100 * z) as i32);
            }
        }
    }
}

#[test]
fn constant_address_space_reads() {
    let k = kernel(
        "__kernel void cc(__constant float* lut, __global float* out) {
             int i = get_global_id(0);
             out[i] = lut[i % 4] * 2.0f;
         }",
    );
    let mut ctx = Context::new();
    let lut = ctx.buffer_f32(&[1.0, 2.0, 3.0, 4.0]);
    let out = ctx.zeros_f32(8);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(lut), ArgValue::Buffer(out)],
        &NdRange::d1(8, 4),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(out), &[2.0, 4.0, 6.0, 8.0, 2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn workitem_shape_queries() {
    let k = kernel(
        "__kernel void q(__global int* out) {
             int i = get_global_id(0);
             if (i == 0) {
                 out[0] = (int)get_local_size(0);
                 out[1] = (int)get_global_size(0);
                 out[2] = (int)get_num_groups(0);
                 out[3] = (int)get_local_size(1);
                 out[4] = (int)get_num_groups(2);
             }
         }",
    );
    let mut ctx = Context::new();
    let out = ctx.zeros_i32(5);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(out)],
        &NdRange::d1(24, 8),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(out), &[8, 24, 3, 1, 1]);
}

#[test]
fn vector_scalar_mixed_arithmetic() {
    let k = kernel(
        "__kernel void vm(__global float4* a, __global float4* b) {
             int i = get_global_id(0);
             float4 x = a[i];
             b[i] = 2.0f * x + x * 3.0f - (float4)(1.0f);
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.buffer_f32(&[1.0, 2.0, 3.0, 4.0]);
    let b = ctx.zeros_f32(4);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(b), &[4.0, 9.0, 14.0, 19.0]);
}

#[test]
fn swizzle_all_lanes() {
    let k = kernel(
        "__kernel void sw(__global float4* a, __global float* out) {
             float4 v = a[0];
             out[0] = v.x;
             out[1] = v.y;
             out[2] = v.z;
             out[3] = v.w;
             out[4] = v.s0 + v.s3;
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.buffer_f32(&[10.0, 20.0, 30.0, 40.0]);
    let out = ctx.zeros_f32(5);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a), ArgValue::Buffer(out)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(out), &[10.0, 20.0, 30.0, 40.0, 50.0]);
}

#[test]
fn dot_builtin() {
    let k = kernel(
        "__kernel void d(__global float4* a, __global float4* b, __global float* out) {
             out[0] = dot(a[0], b[0]);
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.buffer_f32(&[1.0, 2.0, 3.0, 4.0]);
    let b = ctx.buffer_f32(&[5.0, 6.0, 7.0, 8.0]);
    let out = ctx.zeros_f32(1);
    enqueue(
        &mut ctx,
        &k,
        &[
            ArgValue::Buffer(a),
            ArgValue::Buffer(b),
            ArgValue::Buffer(out),
        ],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(out)[0], 70.0);
}

#[test]
fn modulo_and_negative_numbers() {
    let k = kernel(
        "__kernel void m(__global int* a) {
             a[0] = -7 % 3;      // C semantics: -1
             a[1] = 7 % -3;      // 1
             a[2] = -7 / 2;      // -3 (truncated)
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(3);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(a), &[-1, 1, -3]);
}

#[test]
fn multiple_kernels_in_one_module() {
    let module = compile(
        "__kernel void first(__global int* a) { a[0] = 1; }
         __kernel void second(__global int* a) { a[1] = 2; }",
        &BuildOptions::new(),
    )
    .unwrap();
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(2);
    for name in ["first", "second"] {
        enqueue(
            &mut ctx,
            module.kernel(name).unwrap(),
            &[ArgValue::Buffer(a)],
            &NdRange::d1(1, 1),
            &mut NullSink,
            &Limits::default(),
        )
        .unwrap();
    }
    assert_eq!(ctx.read_i32(a), &[1, 2]);
}

#[test]
fn do_while_and_break_continue_semantics() {
    let k = kernel(
        "__kernel void bc(__global int* a) {
             int sum = 0;
             for (int i = 0; i < 20; i++) {
                 if (i % 2 == 1) { continue; }
                 if (i >= 10) { break; }
                 sum += i;
             }
             a[0] = sum;           // 0+2+4+6+8 = 20
             int j = 10;
             do { j--; } while (j > 5);
             a[1] = j;             // 5
             while (j > 0) { j -= 2; }
             a[2] = j;             // -1? 5-2-2-2 = -1
         }",
    );
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(3);
    enqueue(
        &mut ctx,
        &k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(1, 1),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_i32(a), &[20, 5, -1]);
}
