//! Exercises the `fault-injection` feature against the real engine: every
//! [`FaultSite`]/[`FaultKind`] combination the hardened pipeline relies on,
//! under both work-group schedules.
//!
//! Plans are always targeted at a per-test kernel name: `inject` serialises
//! concurrent injectors, but launches from other tests in this binary may
//! still overlap a held guard, and must never match its plan.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use grover_frontend::{compile, BuildOptions};
use grover_ir::Function;
use grover_runtime::fault::{self, FaultKind, FaultPlan, FaultSite, FaultTarget};
use grover_runtime::{
    enqueue_with_policy, ArgValue, Context, ExecError, ExecPolicy, Limits, NdRange, NullSink,
};

const POLICIES: [ExecPolicy; 2] = [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 4 }];

/// `__kernel void <name>(__global int* a) { a[w] = w; }` over 8 groups.
fn store_kernel(name: &str) -> Function {
    let src = format!(
        "__kernel void {name}(__global int* a) {{
             int w = get_group_id(0);
             a[w] = w;
         }}"
    );
    compile(&src, &BuildOptions::new())
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .kernels
        .remove(0)
}

fn launch(k: &Function, policy: ExecPolicy, limits: &Limits) -> (Context, Result<(), ExecError>) {
    let mut ctx = Context::new();
    let a = ctx.zeros_i32(8);
    let res = enqueue_with_policy(
        &mut ctx,
        k,
        &[ArgValue::Buffer(a)],
        &NdRange::d1(8, 1),
        &mut NullSink,
        limits,
        policy,
    )
    .map(|_| ());
    (ctx, res)
}

#[test]
fn group_panic_is_isolated_and_attributed() {
    let k = store_kernel("fi_gpanic");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_gpanic"),
        site: FaultSite::Group(2),
        kind: FaultKind::Panic,
        max_fires: 0,
    });
    for policy in POLICIES {
        let (_, res) = launch(&k, policy, &Limits::default());
        match res.unwrap_err() {
            ExecError::WorkerPanic { group, message } => {
                assert_eq!(group, 2, "policy {policy:?}");
                assert!(message.contains("fault-injection"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?} under {policy:?}"),
        }
    }
}

#[test]
fn launch_start_panic_escapes_enqueue() {
    // A launch-entry fault models the death of a whole measurement (the
    // tuner race thread): it must propagate out of `enqueue` itself, to be
    // caught by the *caller's* isolation, not converted to an ExecError.
    let k = store_kernel("fi_lpanic");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_lpanic"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::Panic,
        max_fires: 0,
    });
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        launch(&k, ExecPolicy::Serial, &Limits::default())
    }));
    assert!(unwound.is_err(), "launch-entry panic must unwind");
}

#[test]
fn injected_error_surfaces_verbatim() {
    let k = store_kernel("fi_err");
    let injected = ExecError::Unsupported("injected for test".into());
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_err"),
        site: FaultSite::Group(1),
        kind: FaultKind::Error(injected.clone()),
        max_fires: 0,
    });
    for policy in POLICIES {
        let (_, res) = launch(&k, policy, &Limits::default());
        assert_eq!(res.unwrap_err(), injected, "policy {policy:?}");
    }
}

#[test]
fn sleep_trips_the_watchdog() {
    let k = store_kernel("fi_sleep");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_sleep"),
        site: FaultSite::Group(0),
        kind: FaultKind::Sleep(Duration::from_millis(50)),
        max_fires: 0,
    });
    let limits = Limits {
        deadline: Some(Duration::from_millis(5)),
        ..Limits::default()
    };
    for policy in POLICIES {
        let (_, res) = launch(&k, policy, &limits);
        assert_eq!(
            res.unwrap_err(),
            ExecError::DeadlineExceeded,
            "policy {policy:?}"
        );
    }
}

#[test]
fn corrupt_stores_perturbs_globals_from_trigger_group() {
    let k = store_kernel("fi_corrupt");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_corrupt"),
        site: FaultSite::Group(1),
        kind: FaultKind::CorruptStores,
        max_fires: 0,
    });
    for policy in POLICIES {
        let (ctx, res) = launch(&k, policy, &Limits::default());
        res.unwrap();
        let got = ctx.buffers()[0].clone();
        let grover_runtime::BufferData::I32(got) = got else {
            panic!("expected i32 buffer");
        };
        // Group 0 is clean; groups >= 1 store w ^ 1.
        let want: Vec<i32> = (0..8).map(|w| if w == 0 { 0 } else { w ^ 1 }).collect();
        assert_eq!(got, want, "policy {policy:?}");
    }
}

#[test]
fn max_fires_limits_the_fault_to_n_launches() {
    let k = store_kernel("fi_once");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_once"),
        site: FaultSite::Group(0),
        kind: FaultKind::Error(ExecError::Internal("transient".into())),
        max_fires: 1,
    });
    let (_, first) = launch(&k, ExecPolicy::Serial, &Limits::default());
    assert!(first.is_err(), "first launch must hit the fault");
    let (ctx, second) = launch(&k, ExecPolicy::Serial, &Limits::default());
    second.expect("fault exhausted — second launch must be clean");
    let grover_runtime::BufferData::I32(got) = &ctx.buffers()[0] else {
        panic!("expected i32 buffer");
    };
    assert_eq!(got, &[0, 1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn instruction_site_fault_fires_mid_group() {
    let k = store_kernel("fi_inst");
    let injected = ExecError::Internal("mid-group".into());
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_inst"),
        site: FaultSite::Instruction(5),
        kind: FaultKind::Error(injected.clone()),
        max_fires: 0,
    });
    let (_, res) = launch(&k, ExecPolicy::Serial, &Limits::default());
    assert_eq!(res.unwrap_err(), injected);
}

#[test]
fn plans_target_only_matching_kernels() {
    let hit = store_kernel("fi_target_hit");
    let miss = store_kernel("fi_target_miss");
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::kernel("fi_target_hit"),
        site: FaultSite::Group(0),
        kind: FaultKind::Panic,
        max_fires: 0,
    });
    let (_, res) = launch(&hit, ExecPolicy::Serial, &Limits::default());
    assert!(matches!(res.unwrap_err(), ExecError::WorkerPanic { .. }));
    let (_, res) = launch(&miss, ExecPolicy::Serial, &Limits::default());
    res.expect("plan must not match a differently-named kernel");
}

#[test]
fn dropping_the_guard_uninstalls_the_plan() {
    let k = store_kernel("fi_drop");
    {
        let _guard = fault::inject(FaultPlan {
            target: FaultTarget::kernel("fi_drop"),
            site: FaultSite::Group(0),
            kind: FaultKind::Panic,
            max_fires: 0,
        });
        let (_, res) = launch(&k, ExecPolicy::Serial, &Limits::default());
        assert!(res.is_err());
    }
    let (_, res) = launch(&k, ExecPolicy::Serial, &Limits::default());
    res.expect("plan must be gone after the guard drops");
}

#[test]
fn local_mem_free_targeting_distinguishes_versions() {
    // Same name, two versions: one staging through __local, one not — the
    // `transformed`/`original` selectors must tell them apart (this is how
    // tuner tests hit exactly one side of a race).
    let with_lm = compile(
        "__kernel void fi_vers(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             lm[lx] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = lm[15 - lx];
         }",
        &BuildOptions::new(),
    )
    .unwrap()
    .kernels
    .remove(0);
    let without_lm = compile(
        "__kernel void fi_vers(__global float* in, __global float* out) {
             int lx = get_local_id(0);
             out[lx] = in[15 - lx];
         }",
        &BuildOptions::new(),
    )
    .unwrap()
    .kernels
    .remove(0);

    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("fi_vers"),
        site: FaultSite::Group(0),
        kind: FaultKind::Panic,
        max_fires: 0,
    });
    let run = |k: &Function| {
        let mut ctx = Context::new();
        let a = ctx.buffer_f32(&[1.0; 16]);
        let b = ctx.zeros_f32(16);
        enqueue_with_policy(
            &mut ctx,
            k,
            &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
            &NdRange::d1(16, 16),
            &mut NullSink,
            &Limits::default(),
            ExecPolicy::Serial,
        )
        .map(|_| ())
    };
    run(&with_lm).expect("original version must not match a `transformed` target");
    assert!(matches!(
        run(&without_lm).unwrap_err(),
        ExecError::WorkerPanic { .. }
    ));
}
