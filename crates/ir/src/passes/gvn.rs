//! Global value numbering / common-subexpression elimination.
//!
//! Pure instructions with identical operands are deduplicated when an
//! existing computation dominates the redundant one. Loads are excluded
//! (no alias analysis); calls are included because every builtin in this
//! IR is pure.

use std::collections::HashMap;

use crate::cfg::{reverse_post_order, DomTree};
use crate::function::Function;
use crate::passes::FunctionPass;
use crate::types::Type;
use crate::value::{BinOp, BlockId, Builtin, CastKind, CmpPred, Inst, ValueId};

/// Global-value-numbering (CSE) pass.
#[derive(Default)]
pub struct Gvn {
    /// Number of instructions replaced by the last run.
    pub replaced: usize,
}

/// Hashable canonical form of a pure instruction.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, ValueId, ValueId),
    Cmp(CmpPred, ValueId, ValueId),
    Select(ValueId, ValueId, ValueId),
    Cast(CastKind, ValueId, Type),
    Call(Builtin, Vec<ValueId>),
    Gep(ValueId, ValueId),
    Extract(ValueId, ValueId),
    Insert(ValueId, ValueId, ValueId),
    Build(Vec<ValueId>),
}

fn key_of(inst: &Inst) -> Option<Key> {
    Some(match inst {
        Inst::Bin { op, lhs, rhs } => {
            let (mut l, mut r) = (*lhs, *rhs);
            if op.is_commutative() && r < l {
                std::mem::swap(&mut l, &mut r);
            }
            Key::Bin(*op, l, r)
        }
        Inst::Cmp { pred, lhs, rhs } => Key::Cmp(*pred, *lhs, *rhs),
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => Key::Select(*cond, *then_val, *else_val),
        Inst::Cast { kind, value, to } => Key::Cast(*kind, *value, *to),
        Inst::Call { builtin, args } => Key::Call(*builtin, args.clone()),
        Inst::Gep { base, index } => Key::Gep(*base, *index),
        Inst::ExtractLane { vector, lane } => Key::Extract(*vector, *lane),
        Inst::InsertLane {
            vector,
            lane,
            value,
        } => Key::Insert(*vector, *lane, *value),
        Inst::BuildVector { lanes } => Key::Build(lanes.clone()),
        _ => return None,
    })
}

impl FunctionPass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.replaced = 0;
        loop {
            let dt = DomTree::compute(f);
            let rpo = reverse_post_order(f);
            // position map for same-block ordering
            let mut pos: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
            for &b in &rpo {
                for (i, &iv) in f.block(b).insts.iter().enumerate() {
                    pos.insert(iv, (b, i));
                }
            }
            let dominates = |a: ValueId, b: ValueId| -> bool {
                let (ab, ai) = pos[&a];
                let (bb, bi) = pos[&b];
                if ab == bb {
                    ai < bi
                } else {
                    dt.dominates(ab, bb)
                }
            };
            let mut table: HashMap<Key, Vec<ValueId>> = HashMap::new();
            let mut replace: Vec<(ValueId, ValueId)> = Vec::new();
            for &b in &rpo {
                for &iv in &f.block(b).insts {
                    let Some(inst) = f.inst(iv) else { continue };
                    let Some(key) = key_of(inst) else { continue };
                    let entry = table.entry(key).or_default();
                    if let Some(&existing) = entry.iter().find(|&&e| dominates(e, iv)) {
                        replace.push((iv, existing));
                    } else {
                        entry.push(iv);
                    }
                }
            }
            if replace.is_empty() {
                break;
            }
            for (old, new) in replace {
                f.replace_all_uses(old, new);
                f.remove_inst(old);
                self.replaced += 1;
            }
        }
        self.replaced > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{AddressSpace, Scalar};
    use crate::value::Param;

    #[test]
    fn dedups_identical_adds() {
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "p".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let p = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let one = b.i32(1);
        let a1 = b.add(n, one);
        let a2 = b.add(n, one); // redundant
        let g1 = b.gep(p, a1);
        let g2 = b.gep(p, a2);
        let v = b.load(g1);
        b.store(g2, v);
        b.ret();
        let mut gvn = Gvn::default();
        assert!(gvn.run(&mut f));
        // a2 and then g2 fold into a1/g1.
        assert_eq!(gvn.replaced, 2);
        assert!(f.position_of(a2).is_none());
        assert!(f.position_of(g2).is_none());
    }

    #[test]
    fn commutative_operands_canonicalise() {
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "p".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let p = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let two = b.i32(2);
        let a1 = b.add(n, two);
        let a2 = b.add(two, n); // same value, swapped operands
        let g1 = b.gep(p, a1);
        let g2 = b.gep(p, a2);
        let v = b.load(g1);
        b.store(g2, v);
        b.ret();
        let mut gvn = Gvn::default();
        assert!(gvn.run(&mut f));
        assert!(f.position_of(a2).is_none());
    }

    #[test]
    fn sub_is_not_commutative() {
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "p".into(),
                    ty: Type::ptr_scalar(Scalar::I32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let p = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let two = b.i32(2);
        let s1 = b.sub(n, two);
        let s2 = b.sub(two, n);
        let g1 = b.gep(p, s1);
        let g2 = b.gep(p, s2);
        b.store(g1, s1);
        b.store(g2, s2);
        b.ret();
        let mut gvn = Gvn::default();
        assert!(!gvn.run(&mut f));
    }

    #[test]
    fn cross_block_requires_dominance() {
        // Computation in the then-branch must not replace one in the
        // else-branch (no dominance either way).
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "p".into(),
                    ty: Type::ptr_scalar(Scalar::I32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let p = f.param_value(1);
        let t = f.add_block("t");
        let e = f.add_block("e");
        let mut b = Builder::at_entry(&mut f);
        let c = b.bool(true);
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.i32(1);
        let a1 = b.add(n, one);
        let g1 = b.gep(p, a1);
        b.store(g1, a1);
        b.ret();
        b.switch_to(e);
        let a2 = b.add(n, one);
        let g2 = b.gep(p, a2);
        b.store(g2, a2);
        b.ret();
        let mut gvn = Gvn::default();
        assert!(!gvn.run(&mut f));
        assert!(f.position_of(a1).is_some());
        assert!(f.position_of(a2).is_some());
    }

    #[test]
    fn dedups_workitem_calls() {
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::I32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let l1 = b.local_id_i32(0);
        let l2 = b.local_id_i32(0); // call + trunc, both redundant
        let g1 = b.gep(p, l1);
        let g2 = b.gep(p, l2);
        b.store(g1, l1);
        b.store(g2, l2);
        b.ret();
        let mut gvn = Gvn::default();
        assert!(gvn.run(&mut f));
        assert_eq!(gvn.replaced, 3); // call, trunc, gep
    }

    #[test]
    fn loads_never_merged() {
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let i = b.i32(0);
        let g = b.gep(p, i);
        let v1 = b.load(g);
        b.store(g, v1);
        let v2 = b.load(g); // may observe the store; must stay
        let one = b.i32(1);
        let g1 = b.gep(p, one);
        b.store(g1, v2);
        b.ret();
        let mut gvn = Gvn::default();
        gvn.run(&mut f);
        assert!(f.position_of(v2).is_some());
    }
}
