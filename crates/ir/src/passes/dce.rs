//! Dead-code elimination.
//!
//! Removes unused side-effect-free instructions, iterating until stable.
//! After Grover rewires every `LL` use to the new global load, the whole
//! `GL -> LS` staging chain (and its index arithmetic) dies here.

use std::collections::HashMap;

use crate::function::Function;
use crate::passes::FunctionPass;
use crate::value::ValueId;

/// Dead-code-elimination pass.
#[derive(Default)]
pub struct DeadCodeElim {
    /// Number of instructions removed by the last run.
    pub removed: usize,
}

impl FunctionPass for DeadCodeElim {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.removed = 0;
        loop {
            // Count uses of every value.
            let mut use_count: HashMap<ValueId, usize> = HashMap::new();
            for (_, iv) in f.iter_insts() {
                f.inst(iv)
                    .expect("inst")
                    .visit_operands(|v| *use_count.entry(v).or_insert(0) += 1);
            }
            let dead: Vec<ValueId> = f
                .iter_insts()
                .map(|(_, iv)| iv)
                .filter(|&iv| {
                    let inst = f.inst(iv).expect("inst");
                    !inst.has_side_effects()
                        && !matches!(inst, crate::value::Inst::Load { .. } if false)
                        && use_count.get(&iv).copied().unwrap_or(0) == 0
                })
                .collect();
            if dead.is_empty() {
                break;
            }
            for iv in dead {
                if f.remove_inst(iv) {
                    self.removed += 1;
                }
            }
        }
        self.removed > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Param;

    #[test]
    fn removes_dead_chain() {
        let mut f = Function::new("k", vec![]);
        let mut b = Builder::at_entry(&mut f);
        let x = b.i32(1);
        let y = b.i32(2);
        let s = b.add(x, y);
        let _dead = b.mul(s, s); // unused; `s` then becomes unused too
        b.ret();
        let mut dce = DeadCodeElim::default();
        assert!(dce.run(&mut f));
        assert_eq!(dce.removed, 2);
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let i = b.i32(4);
        let g = b.gep(p, i);
        let v = b.f32(1.0);
        b.store(g, v);
        b.ret();
        let before = f.num_insts();
        let mut dce = DeadCodeElim::default();
        assert!(!dce.run(&mut f));
        assert_eq!(f.num_insts(), before);
    }

    #[test]
    fn dead_load_is_removed() {
        // Loads are side-effect-free in our model; an unused load dies.
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let i = b.i32(4);
        let g = b.gep(p, i);
        let _v = b.load(g);
        b.ret();
        let mut dce = DeadCodeElim::default();
        assert!(dce.run(&mut f));
        assert_eq!(f.num_insts(), 1);
    }
}
