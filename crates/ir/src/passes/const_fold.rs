//! Constant folding and trivial algebraic simplification.

use crate::function::Function;
use crate::passes::FunctionPass;
use crate::value::{BinOp, CastKind, CmpPred, ConstVal, Inst, ValueId};

/// Constant-folding / algebraic-simplification pass.
#[derive(Default)]
pub struct ConstFold {
    /// Number of instructions folded by the last run.
    pub folded: usize,
}

impl FunctionPass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.folded = 0;
        loop {
            let mut replaced = false;
            let insts: Vec<ValueId> = f.iter_insts().map(|(_, iv)| iv).collect();
            for iv in insts {
                let Some(inst) = f.inst(iv).cloned() else {
                    continue;
                };
                if let Some(result) = fold(f, &inst) {
                    let cv = f.const_val(result);
                    f.replace_all_uses(iv, cv);
                    f.remove_inst(iv);
                    self.folded += 1;
                    replaced = true;
                } else if let Some(simpler) = simplify(f, &inst) {
                    f.replace_all_uses(iv, simpler);
                    f.remove_inst(iv);
                    self.folded += 1;
                    replaced = true;
                }
            }
            if !replaced {
                break;
            }
        }
        self.folded > 0
    }
}

/// Evaluate an instruction whose operands are all constants.
fn fold(f: &Function, inst: &Inst) -> Option<ConstVal> {
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let l = f.as_const(*lhs)?;
            let r = f.as_const(*rhs)?;
            fold_bin(*op, l, r)
        }
        Inst::Cmp { pred, lhs, rhs } => {
            let l = f.as_const(*lhs)?;
            let r = f.as_const(*rhs)?;
            fold_cmp(*pred, l, r)
        }
        Inst::Cast { kind, value, to } => {
            let v = f.as_const(*value)?;
            fold_cast(*kind, v, *to)
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            let c = f.as_const(*cond)?;
            match c {
                ConstVal::Bool(true) => f.as_const(*then_val),
                ConstVal::Bool(false) => f.as_const(*else_val),
                _ => None,
            }
        }
        _ => None,
    }
}

fn fold_bin(op: BinOp, l: ConstVal, r: ConstVal) -> Option<ConstVal> {
    use BinOp::*;
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        let wide = matches!(l, ConstVal::I64(_));
        let v: i64 = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            SDiv => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            UDiv => {
                if b == 0 {
                    return None;
                }
                ((a as u64) / (b as u64)) as i64
            }
            SRem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            URem => {
                if b == 0 {
                    return None;
                }
                ((a as u64) % (b as u64)) as i64
            }
            Shl => a.wrapping_shl(b as u32),
            LShr => {
                if wide {
                    ((a as u64) >> (b as u32 & 63)) as i64
                } else {
                    (((a as u32) >> (b as u32 & 31)) as i32) as i64
                }
            }
            AShr => a.wrapping_shr(b as u32),
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            _ => return None,
        };
        return Some(if wide {
            ConstVal::I64(v)
        } else {
            ConstVal::I32(v as i32)
        });
    }
    if let (Some(a), Some(b)) = (l.as_f32(), r.as_f32()) {
        let v = match op {
            FAdd => a + b,
            FSub => a - b,
            FMul => a * b,
            FDiv => a / b,
            FMin => a.min(b),
            FMax => a.max(b),
            _ => return None,
        };
        return Some(ConstVal::f32(v));
    }
    None
}

fn fold_cmp(pred: CmpPred, l: ConstVal, r: ConstVal) -> Option<ConstVal> {
    use CmpPred::*;
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        let (ua, ub) = (a as u64, b as u64);
        let v = match pred {
            Eq => a == b,
            Ne => a != b,
            Slt => a < b,
            Sle => a <= b,
            Sgt => a > b,
            Sge => a >= b,
            Ult => ua < ub,
            Ule => ua <= ub,
            Ugt => ua > ub,
            Uge => ua >= ub,
            _ => return None,
        };
        return Some(ConstVal::Bool(v));
    }
    if let (Some(a), Some(b)) = (l.as_f32(), r.as_f32()) {
        let v = match pred {
            FEq => a == b,
            FNe => a != b,
            FLt => a < b,
            FLe => a <= b,
            FGt => a > b,
            FGe => a >= b,
            _ => return None,
        };
        return Some(ConstVal::Bool(v));
    }
    None
}

fn fold_cast(kind: CastKind, v: ConstVal, to: crate::types::Type) -> Option<ConstVal> {
    use crate::types::{Scalar, Type};
    let target = match to {
        Type::Scalar(s) => s,
        _ => return None,
    };
    match (kind, v, target) {
        (CastKind::SExt, ConstVal::I32(x), Scalar::I64) => Some(ConstVal::I64(x as i64)),
        (CastKind::ZExt, ConstVal::I32(x), Scalar::I64) => Some(ConstVal::I64(x as u32 as i64)),
        (CastKind::ZExt, ConstVal::Bool(x), Scalar::I32) => Some(ConstVal::I32(x as i32)),
        (CastKind::Trunc, ConstVal::I64(x), Scalar::I32) => Some(ConstVal::I32(x as i32)),
        (CastKind::SiToFp, ConstVal::I32(x), Scalar::F32) => Some(ConstVal::f32(x as f32)),
        (CastKind::SiToFp, ConstVal::I64(x), Scalar::F32) => Some(ConstVal::f32(x as f32)),
        (CastKind::FpToSi, ConstVal::F32Bits(_), Scalar::I32) => {
            Some(ConstVal::I32(v.as_f32()? as i32))
        }
        (CastKind::Bitcast, ConstVal::I32(x), Scalar::F32) => Some(ConstVal::F32Bits(x as u32)),
        (CastKind::Bitcast, ConstVal::F32Bits(b), Scalar::I32) => Some(ConstVal::I32(b as i32)),
        _ => None,
    }
}

/// Algebraic identities returning an existing value: `x+0`, `x*1`, `x*0` is
/// handled by fold when both sides constant; here one side is constant.
fn simplify(f: &Function, inst: &Inst) -> Option<ValueId> {
    // trunc(sext/zext(x)) == x when the truncation returns to x's type —
    // the round-trip the Grover substitution introduces around solutions.
    if let Inst::Cast {
        kind: CastKind::Trunc,
        value,
        to,
    } = inst
    {
        if let Some(Inst::Cast {
            kind: CastKind::SExt | CastKind::ZExt,
            value: orig,
            ..
        }) = f.inst(*value)
        {
            if f.ty(*orig) == *to {
                return Some(*orig);
            }
        }
    }
    if let Inst::Bin { op, lhs, rhs } = inst {
        let lc = f.as_const_int(*lhs);
        let rc = f.as_const_int(*rhs);
        match op {
            BinOp::Add => {
                if rc == Some(0) {
                    return Some(*lhs);
                }
                if lc == Some(0) {
                    return Some(*rhs);
                }
            }
            BinOp::Sub | BinOp::Shl | BinOp::LShr | BinOp::AShr if rc == Some(0) => {
                return Some(*lhs);
            }
            BinOp::Mul => {
                if rc == Some(1) {
                    return Some(*lhs);
                }
                if lc == Some(1) {
                    return Some(*rhs);
                }
            }
            BinOp::SDiv | BinOp::UDiv if rc == Some(1) => {
                return Some(*lhs);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::Type;
    use crate::value::CmpPred;

    #[test]
    fn folds_int_arith() {
        let mut f = Function::new("k", vec![]);
        let mut b = Builder::at_entry(&mut f);
        let x = b.i32(6);
        let y = b.i32(7);
        let m = b.mul(x, y);
        let p = f.param_by_name("none"); // no params; just exercise API
        assert!(p.is_none());
        let mut bb = Builder::at_entry(&mut f);
        bb.ret();
        let mut cf = ConstFold::default();
        assert!(cf.run(&mut f));
        // `m` should now be gone and unused.
        assert!(f.position_of(m).is_none());
    }

    #[test]
    fn folds_comparison_chain() {
        let mut f = Function::new("k", vec![]);
        let mut b = Builder::at_entry(&mut f);
        let x = b.i32(3);
        let y = b.i32(4);
        let c = b.cmp(CmpPred::Slt, x, y);
        let t = b.f32(1.0);
        let e = b.f32(2.0);
        let s = b.select(c, t, e);
        b.ret();
        let mut cf = ConstFold::default();
        assert!(cf.run(&mut f));
        assert!(f.position_of(s).is_none());
        assert!(f.position_of(c).is_none());
    }

    #[test]
    fn add_zero_simplifies() {
        use crate::types::{AddressSpace, Scalar};
        use crate::value::Param;
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "p".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let p = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let z = b.i32(0);
        let a = b.add(n, z); // n + 0 -> n
        let g = b.gep(p, a);
        let v = b.load(g);
        b.store(g, v);
        b.ret();
        let mut cf = ConstFold::default();
        assert!(cf.run(&mut f));
        assert!(f.position_of(a).is_none());
        // gep now uses n directly
        let gi = f.inst(g).unwrap().operands();
        assert_eq!(gi[1], n);
    }

    #[test]
    fn division_by_zero_not_folded() {
        assert_eq!(
            fold_bin(BinOp::SDiv, ConstVal::I32(1), ConstVal::I32(0)),
            None
        );
        assert_eq!(
            fold_bin(BinOp::URem, ConstVal::I32(1), ConstVal::I32(0)),
            None
        );
    }

    #[test]
    fn casts_fold() {
        assert_eq!(
            fold_cast(CastKind::Trunc, ConstVal::I64(0x1_0000_0005), Type::I32),
            Some(ConstVal::I32(5))
        );
        assert_eq!(
            fold_cast(CastKind::SiToFp, ConstVal::I32(3), Type::F32),
            Some(ConstVal::f32(3.0))
        );
    }
}
