//! CFG simplification: fold constant conditional branches and drop
//! unreachable blocks' instructions.

use crate::cfg::reachable;
use crate::function::Function;
use crate::passes::FunctionPass;
use crate::value::{ConstVal, Inst, ValueId};

/// CFG-simplification pass.
#[derive(Default)]
pub struct SimplifyCfg {
    /// Number of CFG edits made by the last run.
    pub changes: usize,
}

impl FunctionPass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.changes = 0;

        // Fold `condbr const, a, b` into `br`.
        let insts: Vec<ValueId> = f.iter_insts().map(|(_, iv)| iv).collect();
        for iv in insts {
            let Some(Inst::CondBr {
                cond,
                then_blk,
                else_blk,
            }) = f.inst(iv).cloned()
            else {
                continue;
            };
            if let Some(ConstVal::Bool(c)) = f.as_const(cond) {
                let target = if c { then_blk } else { else_blk };
                let dropped = if c { else_blk } else { then_blk };
                *f.inst_mut(iv).expect("inst") = Inst::Br { target };
                // Remove the dropped edge from phis in the no-longer-successor
                // (only if the edge is really gone, i.e. the two targets differ).
                if target != dropped {
                    remove_phi_edges(f, dropped, iv);
                }
                self.changes += 1;
            }
        }

        // Empty out unreachable blocks (and fix phis that referenced them).
        let reach = reachable(f);
        for b in f.blocks().collect::<Vec<_>>() {
            if reach[b.index()] || f.block(b).insts.is_empty() {
                continue;
            }
            f.block_mut(b).insts.clear();
            self.changes += 1;
        }
        // Drop phi edges coming from unreachable blocks.
        let reach = reachable(f);
        let phis: Vec<ValueId> = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Phi { .. })))
            .map(|(_, iv)| iv)
            .collect();
        for iv in phis {
            if let Some(Inst::Phi { incoming }) = f.inst_mut(iv) {
                let before = incoming.len();
                incoming.retain(|(p, _)| reach[p.index()]);
                if incoming.len() != before {
                    self.changes += 1;
                }
                // Single-entry phi becomes a copy.
                if incoming.len() == 1 {
                    let only = incoming[0].1;
                    f.replace_all_uses(iv, only);
                    f.remove_inst(iv);
                    self.changes += 1;
                }
            }
        }

        self.changes > 0
    }
}

/// After an edge `from_term`'s block -> `blk` disappears, drop the matching
/// phi entries in `blk`.
fn remove_phi_edges(f: &mut Function, blk: crate::value::BlockId, from_term: ValueId) {
    let Some((from_blk, _)) = f.position_of(from_term) else {
        return;
    };
    let phis: Vec<ValueId> = f.block(blk).insts.clone();
    for iv in phis {
        if let Some(Inst::Phi { incoming }) = f.inst_mut(iv) {
            incoming.retain(|(p, _)| *p != from_blk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn constant_branch_folds() {
        let mut f = Function::new("k", vec![]);
        let t = f.add_block("t");
        let e = f.add_block("e");
        let mut b = Builder::at_entry(&mut f);
        let c = b.bool(true);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let mut p = SimplifyCfg::default();
        assert!(p.run(&mut f));
        assert_eq!(f.successors(f.entry), vec![t]);
        // Block e is now unreachable and was emptied.
        assert!(f.block(e).insts.is_empty());
    }

    #[test]
    fn single_entry_phi_collapses() {
        let mut f = Function::new("k", vec![]);
        let t = f.add_block("t");
        let e = f.add_block("e");
        let j = f.add_block("j");
        let one = f.const_i32(1);
        let two = f.const_i32(2);
        let mut b = Builder::at_entry(&mut f);
        let c = b.bool(false);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let phi = b.phi(Type::I32, vec![(t, one), (e, two)]);
        let s = b.add(phi, phi);
        let g = f.entry; // silence unused warnings path
        let _ = g;
        let mut bb = Builder::new(&mut f, j);
        bb.ret();
        let mut p = SimplifyCfg::default();
        assert!(p.run(&mut f));
        // cond is false -> only edge from e survives; phi collapsed to `two`.
        assert!(f.position_of(phi).is_none());
        let ops = f.inst(s).unwrap().operands();
        assert_eq!(ops, vec![two, two]);
    }

    #[test]
    fn no_change_on_clean_cfg() {
        let mut f = Function::new("k", vec![]);
        Builder::at_entry(&mut f).ret();
        let mut p = SimplifyCfg::default();
        assert!(!p.run(&mut f));
    }
}
