//! Loop-invariant code motion.
//!
//! Natural loops are found via back edges (`latch → header` where the
//! header dominates the latch). Pure, non-trapping instructions whose
//! operands are all defined outside the loop are hoisted to the preheader.
//! Loads and divisions are never hoisted (no alias analysis; division can
//! trap when executed speculatively).

use std::collections::HashSet;

use crate::cfg::{reverse_post_order, DomTree};
use crate::function::Function;
use crate::passes::FunctionPass;
use crate::value::{BinOp, BlockId, Inst, ValueDef, ValueId};

/// Loop-invariant code-motion pass.
#[derive(Default)]
pub struct Licm {
    /// Number of instructions hoisted by the last run.
    pub hoisted: usize,
}

/// A natural loop: header, body blocks (including header), preheader.
struct NaturalLoop {
    body: HashSet<BlockId>,
    /// `body` in block-index order — hoisting must visit blocks in a
    /// deterministic order or the preheader's instruction order (and any
    /// golden snapshot of it) varies from process to process.
    body_ordered: Vec<BlockId>,
    preheader: BlockId,
}

fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let dt = DomTree::compute(f);
    let rpo = reverse_post_order(f);
    let preds = f.predecessors();
    let mut loops = Vec::new();
    // Group back edges by header.
    let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for &b in &rpo {
        for s in f.successors(b) {
            if dt.dominates(s, b) {
                match headers.iter_mut().find(|(h, _)| *h == s) {
                    Some((_, latches)) => latches.push(b),
                    None => headers.push((s, vec![b])),
                }
            }
        }
    }
    for (header, latches) in headers {
        // Natural loop body: header + all nodes that reach a latch without
        // passing through the header (walk predecessors backwards).
        let mut body: HashSet<BlockId> = HashSet::new();
        body.insert(header);
        let mut stack: Vec<BlockId> = Vec::new();
        for &l in &latches {
            if body.insert(l) {
                stack.push(l);
            }
        }
        while let Some(b) = stack.pop() {
            for &p in &preds[b.index()] {
                if body.insert(p) {
                    stack.push(p);
                }
            }
        }
        // Preheader: the unique predecessor of the header outside the loop.
        let outside: Vec<BlockId> = preds[header.index()]
            .iter()
            .copied()
            .filter(|p| !body.contains(p))
            .collect();
        if outside.len() != 1 {
            continue;
        }
        let mut body_ordered: Vec<BlockId> = body.iter().copied().collect();
        body_ordered.sort_by_key(|b| b.index());
        loops.push(NaturalLoop {
            body,
            body_ordered,
            preheader: outside[0],
        });
    }
    loops
}

/// Is this instruction safe to execute speculatively in the preheader?
fn hoistable(inst: &Inst) -> bool {
    match inst {
        Inst::Bin { op, .. } => {
            !matches!(op, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
        }
        Inst::Cmp { .. }
        | Inst::Select { .. }
        | Inst::Cast { .. }
        | Inst::Call { .. }
        | Inst::Gep { .. }
        | Inst::ExtractLane { .. }
        | Inst::InsertLane { .. }
        | Inst::BuildVector { .. } => true,
        _ => false,
    }
}

impl FunctionPass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        self.hoisted = 0;
        let loops = find_loops(f);
        for lp in &loops {
            loop {
                // Values defined inside the loop (recomputed after each hoist).
                let mut inside: HashSet<ValueId> = HashSet::new();
                for &b in &lp.body {
                    inside.extend(f.block(b).insts.iter().copied());
                }
                let mut moved = false;
                for &b in &lp.body_ordered {
                    let insts = f.block(b).insts.clone();
                    for iv in insts {
                        let Some(inst) = f.inst(iv) else { continue };
                        if !hoistable(inst) {
                            continue;
                        }
                        let mut invariant = true;
                        inst.visit_operands(|op| {
                            if inside.contains(&op) {
                                invariant = false;
                            }
                            // Params/consts/localbufs are always invariant.
                            if let ValueDef::Inst(_) = f.value(op).def {
                                // handled by `inside` check plus: defined in
                                // a block outside the loop is fine.
                            }
                        });
                        if !invariant {
                            continue;
                        }
                        // Move to the preheader, before its terminator.
                        f.remove_inst(iv);
                        let ph = lp.preheader;
                        let at = f.block(ph).insts.len().saturating_sub(1);
                        // Re-insert the existing value id at the new spot:
                        // Function stores instructions as values, so we can
                        // splice the id directly.
                        f.block_mut(ph).insts.insert(at, iv);
                        inside.remove(&iv);
                        self.hoisted += 1;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
        }
        self.hoisted > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Param;

    /// Build: for(i=0..n) out[i] = x*2 + i  — `x*2` must hoist.
    fn loop_kernel() -> (Function, ValueId) {
        let mut f = Function::new(
            "k",
            vec![
                Param {
                    name: "out".into(),
                    ty: Type::ptr_scalar(Scalar::I32, AddressSpace::Global),
                },
                Param {
                    name: "x".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
            ],
        );
        let out = f.param_value(0);
        let x = f.param_value(1);
        let n = f.param_value(2);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let zero = f.const_i32(0);
        let mut b = Builder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        // i = phi(entry: 0, body: i+1)
        let phi = b.phi(Type::I32, vec![]);
        let c = b.cmp(crate::value::CmpPred::Slt, phi, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let two = b.i32(2);
        let x2 = b.mul(x, two); // invariant!
        let val = b.add(x2, phi);
        let g = b.gep(out, phi);
        b.store(g, val);
        let one = b.i32(1);
        let inext = b.add(phi, one);
        b.br(header);
        b.switch_to(exit);
        b.ret();
        let entry = f.entry;
        if let Some(Inst::Phi { incoming }) = f.inst_mut(phi) {
            *incoming = vec![(entry, zero), (body, inext)];
        }
        (f, x2)
    }

    #[test]
    fn invariant_mul_hoisted() {
        let (mut f, x2) = loop_kernel();
        assert!(
            crate::verifier::verify(&f).is_ok(),
            "{:?}",
            crate::verifier::verify(&f)
        );
        let mut licm = Licm::default();
        assert!(licm.run(&mut f));
        let (blk, _) = f.position_of(x2).unwrap();
        assert_eq!(blk, f.entry, "x*2 should live in the preheader");
        assert!(
            crate::verifier::verify(&f).is_ok(),
            "{:?}",
            crate::verifier::verify(&f)
        );
    }

    #[test]
    fn variant_instructions_stay() {
        let (mut f, _) = loop_kernel();
        let mut licm = Licm::default();
        licm.run(&mut f);
        // The gep uses the phi -> must remain in the loop body.
        let geps: Vec<_> = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Gep { .. })))
            .collect();
        assert_eq!(geps.len(), 1);
        let (blk, _) = geps[0];
        assert_ne!(blk, f.entry);
    }

    #[test]
    fn idempotent() {
        let (mut f, _) = loop_kernel();
        let mut licm = Licm::default();
        licm.run(&mut f);
        assert!(!licm.run(&mut f));
    }

    #[test]
    fn no_loop_no_change() {
        let mut f = Function::new("k", vec![]);
        Builder::at_entry(&mut f).ret();
        let mut licm = Licm::default();
        assert!(!licm.run(&mut f));
    }
}
