//! Generic function-pass framework and the standard cleanup passes the
//! Grover transformation relies on (paper §IV-F removes the now-dead GL/LS
//! chain with ordinary dead-code elimination).

mod const_fold;
mod dce;
mod gvn;
mod licm;
mod simplify_cfg;

pub use const_fold::ConstFold;
pub use dce::DeadCodeElim;
pub use gvn::Gvn;
pub use licm::Licm;
pub use simplify_cfg::SimplifyCfg;

use crate::function::Function;

/// A transformation over a single function.
pub trait FunctionPass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;

    /// Run the pass; return `true` if the function changed.
    fn run(&mut self, f: &mut Function) -> bool;
}

/// Runs a pipeline of passes, optionally iterating to a fixed point.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn FunctionPass>>,
    /// Verify the IR after every pass (on by default in debug builds).
    pub verify_each: bool,
}

impl PassManager {
    /// An empty pipeline (verification-on-change in debug builds).
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            verify_each: cfg!(debug_assertions),
        }
    }

    /// The standard cleanup pipeline: constant folding, DCE, CFG simplify.
    pub fn cleanup_pipeline() -> PassManager {
        let mut pm = PassManager::new();
        pm.add(ConstFold::default());
        pm.add(DeadCodeElim::default());
        pm.add(SimplifyCfg::default());
        pm
    }

    /// The standard optimisation pipeline (an `-O2` stand-in): cleanup plus
    /// global value numbering and loop-invariant code motion. Kernel pairs
    /// are run through this before being compared, mirroring the vendor
    /// compilers in the paper's pipeline.
    pub fn optimize_pipeline() -> PassManager {
        let mut pm = PassManager::new();
        pm.add(ConstFold::default());
        pm.add(Gvn::default());
        pm.add(Licm::default());
        pm.add(DeadCodeElim::default());
        pm.add(SimplifyCfg::default());
        pm
    }

    /// Append a pass to the pipeline.
    pub fn add(&mut self, p: impl FunctionPass + 'static) -> &mut Self {
        self.passes.push(Box::new(p));
        self
    }

    /// Run every pass once, in order. Returns whether anything changed.
    pub fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        for p in &mut self.passes {
            let c = p.run(f);
            changed |= c;
            if self.verify_each && c {
                if let Err(errs) = crate::verifier::verify(f) {
                    panic!("pass {} broke the IR: {:?}", p.name(), errs);
                }
            }
        }
        changed
    }

    /// Iterate the pipeline until no pass changes anything (bounded).
    pub fn run_to_fixpoint(&mut self, f: &mut Function, max_iters: usize) -> bool {
        let mut any = false;
        for _ in 0..max_iters {
            if !self.run(f) {
                return any;
            }
            any = true;
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::function::Function;

    struct Nop;
    impl FunctionPass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&mut self, _f: &mut Function) -> bool {
            false
        }
    }

    #[test]
    fn empty_pipeline_reports_no_change() {
        let mut f = Function::new("k", vec![]);
        Builder::at_entry(&mut f).ret();
        let mut pm = PassManager::new();
        pm.add(Nop);
        assert!(!pm.run(&mut f));
        assert!(!pm.run_to_fixpoint(&mut f, 10));
    }

    #[test]
    fn cleanup_pipeline_runs() {
        let mut f = Function::new("k", vec![]);
        let mut b = Builder::at_entry(&mut f);
        let x = b.i32(2);
        let y = b.i32(3);
        let _dead = b.add(x, y);
        b.ret();
        let mut pm = PassManager::cleanup_pipeline();
        assert!(pm.run_to_fixpoint(&mut f, 8));
        assert_eq!(f.num_insts(), 1); // only ret remains
    }
}
