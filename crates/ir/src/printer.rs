//! Textual form of the IR, LLVM-flavoured. Used by the CLI, test
//! expectations and the paper's Fig. 1-style before/after listings.

use std::fmt::Write;

use crate::function::Function;
use crate::value::{ConstVal, Inst, ValueDef, ValueId};

/// Render a value reference, preferring its debug name.
pub fn value_ref(f: &Function, v: ValueId) -> String {
    let vd = f.value(v);
    match &vd.def {
        ValueDef::Const(c) => match c {
            ConstVal::Bool(b) => b.to_string(),
            ConstVal::I32(i) => i.to_string(),
            ConstVal::I64(i) => format!("{i}L"),
            ConstVal::F32Bits(b) => {
                let x = f32::from_bits(*b);
                if x == x.trunc() && x.abs() < 1e9 {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
        },
        ValueDef::Param(_) => format!("%{}", vd.name.as_deref().unwrap_or("param")),
        ValueDef::LocalBuf(_) => format!("@{}", vd.name.as_deref().unwrap_or("local")),
        ValueDef::Inst(_) => match &vd.name {
            Some(n) => format!("%{n}"),
            None => format!("%v{}", v.0),
        },
    }
}

/// Render one instruction.
pub fn inst_to_string(f: &Function, v: ValueId) -> String {
    let inst = f.inst(v).expect("not an instruction");
    let r = |x: ValueId| value_ref(f, x);
    let result = value_ref(f, v);
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            format!(
                "{result} = {} {} {}, {}",
                op.mnemonic(),
                f.ty(v),
                r(*lhs),
                r(*rhs)
            )
        }
        Inst::Cmp { pred, lhs, rhs } => {
            format!(
                "{result} = cmp {} {} {}, {}",
                pred.mnemonic(),
                f.ty(*lhs),
                r(*lhs),
                r(*rhs)
            )
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            format!(
                "{result} = select {}, {}, {}",
                r(*cond),
                r(*then_val),
                r(*else_val)
            )
        }
        Inst::Cast { kind, value, to } => {
            format!("{result} = {} {} to {to}", kind.mnemonic(), r(*value))
        }
        Inst::Call { builtin, args } => {
            let a: Vec<_> = args.iter().map(|&x| r(x)).collect();
            format!("{result} = call {}({})", builtin.name(), a.join(", "))
        }
        Inst::Gep { base, index } => {
            format!("{result} = gep {} {}, {}", f.ty(*base), r(*base), r(*index))
        }
        Inst::Load { ptr } => format!("{result} = load {} {}", f.ty(v), r(*ptr)),
        Inst::Store { ptr, value } => format!("store {} {}, {}", f.ty(*value), r(*value), r(*ptr)),
        Inst::Barrier { scope } => format!("barrier {scope:?}"),
        Inst::Phi { incoming } => {
            let parts: Vec<_> = incoming
                .iter()
                .map(|(b, val)| format!("[{}: {}]", f.block(*b).name, r(*val)))
                .collect();
            format!("{result} = phi {} {}", f.ty(v), parts.join(", "))
        }
        Inst::ExtractLane { vector, lane } => {
            format!("{result} = extractlane {}, {}", r(*vector), r(*lane))
        }
        Inst::InsertLane {
            vector,
            lane,
            value,
        } => {
            format!(
                "{result} = insertlane {}, {}, {}",
                r(*vector),
                r(*lane),
                r(*value)
            )
        }
        Inst::BuildVector { lanes } => {
            let a: Vec<_> = lanes.iter().map(|&x| r(x)).collect();
            format!("{result} = buildvector <{}>", a.join(", "))
        }
        Inst::Br { target } => format!("br {}", f.block(*target).name),
        Inst::CondBr {
            cond,
            then_blk,
            else_blk,
        } => format!(
            "condbr {}, {}, {}",
            r(*cond),
            f.block(*then_blk).name,
            f.block(*else_blk).name
        ),
        Inst::Ret => "ret".to_string(),
    }
}

/// Render the whole function.
pub fn function_to_string(f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<_> = f
        .params()
        .iter()
        .map(|p| format!("{} %{}", p.ty, p.name))
        .collect();
    let _ = writeln!(s, "kernel @{}({}) {{", f.name, params.join(", "));
    for (i, lb) in f.local_bufs().iter().enumerate() {
        if lb.is_empty() {
            continue;
        }
        let dims: Vec<_> = lb.dims.iter().map(u64::to_string).collect();
        let _ = writeln!(
            s,
            "  local @{} : {}{}[{}]   ; {} bytes",
            lb.name,
            lb.elem,
            if lb.lanes > 1 {
                format!("x{}", lb.lanes)
            } else {
                String::new()
            },
            dims.join("]["),
            lb.size_bytes()
        );
        let _ = i;
    }
    for b in f.blocks() {
        let _ = writeln!(s, "{}:", f.block(b).name);
        for &iv in &f.block(b).insts {
            let _ = writeln!(s, "  {}", inst_to_string(f, iv));
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Param;

    #[test]
    fn prints_a_small_kernel() {
        let mut f = Function::new(
            "copy",
            vec![
                Param {
                    name: "in".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
                Param {
                    name: "out".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
            ],
        );
        let inp = f.param_value(0);
        let outp = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let gid = b.global_id_i32(0);
        let src = b.gep(inp, gid);
        let v = b.load(src);
        let dst = b.gep(outp, gid);
        b.store(dst, v);
        b.ret();
        let text = function_to_string(&f);
        assert!(text.contains("kernel @copy"), "{text}");
        assert!(text.contains("call get_global_id(0)"), "{text}");
        assert!(text.contains("store f32"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn prints_local_buffers() {
        let mut f = Function::new("k", vec![]);
        f.add_local_buf(Function::local_buf_spec("lm", Scalar::F32, &[16, 16]));
        let mut b = Builder::at_entry(&mut f);
        b.ret();
        let text = function_to_string(&f);
        assert!(text.contains("local @lm : f32[16][16]"), "{text}");
        assert!(text.contains("1024 bytes"), "{text}");
    }

    #[test]
    fn float_consts_render_compactly() {
        let mut f = Function::new("k", vec![]);
        let c = f.const_f32(2.0);
        assert_eq!(value_ref(&f, c), "2.0");
        let c2 = f.const_f32(0.25);
        assert_eq!(value_ref(&f, c2), "0.25");
    }
}
