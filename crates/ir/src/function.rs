//! Kernel functions: the value arena, basic blocks, and editing utilities.

use std::collections::HashMap;

use crate::types::{Scalar, Type};
use crate::value::{
    BlockId, ConstVal, Inst, LocalBuf, LocalBufId, Param, ValueData, ValueDef, ValueId,
};

/// A basic block: an ordered list of instruction value ids, ending in a
/// terminator once construction is finished.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Unique display name (label in the textual form).
    pub name: String,
    /// Instructions in execution order; the last is the terminator.
    pub insts: Vec<ValueId>,
}

/// A kernel function in SSA form.
#[derive(Clone, Debug)]
pub struct Function {
    /// Kernel name.
    pub name: String,
    params: Vec<Param>,
    /// Value ids of the parameters (parallel to `params`).
    param_values: Vec<ValueId>,
    values: Vec<ValueData>,
    blocks: Vec<Block>,
    local_bufs: Vec<LocalBuf>,
    local_buf_values: Vec<ValueId>,
    const_map: HashMap<ConstVal, ValueId>,
    /// Entry block (always `BlockId(0)` once created).
    pub entry: BlockId,
}

impl Function {
    /// Create an empty function with the given parameters. An entry block is
    /// created automatically.
    pub fn new(name: impl Into<String>, params: Vec<Param>) -> Function {
        let mut f = Function {
            name: name.into(),
            params: Vec::new(),
            param_values: Vec::new(),
            values: Vec::new(),
            blocks: Vec::new(),
            local_bufs: Vec::new(),
            local_buf_values: Vec::new(),
            const_map: HashMap::new(),
            entry: BlockId(0),
        };
        for p in params {
            let id = f.push_value(ValueData {
                def: ValueDef::Param(f.params.len() as u32),
                ty: p.ty,
                name: Some(p.name.clone()),
            });
            f.params.push(p);
            f.param_values.push(id);
        }
        f.entry = f.add_block("entry");
        f
    }

    fn push_value(&mut self, data: ValueData) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(data);
        id
    }

    // ---- parameters & locals -------------------------------------------------

    /// The kernel's parameters, in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Value id of the `i`-th parameter.
    pub fn param_value(&self, i: usize) -> ValueId {
        self.param_values[i]
    }

    /// Look up a parameter's value id by name.
    pub fn param_by_name(&self, name: &str) -> Option<ValueId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| self.param_values[i])
    }

    /// Declare a `__local` buffer; returns the pointer value to its start.
    pub fn add_local_buf(&mut self, buf: LocalBuf) -> ValueId {
        let id = LocalBufId(self.local_bufs.len() as u32);
        let ty = Type::ptr(buf.elem, buf.lanes, crate::types::AddressSpace::Local);
        let name = buf.name.clone();
        self.local_bufs.push(buf);
        let v = self.push_value(ValueData {
            def: ValueDef::LocalBuf(id),
            ty,
            name: Some(name),
        });
        self.local_buf_values.push(v);
        v
    }

    /// The kernel's `__local` buffers.
    pub fn local_bufs(&self) -> &[LocalBuf] {
        &self.local_bufs
    }

    /// One `__local` buffer by id.
    pub fn local_buf(&self, id: LocalBufId) -> &LocalBuf {
        &self.local_bufs[id.index()]
    }

    /// Value id of the pointer to a local buffer.
    pub fn local_buf_value(&self, id: LocalBufId) -> ValueId {
        self.local_buf_values[id.index()]
    }

    /// Remove a local buffer *declaration*. The pointer value remains in the
    /// arena (it must already be unused); the buffer no longer contributes to
    /// the kernel's local-memory footprint.
    pub fn mark_local_buf_removed(&mut self, id: LocalBufId) {
        self.local_bufs[id.index()].dims = vec![0];
    }

    /// Total `__local` bytes the kernel still allocates.
    pub fn local_mem_bytes(&self) -> u64 {
        self.local_bufs.iter().map(|b| b.size_bytes()).sum()
    }

    // ---- constants -----------------------------------------------------------

    /// Intern a constant.
    pub fn const_val(&mut self, c: ConstVal) -> ValueId {
        if let Some(&v) = self.const_map.get(&c) {
            return v;
        }
        let v = self.push_value(ValueData {
            def: ValueDef::Const(c),
            ty: c.ty(),
            name: None,
        });
        self.const_map.insert(c, v);
        v
    }

    /// Intern an `i32` constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.const_val(ConstVal::I32(v))
    }

    /// Intern an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_val(ConstVal::I64(v))
    }

    /// Intern an `f32` constant.
    pub fn const_f32(&mut self, v: f32) -> ValueId {
        self.const_val(ConstVal::f32(v))
    }

    /// Intern a boolean constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.const_val(ConstVal::Bool(v))
    }

    /// If `v` is a constant, return it.
    pub fn as_const(&self, v: ValueId) -> Option<ConstVal> {
        match self.value(v).def {
            ValueDef::Const(c) => Some(c),
            _ => None,
        }
    }

    /// If `v` is an integer constant, return its value.
    pub fn as_const_int(&self, v: ValueId) -> Option<i64> {
        self.as_const(v).and_then(ConstVal::as_int)
    }

    // ---- blocks ----------------------------------------------------------------

    /// Add a block. Names are made unique (a `.N` suffix is appended on
    /// collision) so the textual form is unambiguous.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let base: String = name.into();
        let mut candidate = base.clone();
        let mut n = 0;
        while self.blocks.iter().any(|b| b.name == candidate) {
            n += 1;
            candidate = format!("{base}.{n}");
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: candidate,
            insts: Vec::new(),
        });
        id
    }

    /// Iterate all block ids (including unreachable blocks).
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// One block by id.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to one block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// The terminator of a block, if construction has placed one.
    pub fn terminator(&self, b: BlockId) -> Option<&Inst> {
        let last = *self.block(b).insts.last()?;
        match &self.value(last).def {
            ValueDef::Inst(i) if i.is_terminator() => Some(i),
            _ => None,
        }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.terminator(b).map(Inst::successors).unwrap_or_default()
    }

    /// Predecessor map for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.blocks() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    // ---- values & instructions -------------------------------------------------

    /// Size of the value arena (params + constants + buffers + insts).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// One value by id.
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// Mutable access to one value.
    pub fn value_mut(&mut self, v: ValueId) -> &mut ValueData {
        &mut self.values[v.index()]
    }

    /// The type of a value.
    pub fn ty(&self, v: ValueId) -> Type {
        self.value(v).ty
    }

    /// The instruction behind a value, if it is one.
    pub fn inst(&self, v: ValueId) -> Option<&Inst> {
        match &self.value(v).def {
            ValueDef::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to the instruction behind a value, if it is one.
    pub fn inst_mut(&mut self, v: ValueId) -> Option<&mut Inst> {
        match &mut self.values[v.index()].def {
            ValueDef::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Create an instruction value and append it to block `b`.
    pub fn append_inst(&mut self, b: BlockId, inst: Inst, ty: Type) -> ValueId {
        let v = self.push_value(ValueData {
            def: ValueDef::Inst(inst),
            ty,
            name: None,
        });
        self.blocks[b.index()].insts.push(v);
        v
    }

    /// Create an instruction value and insert it in block `b` at position
    /// `pos` (0 = front).
    pub fn insert_inst(&mut self, b: BlockId, pos: usize, inst: Inst, ty: Type) -> ValueId {
        let v = self.push_value(ValueData {
            def: ValueDef::Inst(inst),
            ty,
            name: None,
        });
        self.blocks[b.index()].insts.insert(pos, v);
        v
    }

    /// Locate an instruction: `(block, index-within-block)`.
    pub fn position_of(&self, inst: ValueId) -> Option<(BlockId, usize)> {
        for b in self.blocks() {
            if let Some(i) = self.block(b).insts.iter().position(|&v| v == inst) {
                return Some((b, i));
            }
        }
        None
    }

    /// Remove an instruction from its block (the value stays in the arena but
    /// is no longer executed; callers ensure it has no remaining uses).
    pub fn remove_inst(&mut self, inst: ValueId) -> bool {
        for b in 0..self.blocks.len() {
            let insts = &mut self.blocks[b].insts;
            if let Some(i) = insts.iter().position(|&v| v == inst) {
                insts.remove(i);
                return true;
            }
        }
        false
    }

    /// Replace all uses of `old` with `new` in every instruction.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) -> usize {
        let mut n = 0;
        for vd in &mut self.values {
            if let ValueDef::Inst(i) = &mut vd.def {
                i.map_operands(|v| {
                    if v == old {
                        n += 1;
                        new
                    } else {
                        v
                    }
                });
            }
        }
        n
    }

    /// Collect the instructions (as value ids) that use `target` as an
    /// operand, in block program order.
    pub fn uses_of(&self, target: ValueId) -> Vec<ValueId> {
        let mut out = Vec::new();
        for b in self.blocks() {
            for &iv in &self.block(b).insts {
                if let Some(inst) = self.inst(iv) {
                    let mut used = false;
                    inst.visit_operands(|v| used |= v == target);
                    if used {
                        out.push(iv);
                    }
                }
            }
        }
        out
    }

    /// Count instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterate `(block, inst value id)` in program order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, ValueId)> + '_ {
        self.blocks()
            .flat_map(move |b| self.block(b).insts.iter().map(move |&v| (b, v)))
    }

    /// Assign a debug name to a value.
    pub fn set_name(&mut self, v: ValueId, name: impl Into<String>) {
        self.value_mut(v).name = Some(name.into());
    }

    /// Helper: make a `LocalBuf` quickly (used by tests).
    pub fn local_buf_spec(name: &str, elem: Scalar, dims: &[u64]) -> LocalBuf {
        LocalBuf {
            name: name.into(),
            elem,
            lanes: 1,
            dims: dims.to_vec(),
        }
    }
}

/// A module: a set of kernels compiled together.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// The kernels, in definition order.
    pub kernels: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Append a kernel; returns its index.
    pub fn add_kernel(&mut self, f: Function) -> usize {
        self.kernels.push(f);
        self.kernels.len() - 1
    }

    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Function> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Mutable lookup of a kernel by name.
    pub fn kernel_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.kernels.iter_mut().find(|k| k.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AddressSpace;
    use crate::value::BinOp;

    fn sample() -> Function {
        Function::new(
            "k",
            vec![
                Param {
                    name: "in".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
            ],
        )
    }

    #[test]
    fn params_are_values() {
        let f = sample();
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.ty(f.param_value(1)), Type::I32);
        assert_eq!(f.param_by_name("in"), Some(f.param_value(0)));
        assert_eq!(f.param_by_name("zzz"), None);
    }

    #[test]
    fn constants_are_interned() {
        let mut f = sample();
        let a = f.const_i32(42);
        let b = f.const_i32(42);
        let c = f.const_i32(7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(f.as_const_int(a), Some(42));
    }

    #[test]
    fn append_and_find_inst() {
        let mut f = sample();
        let one = f.const_i32(1);
        let two = f.const_i32(2);
        let e = f.entry;
        let add = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: one,
                rhs: two,
            },
            Type::I32,
        );
        assert_eq!(f.position_of(add), Some((e, 0)));
        assert_eq!(f.num_insts(), 1);
        assert!(f.remove_inst(add));
        assert_eq!(f.num_insts(), 0);
        assert!(!f.remove_inst(add));
    }

    #[test]
    fn rauw_rewrites_uses() {
        let mut f = sample();
        let one = f.const_i32(1);
        let two = f.const_i32(2);
        let e = f.entry;
        let add = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: one,
                rhs: one,
            },
            Type::I32,
        );
        let n = f.replace_all_uses(one, two);
        assert_eq!(n, 2);
        assert_eq!(f.inst(add).unwrap().operands(), vec![two, two]);
        assert_eq!(f.uses_of(two), vec![add]);
        assert!(f.uses_of(one).is_empty());
    }

    #[test]
    fn local_buf_roundtrip() {
        let mut f = sample();
        let v = f.add_local_buf(Function::local_buf_spec("lm", Scalar::F32, &[16, 16]));
        assert_eq!(f.local_mem_bytes(), 1024);
        assert_eq!(f.ty(v), Type::ptr_scalar(Scalar::F32, AddressSpace::Local));
        assert_eq!(f.local_buf_value(LocalBufId(0)), v);
        f.mark_local_buf_removed(LocalBufId(0));
        assert_eq!(f.local_mem_bytes(), 0);
    }

    #[test]
    fn successors_and_preds() {
        let mut f = sample();
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        let cond = f.const_bool(true);
        let e = f.entry;
        f.append_inst(
            e,
            Inst::CondBr {
                cond,
                then_blk: b1,
                else_blk: b2,
            },
            Type::Void,
        );
        f.append_inst(b1, Inst::Br { target: b2 }, Type::Void);
        f.append_inst(b2, Inst::Ret, Type::Void);
        assert_eq!(f.successors(e), vec![b1, b2]);
        assert_eq!(f.successors(b2), Vec::<BlockId>::new());
        let preds = f.predecessors();
        assert_eq!(preds[b2.index()], vec![e, b1]);
    }

    #[test]
    fn block_names_are_unique() {
        let mut f = sample();
        let a = f.add_block("if.then");
        let b = f.add_block("if.then");
        let c = f.add_block("if.then");
        assert_eq!(f.block(a).name, "if.then");
        assert_eq!(f.block(b).name, "if.then.1");
        assert_eq!(f.block(c).name, "if.then.2");
        // And a literal name that collides with a generated suffix.
        let d = f.add_block("if.then.1");
        assert_eq!(f.block(d).name, "if.then.1.1");
    }

    #[test]
    fn insert_inst_positions() {
        let mut f = sample();
        let one = f.const_i32(1);
        let e = f.entry;
        let a = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: one,
                rhs: one,
            },
            Type::I32,
        );
        let b = f.insert_inst(
            e,
            0,
            Inst::Bin {
                op: BinOp::Mul,
                lhs: one,
                rhs: one,
            },
            Type::I32,
        );
        assert_eq!(f.position_of(b), Some((e, 0)));
        assert_eq!(f.position_of(a), Some((e, 1)));
        assert_eq!(f.block(e).insts, vec![b, a]);
    }

    #[test]
    fn uses_of_in_program_order() {
        let mut f = sample();
        let n = f.param_value(1);
        let e = f.entry;
        let a = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: n,
                rhs: n,
            },
            Type::I32,
        );
        let b = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Mul,
                lhs: n,
                rhs: a,
            },
            Type::I32,
        );
        assert_eq!(f.uses_of(n), vec![a, b]);
        assert_eq!(f.uses_of(a), vec![b]);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.add_kernel(sample());
        assert!(m.kernel("k").is_some());
        assert!(m.kernel_mut("k").is_some());
        assert!(m.kernel("nope").is_none());
    }
}
