//! Values, constants and instructions.
//!
//! Everything an instruction can reference is a [`ValueId`]: function
//! parameters, interned constants, `__local` buffer pointers, and the results
//! of other instructions. Instructions themselves are values stored in the
//! per-function arena (see [`crate::function::Function`]); a block is an
//! ordered list of instruction value ids.

use crate::types::{Scalar, Type};

/// Index of a value in a function's value arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a basic block in a function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a `__local` buffer declared by a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LocalBufId(pub u32);

impl ValueId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The block index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LocalBufId {
    /// The buffer index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compile-time constant.
///
/// `F32` stores raw bits so constants can be interned (`Eq`/`Hash`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstVal {
    /// Boolean constant.
    Bool(bool),
    /// 32-bit integer constant.
    I32(i32),
    /// 64-bit integer constant.
    I64(i64),
    /// IEEE-754 bits of an `f32`.
    F32Bits(u32),
}

impl ConstVal {
    /// Make an `f32` constant (stored as bits).
    pub fn f32(v: f32) -> ConstVal {
        ConstVal::F32Bits(v.to_bits())
    }

    /// The float value, if this is an `f32` constant.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            ConstVal::F32Bits(b) => Some(f32::from_bits(b)),
            _ => None,
        }
    }

    /// Integer value if this is an integer constant (bool counts as 0/1).
    pub fn as_int(self) -> Option<i64> {
        match self {
            ConstVal::Bool(b) => Some(b as i64),
            ConstVal::I32(v) => Some(v as i64),
            ConstVal::I64(v) => Some(v),
            ConstVal::F32Bits(_) => None,
        }
    }

    /// The IR type of this constant.
    pub fn ty(self) -> Type {
        match self {
            ConstVal::Bool(_) => Type::BOOL,
            ConstVal::I32(_) => Type::I32,
            ConstVal::I64(_) => Type::I64,
            ConstVal::F32Bits(_) => Type::F32,
        }
    }
}

/// Binary opcodes. Integer ops wrap on overflow (OpenCL semantics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division (truncating).
    SDiv,
    /// Unsigned integer division.
    UDiv,
    /// Signed remainder (C semantics).
    SRem,
    /// Unsigned remainder.
    URem,
    /// Shift left.
    Shl,
    /// Logical (zero-filling) shift right.
    LShr,
    /// Arithmetic (sign-filling) shift right.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
}

impl BinOp {
    /// Whether this is one of the floating-point opcodes.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Whether operand order is irrelevant (used by GVN canonicalisation).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMin
                | BinOp::FMax
        )
    }

    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }
}

/// Comparison predicates. `U*` are unsigned integer comparisons, `S*` signed,
/// `F*` ordered float comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpPred {
    /// Integer equality.
    Eq,
    /// Integer inequality.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Float equality (ordered).
    FEq,
    /// Float inequality.
    FNe,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Float greater-than.
    FGt,
    /// Float greater-or-equal.
    FGe,
}

impl CmpPred {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::FEq => "feq",
            CmpPred::FNe => "fne",
            CmpPred::FLt => "flt",
            CmpPred::FLe => "fle",
            CmpPred::FGt => "fgt",
            CmpPred::FGe => "fge",
        }
    }
}

/// Conversion opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// Sign-extend an integer to a wider integer type.
    SExt,
    /// Zero-extend an integer to a wider integer type.
    ZExt,
    /// Truncate an integer to a narrower integer type.
    Trunc,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (round toward zero).
    FpToSi,
    /// Reinterpret bits (same size).
    Bitcast,
}

impl CastKind {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::SExt => "sext",
            CastKind::ZExt => "zext",
            CastKind::Trunc => "trunc",
            CastKind::SiToFp => "sitofp",
            CastKind::FpToSi => "fptosi",
            CastKind::Bitcast => "bitcast",
        }
    }
}

/// OpenCL built-in functions callable from kernels.
///
/// The work-item query functions are the load-bearing ones for Grover's
/// analysis: they are the symbols of the affine index algebra (paper §III-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `get_global_id(dim)`
    GlobalId,
    /// `get_local_id(dim)`
    LocalId,
    /// `get_group_id(dim)`
    GroupId,
    /// `get_local_size(dim)`
    LocalSize,
    /// `get_global_size(dim)`
    GlobalSize,
    /// `get_num_groups(dim)`
    NumGroups,
    /// `sqrt(x)`
    Sqrt,
    /// `rsqrt(x)` — reciprocal square root
    Rsqrt,
    /// `fabs(x)`
    Fabs,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `floor(x)`
    Floor,
    /// `mad(a, b, c)` = a*b + c
    Mad,
    /// `min(a, b)` — integer minimum
    IMin,
    /// `max(a, b)` — integer maximum
    IMax,
    /// `clamp(x, lo, hi)`
    Clamp,
    /// `dot(a, b)` — vector dot product, scalar result
    Dot,
}

impl Builtin {
    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::GlobalId
            | Builtin::LocalId
            | Builtin::GroupId
            | Builtin::LocalSize
            | Builtin::GlobalSize
            | Builtin::NumGroups => 1,
            Builtin::Sqrt
            | Builtin::Rsqrt
            | Builtin::Fabs
            | Builtin::Exp
            | Builtin::Log
            | Builtin::Floor => 1,
            Builtin::IMin | Builtin::IMax | Builtin::Dot => 2,
            Builtin::Mad | Builtin::Clamp => 3,
        }
    }

    /// True for the work-item index/shape query functions.
    pub fn is_workitem_query(self) -> bool {
        matches!(
            self,
            Builtin::GlobalId
                | Builtin::LocalId
                | Builtin::GroupId
                | Builtin::LocalSize
                | Builtin::GlobalSize
                | Builtin::NumGroups
        )
    }

    /// The OpenCL source-level function name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::GlobalId => "get_global_id",
            Builtin::LocalId => "get_local_id",
            Builtin::GroupId => "get_group_id",
            Builtin::LocalSize => "get_local_size",
            Builtin::GlobalSize => "get_global_size",
            Builtin::NumGroups => "get_num_groups",
            Builtin::Sqrt => "sqrt",
            Builtin::Rsqrt => "rsqrt",
            Builtin::Fabs => "fabs",
            Builtin::Exp => "exp",
            Builtin::Log => "log",
            Builtin::Floor => "floor",
            Builtin::Mad => "mad",
            Builtin::IMin => "min",
            Builtin::IMax => "max",
            Builtin::Clamp => "clamp",
            Builtin::Dot => "dot",
        }
    }
}

/// Barrier scope flags (`barrier(CLK_*_MEM_FENCE)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BarrierScope {
    /// `CLK_LOCAL_MEM_FENCE`
    Local,
    /// `CLK_GLOBAL_MEM_FENCE`
    Global,
    /// Both fences.
    Both,
}

/// An instruction.
///
/// Terminators (`Br`, `CondBr`, `Ret`) appear only as the last instruction of
/// a block; the verifier enforces this.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Binary arithmetic/logic.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Comparison producing a `bool` (or bool vector).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// `cond ? then_val : else_val`.
    Select {
        /// Boolean selector.
        cond: ValueId,
        /// Value when `cond` is true.
        then_val: ValueId,
        /// Value when `cond` is false.
        else_val: ValueId,
    },
    /// Type conversion.
    Cast {
        /// Conversion kind.
        kind: CastKind,
        /// Operand.
        value: ValueId,
        /// Target type.
        to: Type,
    },
    /// Call to an OpenCL builtin.
    Call {
        /// Callee.
        builtin: Builtin,
        /// Arguments, in order.
        args: Vec<ValueId>,
    },
    /// Pointer arithmetic: `base + index` elements (element-typed, like an
    /// LLVM GEP with a single index).
    Gep {
        /// Base pointer.
        base: ValueId,
        /// Element offset (integer).
        index: ValueId,
    },
    /// Load through a pointer.
    Load {
        /// Source pointer.
        ptr: ValueId,
    },
    /// Store through a pointer.
    Store {
        /// Destination pointer.
        ptr: ValueId,
        /// Value to store.
        value: ValueId,
    },
    /// Work-group barrier.
    Barrier {
        /// Which fences the barrier implies.
        scope: BarrierScope,
    },
    /// SSA phi node.
    Phi {
        /// `(predecessor block, incoming value)` pairs.
        incoming: Vec<(BlockId, ValueId)>,
    },
    /// Extract one lane of a vector (lane must be a constant value).
    ExtractLane {
        /// Source vector.
        vector: ValueId,
        /// Constant lane index.
        lane: ValueId,
    },
    /// Replace one lane of a vector (lane must be a constant value).
    InsertLane {
        /// Source vector.
        vector: ValueId,
        /// Constant lane index.
        lane: ValueId,
        /// Replacement scalar.
        value: ValueId,
    },
    /// Build a vector from scalar lanes.
    BuildVector {
        /// Scalar lanes, low to high.
        lanes: Vec<ValueId>,
    },
    /// Unconditional branch.
    Br {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch.
    CondBr {
        /// Boolean condition.
        cond: ValueId,
        /// Destination when true.
        then_blk: BlockId,
        /// Destination when false.
        else_blk: BlockId,
    },
    /// Return from the kernel (kernels return void, so no operand).
    Ret,
}

impl Inst {
    /// True for `Br`/`CondBr`/`Ret`.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret)
    }

    /// Whether the instruction has observable side effects (and so must not
    /// be removed by DCE even when unused).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Barrier { .. }
                | Inst::Br { .. }
                | Inst::CondBr { .. }
                | Inst::Ret
        )
    }

    /// Collect operand value ids in order.
    pub fn operands(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        self.visit_operands(|v| out.push(v));
        out
    }

    /// Visit operand value ids in order.
    pub fn visit_operands(&self, mut f: impl FnMut(ValueId)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                f(*cond);
                f(*then_val);
                f(*else_val);
            }
            Inst::Cast { value, .. } => f(*value),
            Inst::Call { args, .. } => args.iter().copied().for_each(f),
            Inst::Gep { base, index } => {
                f(*base);
                f(*index);
            }
            Inst::Load { ptr } => f(*ptr),
            Inst::Store { ptr, value } => {
                f(*ptr);
                f(*value);
            }
            Inst::Barrier { .. } | Inst::Br { .. } | Inst::Ret => {}
            Inst::Phi { incoming } => incoming.iter().for_each(|(_, v)| f(*v)),
            Inst::ExtractLane { vector, lane } => {
                f(*vector);
                f(*lane);
            }
            Inst::InsertLane {
                vector,
                lane,
                value,
            } => {
                f(*vector);
                f(*lane);
                f(*value);
            }
            Inst::BuildVector { lanes } => lanes.iter().copied().for_each(f),
            Inst::CondBr { cond, .. } => f(*cond),
        }
    }

    /// Rewrite every operand through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Select {
                cond,
                then_val,
                else_val,
            } => {
                *cond = f(*cond);
                *then_val = f(*then_val);
                *else_val = f(*else_val);
            }
            Inst::Cast { value, .. } => *value = f(*value),
            Inst::Call { args, .. } => args.iter_mut().for_each(|a| *a = f(*a)),
            Inst::Gep { base, index } => {
                *base = f(*base);
                *index = f(*index);
            }
            Inst::Load { ptr } => *ptr = f(*ptr),
            Inst::Store { ptr, value } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            Inst::Barrier { .. } | Inst::Br { .. } | Inst::Ret => {}
            Inst::Phi { incoming } => incoming.iter_mut().for_each(|(_, v)| *v = f(*v)),
            Inst::ExtractLane { vector, lane } => {
                *vector = f(*vector);
                *lane = f(*lane);
            }
            Inst::InsertLane {
                vector,
                lane,
                value,
            } => {
                *vector = f(*vector);
                *lane = f(*lane);
                *value = f(*value);
            }
            Inst::BuildVector { lanes } => lanes.iter_mut().for_each(|l| *l = f(*l)),
            Inst::CondBr { cond, .. } => *cond = f(*cond),
        }
    }

    /// Successor blocks of a terminator (empty for non-terminators and `Ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br { target } => vec![*target],
            Inst::CondBr {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            _ => Vec::new(),
        }
    }
}

/// How a value came to exist.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueDef {
    /// The `index`-th kernel parameter.
    Param(u32),
    /// An interned constant.
    Const(ConstVal),
    /// Pointer to the start of a `__local` buffer.
    LocalBuf(LocalBufId),
    /// Result of (or the effect of) an instruction.
    Inst(Inst),
}

/// A value plus its type and optional user-facing name.
#[derive(Clone, Debug)]
pub struct ValueData {
    /// How the value is produced.
    pub def: ValueDef,
    /// The value's type.
    pub ty: Type,
    /// Optional source-level name (params, locals, named phis).
    pub name: Option<String>,
}

/// A kernel parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Source-level parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A `__local` buffer declared by the kernel, e.g. `__local float lm[16][16]`.
///
/// The buffer is flat in the IR; `dims` records the declared shape for
/// diagnostics and for the pass's knowledge of row widths.
#[derive(Clone, Debug)]
pub struct LocalBuf {
    /// Source-level buffer name.
    pub name: String,
    /// Element scalar kind.
    pub elem: Scalar,
    /// Lanes per element (e.g. 4 for `__local float4 tile[..]`).
    pub lanes: u8,
    /// Declared dimensions, outermost first. Product = element count.
    pub dims: Vec<u64>,
}

impl LocalBuf {
    /// Total number of elements.
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// True if the buffer has zero elements (degenerate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() * self.elem.size_bytes() * self.lanes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_interning_keys() {
        assert_eq!(ConstVal::f32(1.5), ConstVal::f32(1.5));
        assert_ne!(ConstVal::f32(1.5), ConstVal::f32(-1.5));
        assert_eq!(ConstVal::f32(2.0).as_f32(), Some(2.0));
        assert_eq!(ConstVal::I32(7).as_int(), Some(7));
        assert_eq!(ConstVal::Bool(true).as_int(), Some(1));
        assert_eq!(ConstVal::f32(1.0).as_int(), None);
    }

    #[test]
    fn operand_iteration() {
        let i = Inst::Select {
            cond: ValueId(0),
            then_val: ValueId(1),
            else_val: ValueId(2),
        };
        assert_eq!(i.operands(), vec![ValueId(0), ValueId(1), ValueId(2)]);
        let s = Inst::Store {
            ptr: ValueId(3),
            value: ValueId(4),
        };
        assert_eq!(s.operands(), vec![ValueId(3), ValueId(4)]);
        assert!(s.has_side_effects());
        assert!(!i.has_side_effects());
    }

    #[test]
    fn map_operands_rewrites() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            lhs: ValueId(1),
            rhs: ValueId(1),
        };
        i.map_operands(|v| if v == ValueId(1) { ValueId(9) } else { v });
        assert_eq!(i.operands(), vec![ValueId(9), ValueId(9)]);
    }

    #[test]
    fn successor_lists() {
        assert_eq!(
            Inst::Br { target: BlockId(2) }.successors(),
            vec![BlockId(2)]
        );
        assert_eq!(
            Inst::CondBr {
                cond: ValueId(0),
                then_blk: BlockId(1),
                else_blk: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Inst::Ret.successors().is_empty());
        assert!(Inst::Ret.is_terminator());
    }

    #[test]
    fn localbuf_geometry() {
        let b = LocalBuf {
            name: "lm".into(),
            elem: Scalar::F32,
            lanes: 1,
            dims: vec![16, 16],
        };
        assert_eq!(b.len(), 256);
        assert_eq!(b.size_bytes(), 1024);
        assert!(!b.is_empty());
    }

    #[test]
    fn builtin_metadata() {
        assert!(Builtin::LocalId.is_workitem_query());
        assert!(!Builtin::Sqrt.is_workitem_query());
        assert_eq!(Builtin::Mad.arity(), 3);
        assert_eq!(Builtin::GlobalId.name(), "get_global_id");
    }
}
