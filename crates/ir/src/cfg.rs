//! Control-flow-graph utilities: reachability, reverse post-order, and a
//! simple iterative dominator computation (Cooper–Harvey–Kennedy).

use crate::function::Function;
use crate::value::BlockId;

/// Blocks reachable from entry, in reverse post-order.
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let n = f.num_blocks();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited[f.entry.index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.successors(b);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Set of blocks reachable from entry.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut r = vec![false; f.num_blocks()];
    for b in reverse_post_order(f) {
        r[b.index()] = true;
    }
    r
}

/// Immediate-dominator tree over reachable blocks.
///
/// `idom[b] == None` for the entry block and for unreachable blocks.
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Compute dominators with the CHK iterative algorithm.
    pub fn compute(f: &Function) -> DomTree {
        let rpo = reverse_post_order(f);
        let n = f.num_blocks();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally None externally.
        idom[f.entry.index()] = None;
        DomTree { idom }
    }

    /// Immediate dominator of `b` (None for entry/unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Does `a` dominate `b`? (Reflexive: a block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::function::Function;

    /// entry -> (then | else) -> join -> ret
    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut f = Function::new("d", vec![]);
        let then_b = f.add_block("then");
        let else_b = f.add_block("else");
        let join = f.add_block("join");
        let mut b = Builder::at_entry(&mut f);
        let c = b.bool(true);
        b.cond_br(c, then_b, else_b);
        b.switch_to(then_b);
        b.br(join);
        b.switch_to(else_b);
        b.br(join);
        b.switch_to(join);
        b.ret();
        (f, then_b, else_b, join)
    }

    #[test]
    fn rpo_starts_at_entry() {
        let (f, ..) = diamond();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let (mut f, ..) = diamond();
        let dead = f.add_block("dead");
        let mut b = Builder::new(&mut f, dead);
        b.ret();
        let r = reachable(&f);
        assert!(!r[dead.index()]);
        assert!(r[f.entry.index()]);
    }

    #[test]
    fn diamond_dominators() {
        let (f, then_b, else_b, join) = diamond();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(f.entry), None);
        assert_eq!(dt.idom(then_b), Some(f.entry));
        assert_eq!(dt.idom(else_b), Some(f.entry));
        assert_eq!(dt.idom(join), Some(f.entry));
        assert!(dt.dominates(f.entry, join));
        assert!(!dt.dominates(then_b, join));
        assert!(dt.dominates(join, join));
    }

    #[test]
    fn loop_dominators() {
        // entry -> header <-> body ; header -> exit
        let mut f = Function::new("l", vec![]);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = Builder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        let c = b.bool(true);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(header), Some(f.entry));
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        assert!(dt.dominates(header, body));
        assert!(!dt.dominates(body, exit));
    }
}
