#![warn(missing_docs)]
//! # grover-ir
//!
//! A typed SSA intermediate representation for OpenCL kernels, playing the
//! role LLVM/SPIR plays in the Grover paper (Fang et al., ICPP 2014).
//!
//! The IR models exactly the constructs the Grover pass reasons about:
//!
//! * loads and stores through pointers qualified by an OpenCL
//!   [`AddressSpace`] (`__global` / `__local` / `__constant` / `__private`),
//! * GEP-style element-typed pointer arithmetic,
//! * calls to the work-item query builtins (`get_local_id`, `get_group_id`,
//!   …) that form the symbols of the index algebra,
//! * work-group [`value::BarrierScope`] barriers,
//! * ordinary SSA scaffolding: blocks, phis, branches.
//!
//! Alongside the data structures it provides a [`builder::Builder`], a
//! [`verifier`], a textual [`printer`], CFG/dominator analyses ([`mod@cfg`]) and
//! a small [`passes`] framework with the cleanup passes (DCE, constant
//! folding, CFG simplification) the Grover transformation relies on.

pub mod builder;
pub mod cfg;
pub mod function;
pub mod passes;
pub mod printer;
pub mod text_parser;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::Builder;
pub use function::{Block, Function, Module};
pub use text_parser::{parse_function, ParseError};
pub use types::{AddressSpace, Scalar, Type};
pub use value::{
    BarrierScope, BinOp, BlockId, Builtin, CastKind, CmpPred, ConstVal, Inst, LocalBuf, LocalBufId,
    Param, ValueData, ValueDef, ValueId,
};
pub use verifier::verify;
