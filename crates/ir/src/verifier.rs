//! IR verifier: structural, type and dominance checks.

use std::collections::HashMap;

use crate::cfg::{reachable, DomTree};
use crate::function::Function;
use crate::value::{BlockId, Inst, ValueDef, ValueId};

/// A verifier failure, with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a function, returning all problems found.
pub fn verify(f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    let reach = reachable(f);

    // Each block: exactly one terminator, and it is last.
    for b in f.blocks() {
        if !reach[b.index()] {
            continue;
        }
        let insts = &f.block(b).insts;
        match insts.last() {
            None => errs.push(VerifyError(format!("block {} is empty", f.block(b).name))),
            Some(&last) => {
                if !f.inst(last).is_some_and(Inst::is_terminator) {
                    errs.push(VerifyError(format!(
                        "block {} does not end in a terminator",
                        f.block(b).name
                    )));
                }
            }
        }
        for &iv in insts.iter().rev().skip(1) {
            if f.inst(iv).is_some_and(Inst::is_terminator) {
                errs.push(VerifyError(format!(
                    "block {} has a terminator before its end",
                    f.block(b).name
                )));
            }
        }
        // Phis must be at the head of the block.
        let mut seen_non_phi = false;
        for &iv in insts {
            match f.inst(iv) {
                Some(Inst::Phi { .. }) if seen_non_phi => errs.push(VerifyError(format!(
                    "phi after non-phi in block {}",
                    f.block(b).name
                ))),
                Some(Inst::Phi { .. }) => {}
                _ => seen_non_phi = true,
            }
        }
    }

    // Type checks per instruction.
    for (b, iv) in f.iter_insts() {
        if !reach[b.index()] {
            continue;
        }
        let inst = f.inst(iv).expect("block lists hold instructions");
        type_check(f, b, iv, inst, &mut errs);
    }

    // Phi incoming edges must exactly match predecessors.
    let preds = f.predecessors();
    for (b, iv) in f.iter_insts() {
        if !reach[b.index()] {
            continue;
        }
        if let Some(Inst::Phi { incoming }) = f.inst(iv) {
            let mut expect: Vec<BlockId> = preds[b.index()].clone();
            expect.sort();
            let mut got: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
            got.sort();
            if expect != got {
                errs.push(VerifyError(format!(
                    "phi in {} has incoming {:?} but predecessors {:?}",
                    f.block(b).name,
                    got,
                    expect
                )));
            }
        }
    }

    // Dominance: every operand must be defined before use.
    check_dominance(f, &reach, &mut errs);

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn type_check(f: &Function, b: BlockId, iv: ValueId, inst: &Inst, errs: &mut Vec<VerifyError>) {
    let mut err = |msg: String| {
        errs.push(VerifyError(format!("{} (in {})", msg, f.block(b).name)));
    };
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let lt = f.ty(*lhs);
            let rt = f.ty(*rhs);
            if lt != rt {
                err(format!(
                    "bin {} operand types differ: {lt} vs {rt}",
                    op.mnemonic()
                ));
            }
            if op.is_float() && !lt.is_float() {
                err(format!("float op {} on non-float {lt}", op.mnemonic()));
            }
            if !op.is_float() && !lt.is_int() {
                err(format!("int op {} on non-int {lt}", op.mnemonic()));
            }
        }
        Inst::Cmp { lhs, rhs, .. } => {
            if f.ty(*lhs) != f.ty(*rhs) {
                err("cmp operand types differ".into());
            }
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            if f.ty(*cond).scalar_kind() != Some(crate::types::Scalar::Bool) {
                err("select condition not bool".into());
            }
            if f.ty(*then_val) != f.ty(*else_val) {
                err("select arms differ in type".into());
            }
        }
        Inst::Cast { value, to, .. } => {
            if f.ty(*value) == crate::types::Type::Void || *to == crate::types::Type::Void {
                err("cast to/from void".into());
            }
        }
        Inst::Call { builtin, args } => {
            if args.len() != builtin.arity() {
                err(format!(
                    "{} expects {} args, got {}",
                    builtin.name(),
                    builtin.arity(),
                    args.len()
                ));
            }
        }
        Inst::Gep { base, index } => {
            if !f.ty(*base).is_ptr() {
                err("gep base is not a pointer".into());
            }
            if !f.ty(*index).is_int() {
                err("gep index is not an integer".into());
            }
        }
        Inst::Load { ptr } => {
            if f.ty(*ptr).pointee() != Some(f.ty(iv)) {
                err("load result type does not match pointee".into());
            }
        }
        Inst::Store { ptr, value } => match f.ty(*ptr).pointee() {
            Some(p) if p == f.ty(*value) => {}
            Some(p) => err(format!("store of {} through pointer to {p}", f.ty(*value))),
            None => err("store through non-pointer".into()),
        },
        Inst::ExtractLane { vector, lane } => {
            if f.ty(*vector).lanes() <= 1 {
                err("extractlane from non-vector".into());
            }
            if f.as_const_int(*lane).is_none() {
                err("extractlane lane must be constant".into());
            }
        }
        Inst::InsertLane {
            vector,
            lane,
            value,
        } => {
            if f.ty(*vector).lanes() <= 1 {
                err("insertlane into non-vector".into());
            }
            if f.as_const_int(*lane).is_none() {
                err("insertlane lane must be constant".into());
            }
            if Some(f.ty(*value)) != f.ty(*vector).scalar_kind().map(crate::types::Type::Scalar) {
                err("insertlane value kind mismatch".into());
            }
        }
        Inst::BuildVector { lanes } => {
            if !matches!(lanes.len(), 2 | 3 | 4 | 8 | 16) {
                err(format!("buildvector of {} lanes", lanes.len()));
            }
        }
        Inst::Phi { incoming } => {
            for (_, v) in incoming {
                if f.ty(*v) != f.ty(iv) {
                    err("phi incoming type mismatch".into());
                }
            }
        }
        Inst::Barrier { .. } | Inst::Br { .. } | Inst::Ret => {}
        Inst::CondBr { cond, .. } => {
            if f.ty(*cond) != crate::types::Type::BOOL {
                err("condbr condition not bool".into());
            }
        }
    }
}

fn check_dominance(f: &Function, reach: &[bool], errs: &mut Vec<VerifyError>) {
    let dt = DomTree::compute(f);
    // Map: instruction value -> (block, index).
    let mut pos: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for b in f.blocks() {
        for (i, &iv) in f.block(b).insts.iter().enumerate() {
            pos.insert(iv, (b, i));
        }
    }
    let defined_before = |def: ValueId, use_at: (BlockId, usize)| -> bool {
        match f.value(def).def {
            // Params, constants and local-buffer pointers dominate everything.
            ValueDef::Param(_) | ValueDef::Const(_) | ValueDef::LocalBuf(_) => true,
            ValueDef::Inst(_) => match pos.get(&def) {
                None => false, // floating instruction
                Some(&(db, di)) => {
                    if db == use_at.0 {
                        di < use_at.1
                    } else {
                        dt.dominates(db, use_at.0)
                    }
                }
            },
        }
    };
    for b in f.blocks() {
        if !reach[b.index()] {
            continue;
        }
        for (i, &iv) in f.block(b).insts.iter().enumerate() {
            let inst = f.inst(iv).expect("inst");
            if let Inst::Phi { incoming } = inst {
                for (pred, v) in incoming {
                    // A phi use happens at the end of the incoming block.
                    let end = (*pred, f.block(*pred).insts.len());
                    if !defined_before(*v, end) {
                        errs.push(VerifyError(format!(
                            "phi operand {:?} does not dominate edge from {}",
                            v,
                            f.block(*pred).name
                        )));
                    }
                }
            } else {
                inst.visit_operands(|v| {
                    if !defined_before(v, (b, i)) {
                        errs.push(VerifyError(format!(
                            "operand {:?} of {:?} does not dominate its use in {}",
                            v,
                            iv,
                            f.block(b).name
                        )));
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::{BinOp, Param};

    fn simple() -> Function {
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let i = b.i32(0);
        let g = b.gep(p, i);
        let v = b.load(g);
        b.store(g, v);
        b.ret();
        f
    }

    #[test]
    fn valid_function_passes() {
        assert!(verify(&simple()).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut f = Function::new("k", vec![]);
        let _ = f.const_i32(1); // block left empty
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("empty")));
    }

    #[test]
    fn type_mismatch_detected() {
        let mut f = Function::new("k", vec![]);
        let a = f.const_i32(1);
        let b_ = f.const_f32(1.0);
        let e = f.entry;
        f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: a,
                rhs: b_,
            },
            Type::I32,
        );
        f.append_inst(e, Inst::Ret, Type::Void);
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("differ")));
    }

    #[test]
    fn use_before_def_detected() {
        let mut f = Function::new("k", vec![]);
        let one = f.const_i32(1);
        let e = f.entry;
        // Create the add first referring to a later instruction.
        let later = f.append_inst(
            e,
            Inst::Bin {
                op: BinOp::Add,
                lhs: one,
                rhs: one,
            },
            Type::I32,
        );
        // Re-order: move `later` after a user by inserting user at front.
        f.insert_inst(
            e,
            0,
            Inst::Bin {
                op: BinOp::Add,
                lhs: later,
                rhs: one,
            },
            Type::I32,
        );
        f.append_inst(e, Inst::Ret, Type::Void);
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("dominate")));
    }

    #[test]
    fn phi_pred_mismatch_detected() {
        let mut f = Function::new("k", vec![]);
        let b1 = f.add_block("b1");
        let one = f.const_i32(1);
        let e = f.entry;
        f.append_inst(e, Inst::Br { target: b1 }, Type::Void);
        // Phi claims an incoming edge from b1 itself, but pred is entry.
        f.append_inst(
            b1,
            Inst::Phi {
                incoming: vec![(b1, one)],
            },
            Type::I32,
        );
        f.append_inst(b1, Inst::Ret, Type::Void);
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("predecessors")));
    }

    #[test]
    fn store_type_mismatch_detected() {
        let mut f = Function::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let p = f.param_value(0);
        let i = f.const_i32(3);
        let e = f.entry;
        f.append_inst(e, Inst::Store { ptr: p, value: i }, Type::Void);
        f.append_inst(e, Inst::Ret, Type::Void);
        let errs = verify(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.0.contains("store of")));
    }
}
