//! Positioned instruction builder with type inference.

use crate::function::Function;
use crate::types::{Scalar, Type};
use crate::value::{BarrierScope, BinOp, BlockId, Builtin, CastKind, CmpPred, Inst, ValueId};

/// Builds instructions at the end of a current block, inferring result types.
///
/// The builder borrows the function mutably; drop it (or call
/// [`Builder::finish`]) to get the function back.
pub struct Builder<'f> {
    f: &'f mut Function,
    block: BlockId,
}

impl<'f> Builder<'f> {
    /// Position a new builder at the end of `block`.
    pub fn new(f: &'f mut Function, block: BlockId) -> Builder<'f> {
        Builder { f, block }
    }

    /// Position at the entry block.
    pub fn at_entry(f: &'f mut Function) -> Builder<'f> {
        let e = f.entry;
        Builder::new(f, e)
    }

    /// Mutable access to the function being built.
    pub fn func(&mut self) -> &mut Function {
        self.f
    }

    /// The current insertion block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Move the insertion point to the end of another block.
    pub fn switch_to(&mut self, block: BlockId) {
        self.block = block;
    }

    /// Consume the builder, releasing the function borrow.
    pub fn finish(self) {}

    fn push(&mut self, inst: Inst, ty: Type) -> ValueId {
        self.f.append_inst(self.block, inst, ty)
    }

    // ---- constants ------------------------------------------------------

    /// Intern an `i32` constant.
    pub fn i32(&mut self, v: i32) -> ValueId {
        self.f.const_i32(v)
    }

    /// Intern an `i64` constant.
    pub fn i64(&mut self, v: i64) -> ValueId {
        self.f.const_i64(v)
    }

    /// Intern an `f32` constant.
    pub fn f32(&mut self, v: f32) -> ValueId {
        self.f.const_f32(v)
    }

    /// Intern a boolean constant.
    pub fn bool(&mut self, v: bool) -> ValueId {
        self.f.const_bool(v)
    }

    // ---- arithmetic -----------------------------------------------------

    /// Generic binary op; result type = lhs type.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.f.ty(lhs);
        self.push(Inst::Bin { op, lhs, rhs }, ty)
    }

    /// Integer addition.
    pub fn add(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Add, l, r)
    }

    /// Integer subtraction.
    pub fn sub(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Sub, l, r)
    }

    /// Integer multiplication.
    pub fn mul(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::Mul, l, r)
    }

    /// Float addition.
    pub fn fadd(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::FAdd, l, r)
    }

    /// Float subtraction.
    pub fn fsub(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::FSub, l, r)
    }

    /// Float multiplication.
    pub fn fmul(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::FMul, l, r)
    }

    /// Float division.
    pub fn fdiv(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.bin(BinOp::FDiv, l, r)
    }

    /// Comparison; result is `bool` (or a bool vector).
    pub fn cmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lanes = self.f.ty(lhs).lanes();
        let ty = if lanes == 1 {
            Type::BOOL
        } else {
            Type::Vector(Scalar::Bool, lanes)
        };
        self.push(Inst::Cmp { pred, lhs, rhs }, ty)
    }

    /// `cond ? t : e`.
    pub fn select(&mut self, cond: ValueId, t: ValueId, e: ValueId) -> ValueId {
        let ty = self.f.ty(t);
        self.push(
            Inst::Select {
                cond,
                then_val: t,
                else_val: e,
            },
            ty,
        )
    }

    /// Type conversion.
    pub fn cast(&mut self, kind: CastKind, value: ValueId, to: Type) -> ValueId {
        self.push(Inst::Cast { kind, value, to }, to)
    }

    // ---- calls ----------------------------------------------------------

    /// Call a builtin. Work-item queries return `i64` (OpenCL `size_t`);
    /// math builtins return the type of their first argument; `dot` returns
    /// the scalar kind of its vector arguments.
    pub fn call(&mut self, builtin: Builtin, args: Vec<ValueId>) -> ValueId {
        debug_assert_eq!(args.len(), builtin.arity(), "{} arity", builtin.name());
        let ty = if builtin.is_workitem_query() {
            Type::I64
        } else if builtin == Builtin::Dot {
            Type::Scalar(self.f.ty(args[0]).scalar_kind().expect("dot of vectors"))
        } else {
            self.f.ty(args[0])
        };
        self.push(Inst::Call { builtin, args }, ty)
    }

    /// `get_local_id(dim)` truncated to `i32` for convenient index math.
    pub fn local_id_i32(&mut self, dim: u32) -> ValueId {
        let d = self.i32(dim as i32);
        let v = self.call(Builtin::LocalId, vec![d]);
        self.cast(CastKind::Trunc, v, Type::I32)
    }

    /// `get_group_id(dim)` truncated to `i32`.
    pub fn group_id_i32(&mut self, dim: u32) -> ValueId {
        let d = self.i32(dim as i32);
        let v = self.call(Builtin::GroupId, vec![d]);
        self.cast(CastKind::Trunc, v, Type::I32)
    }

    /// `get_global_id(dim)` truncated to `i32`.
    pub fn global_id_i32(&mut self, dim: u32) -> ValueId {
        let d = self.i32(dim as i32);
        let v = self.call(Builtin::GlobalId, vec![d]);
        self.cast(CastKind::Trunc, v, Type::I32)
    }

    // ---- memory ---------------------------------------------------------

    /// `base + index` elements. Result keeps the pointer type of `base`.
    pub fn gep(&mut self, base: ValueId, index: ValueId) -> ValueId {
        let ty = self.f.ty(base);
        debug_assert!(ty.is_ptr(), "gep base must be a pointer");
        self.push(Inst::Gep { base, index }, ty)
    }

    /// Load through a pointer; result type is the pointee.
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        let ty = self.f.ty(ptr).pointee().expect("load from non-pointer");
        self.push(Inst::Load { ptr }, ty)
    }

    /// Store `value` through `ptr`.
    pub fn store(&mut self, ptr: ValueId, value: ValueId) -> ValueId {
        self.push(Inst::Store { ptr, value }, Type::Void)
    }

    /// Work-group barrier.
    pub fn barrier(&mut self, scope: BarrierScope) -> ValueId {
        self.push(Inst::Barrier { scope }, Type::Void)
    }

    // ---- vectors --------------------------------------------------------

    /// Extract lane `lane` of a vector.
    pub fn extract_lane(&mut self, vector: ValueId, lane: u8) -> ValueId {
        let vt = self.f.ty(vector);
        let ty = Type::Scalar(vt.scalar_kind().expect("extract from vector"));
        let lane = self.i32(lane as i32);
        self.push(Inst::ExtractLane { vector, lane }, ty)
    }

    /// Replace lane `lane` of a vector.
    pub fn insert_lane(&mut self, vector: ValueId, lane: u8, value: ValueId) -> ValueId {
        let ty = self.f.ty(vector);
        let lane = self.i32(lane as i32);
        self.push(
            Inst::InsertLane {
                vector,
                lane,
                value,
            },
            ty,
        )
    }

    /// Build a vector from scalar lanes.
    pub fn build_vector(&mut self, lanes: Vec<ValueId>) -> ValueId {
        let s = self
            .f
            .ty(lanes[0])
            .scalar_kind()
            .expect("vector of scalars");
        let ty = Type::Vector(s, lanes.len() as u8);
        self.push(Inst::BuildVector { lanes }, ty)
    }

    // ---- control flow -----------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) -> ValueId {
        self.push(Inst::Br { target }, Type::Void)
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_blk: BlockId, else_blk: BlockId) -> ValueId {
        self.push(
            Inst::CondBr {
                cond,
                then_blk,
                else_blk,
            },
            Type::Void,
        )
    }

    /// Return from the kernel.
    pub fn ret(&mut self) -> ValueId {
        self.push(Inst::Ret, Type::Void)
    }

    /// Create an empty phi in the *current* block (it is appended; callers
    /// constructing loops should create phis first in a fresh block).
    pub fn phi(&mut self, ty: Type, incoming: Vec<(BlockId, ValueId)>) -> ValueId {
        self.push(Inst::Phi { incoming }, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::types::AddressSpace;
    use crate::value::Param;

    fn f() -> Function {
        Function::new(
            "k",
            vec![Param {
                name: "buf".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        )
    }

    #[test]
    fn builds_typed_arithmetic() {
        let mut func = f();
        let mut b = Builder::at_entry(&mut func);
        let x = b.i32(3);
        let y = b.i32(4);
        let s = b.add(x, y);
        let c = b.cmp(CmpPred::Slt, s, y);
        b.ret();
        assert_eq!(func.ty(s), Type::I32);
        assert_eq!(func.ty(c), Type::BOOL);
    }

    #[test]
    fn load_infers_pointee() {
        let mut func = f();
        let buf = func.param_value(0);
        let mut b = Builder::at_entry(&mut func);
        let i = b.i32(5);
        let p = b.gep(buf, i);
        let v = b.load(p);
        b.ret();
        assert_eq!(
            func.ty(p),
            Type::ptr_scalar(Scalar::F32, AddressSpace::Global)
        );
        assert_eq!(func.ty(v), Type::F32);
    }

    #[test]
    fn workitem_queries_are_i64() {
        let mut func = f();
        let mut b = Builder::at_entry(&mut func);
        let d = b.i32(0);
        let gid = b.call(Builtin::GlobalId, vec![d]);
        let t = b.local_id_i32(1);
        b.ret();
        assert_eq!(func.ty(gid), Type::I64);
        assert_eq!(func.ty(t), Type::I32);
    }

    #[test]
    fn vector_ops_typed() {
        let mut func = f();
        let mut b = Builder::at_entry(&mut func);
        let x = b.f32(1.0);
        let y = b.f32(2.0);
        let v = b.build_vector(vec![x, y, x, y]);
        let e = b.extract_lane(v, 2);
        let v2 = b.insert_lane(v, 0, e);
        b.ret();
        assert_eq!(func.ty(v), Type::Vector(Scalar::F32, 4));
        assert_eq!(func.ty(e), Type::F32);
        assert_eq!(func.ty(v2), Type::Vector(Scalar::F32, 4));
    }

    #[test]
    fn dot_returns_scalar() {
        let mut func = f();
        let mut b = Builder::at_entry(&mut func);
        let x = b.f32(1.0);
        let v = b.build_vector(vec![x, x, x, x]);
        let d = b.call(Builtin::Dot, vec![v, v]);
        b.ret();
        assert_eq!(func.ty(d), Type::F32);
    }
}
