//! Parser for the textual IR form produced by [`crate::printer`] — the
//! "export" leg of the paper's pipeline (Fig. 9 ships SPIR between the
//! compiler and the vendor runtime; we ship this text form between tools).
//!
//! `parse_function(&function_to_string(&f))` reconstructs a function that
//! prints identically (round-trip property, tested here and with proptest
//! at the workspace level).

use std::collections::HashMap;

use crate::function::Function;
use crate::types::{AddressSpace, Scalar, Type};
use crate::value::{
    BarrierScope, BinOp, BlockId, Builtin, CastKind, CmpPred, Inst, LocalBuf, Param, ValueId,
};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line of the failure (0 = unknown).
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A phi whose incoming `(block, value)` name pairs are resolved once the
/// whole body has been parsed; the `usize` is the source line for errors.
type PendingPhi = (ValueId, Vec<(String, String)>, usize);

fn perr<T>(msg: impl Into<String>, line: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: msg.into(),
        line,
    })
}

/// Parse one function from the printer's textual form.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text.lines().enumerate().peekable();

    // Header: kernel @name(params...) {
    let (lno, header) = loop {
        match lines.next() {
            Some((n, l)) if !l.trim().is_empty() => break (n + 1, l.trim()),
            Some(_) => continue,
            None => return perr("empty input", 0),
        }
    };
    let header = header.strip_prefix("kernel @").ok_or(ParseError {
        message: "expected `kernel @name(...)`".into(),
        line: lno,
    })?;
    let open = header.find('(').ok_or(ParseError {
        message: "missing `(`".into(),
        line: lno,
    })?;
    let close = header.rfind(')').ok_or(ParseError {
        message: "missing `)`".into(),
        line: lno,
    })?;
    let name = header[..open].to_string();
    let params_src = &header[open + 1..close];
    let mut params = Vec::new();
    if !params_src.trim().is_empty() {
        for p in params_src.split(',') {
            let p = p.trim();
            let pct = p.rfind('%').ok_or(ParseError {
                message: format!("bad param `{p}`"),
                line: lno,
            })?;
            let ty = parse_type(p[..pct].trim(), lno)?;
            let pname = p[pct + 1..].to_string();
            params.push(Param { name: pname, ty });
        }
    }
    let mut f = Function::new(name, params);

    // Symbol tables.
    let mut values: HashMap<String, ValueId> = HashMap::new();
    for (i, p) in f.params().iter().enumerate() {
        values.insert(format!("%{}", p.name), f.param_value(i));
    }
    // Pre-create blocks in *label-definition order* so block ids (and hence
    // re-printed order) match the input text — making print∘parse a
    // fixpoint even with forward branch references.
    let mut blocks: HashMap<String, BlockId> = HashMap::new();
    for l in text.lines() {
        let l = l.trim();
        if let Some(lbl) = l.strip_suffix(':') {
            if !lbl.is_empty() && !lbl.contains(' ') && !lbl.contains('=') {
                if blocks.is_empty() {
                    // The first label is the entry block (already created).
                    blocks.insert(lbl.to_string(), f.entry);
                    if f.block(f.entry).name != lbl {
                        // keep printer-visible name in sync
                        let id = f.entry;
                        f.block_mut(id).name = lbl.to_string();
                    }
                } else if !blocks.contains_key(lbl) {
                    let id = f.add_block(lbl);
                    blocks.insert(lbl.to_string(), id);
                }
            }
        }
    }
    if blocks.is_empty() {
        blocks.insert("entry".to_string(), f.entry);
    }
    // Pending phi incoming lists to resolve after all values exist.
    let mut pending_phis: Vec<PendingPhi> = Vec::new();
    // Pending operand references (forward refs are only legal via phis).
    let mut cur_block = f.entry;

    for (n, raw) in lines {
        let lno = n + 1;
        let line = raw.trim();
        if line.is_empty() || line == "}" {
            continue;
        }
        // Local buffer decl: local @lm : f32[16][16]   ; 1024 bytes
        if let Some(rest) = line.strip_prefix("local @") {
            let (lname, spec) = rest.split_once(':').ok_or(ParseError {
                message: "bad local decl".into(),
                line: lno,
            })?;
            let spec = spec.split(';').next().unwrap_or(spec).trim();
            // f32[16][16]  or f32x4[8]
            let bracket = spec.find('[').ok_or(ParseError {
                message: "bad local dims".into(),
                line: lno,
            })?;
            let (kind_s, dims_s) = spec.split_at(bracket);
            let (elem, lanes) = match kind_s.trim().split_once('x') {
                Some((k, l)) => (
                    parse_scalar(k.trim(), lno)?,
                    l.trim().parse::<u8>().map_err(|_| ParseError {
                        message: "bad lane count".into(),
                        line: lno,
                    })?,
                ),
                None => (parse_scalar(kind_s.trim(), lno)?, 1),
            };
            let mut dims = Vec::new();
            for d in dims_s.trim_matches(['[', ']']).split("][") {
                dims.push(d.parse::<u64>().map_err(|_| ParseError {
                    message: format!("bad dimension `{d}`"),
                    line: lno,
                })?);
            }
            let v = f.add_local_buf(LocalBuf {
                name: lname.trim().to_string(),
                elem,
                lanes,
                dims,
            });
            values.insert(format!("@{}", lname.trim()), v);
            continue;
        }
        // Block label:  name:
        if let Some(lbl) = line.strip_suffix(':') {
            if !lbl.contains(' ') && !lbl.contains('=') {
                cur_block = *blocks.get(lbl).expect("pre-scanned label");
                continue;
            }
        }
        // Instruction.
        parse_inst(
            &mut f,
            line,
            lno,
            cur_block,
            &mut values,
            &mut blocks,
            &mut pending_phis,
        )?;
    }

    // Resolve phis.
    for (phi, incoming, lno) in pending_phis {
        let mut resolved = Vec::new();
        for (blk, val) in incoming {
            let b = *blocks.get(&blk).ok_or(ParseError {
                message: format!("unknown block `{blk}`"),
                line: lno,
            })?;
            let v = resolve(&mut f, &values, &val, lno)?;
            resolved.push((b, v));
        }
        if let Some(Inst::Phi { incoming: slot }) = f.inst_mut(phi) {
            *slot = resolved;
        }
    }
    Ok(f)
}

fn parse_scalar(s: &str, line: usize) -> Result<Scalar, ParseError> {
    match s {
        "bool" => Ok(Scalar::Bool),
        "i32" => Ok(Scalar::I32),
        "i64" => Ok(Scalar::I64),
        "f32" => Ok(Scalar::F32),
        other => perr(format!("unknown scalar `{other}`"), line),
    }
}

fn parse_space(s: &str, line: usize) -> Result<AddressSpace, ParseError> {
    match s {
        "__global" => Ok(AddressSpace::Global),
        "__local" => Ok(AddressSpace::Local),
        "__constant" => Ok(AddressSpace::Constant),
        "__private" => Ok(AddressSpace::Private),
        other => perr(format!("unknown address space `{other}`"), line),
    }
}

/// Parse a type as the printer writes it:
/// `f32`, `<4 x f32>`, `f32 __global*`, `<4 x f32> __local*`, `void`.
fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    let s = s.trim();
    if s == "void" {
        return Ok(Type::Void);
    }
    if let Some(body) = s.strip_suffix('*') {
        // "<4 x f32> __local" or "f32 __global"
        let body = body.trim();
        let space_at = body.rfind("__").ok_or(ParseError {
            message: format!("bad pointer `{s}`"),
            line,
        })?;
        let space = parse_space(body[space_at..].trim(), line)?;
        let elem_ty = parse_type(body[..space_at].trim(), line)?;
        let (elem, lanes) = match elem_ty {
            Type::Scalar(k) => (k, 1),
            Type::Vector(k, n) => (k, n),
            _ => return perr(format!("bad pointee in `{s}`"), line),
        };
        return Ok(Type::Ptr { elem, lanes, space });
    }
    if let Some(inner) = s.strip_prefix('<').and_then(|x| x.strip_suffix('>')) {
        let (n, k) = inner.split_once(" x ").ok_or(ParseError {
            message: format!("bad vector `{s}`"),
            line,
        })?;
        let lanes = n.trim().parse::<u8>().map_err(|_| ParseError {
            message: format!("bad lane count in `{s}`"),
            line,
        })?;
        return Ok(Type::Vector(parse_scalar(k.trim(), line)?, lanes));
    }
    Ok(Type::Scalar(parse_scalar(s, line)?))
}

/// Resolve an operand token: `%name`, `@local`, or a constant literal.
fn resolve(
    f: &mut Function,
    values: &HashMap<String, ValueId>,
    tok: &str,
    line: usize,
) -> Result<ValueId, ParseError> {
    let tok = tok.trim();
    if tok.starts_with('%') || tok.starts_with('@') {
        return values.get(tok).copied().ok_or(ParseError {
            message: format!("unknown value `{tok}`"),
            line,
        });
    }
    if tok == "true" {
        return Ok(f.const_bool(true));
    }
    if tok == "false" {
        return Ok(f.const_bool(false));
    }
    if let Some(i) = tok.strip_suffix('L') {
        return i
            .parse::<i64>()
            .map(|v| f.const_i64(v))
            .map_err(|_| ParseError {
                message: format!("bad i64 `{tok}`"),
                line,
            });
    }
    if tok.contains('.') || tok.contains("inf") || tok.contains("NaN") || tok.contains('e') {
        return tok
            .parse::<f32>()
            .map(|v| f.const_f32(v))
            .map_err(|_| ParseError {
                message: format!("bad f32 `{tok}`"),
                line,
            });
    }
    tok.parse::<i32>()
        .map(|v| f.const_i32(v))
        .map_err(|_| ParseError {
            message: format!("bad operand `{tok}`"),
            line,
        })
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    use Builtin::*;
    Some(match name {
        "get_global_id" => GlobalId,
        "get_local_id" => LocalId,
        "get_group_id" => GroupId,
        "get_local_size" => LocalSize,
        "get_global_size" => GlobalSize,
        "get_num_groups" => NumGroups,
        "sqrt" => Sqrt,
        "rsqrt" => Rsqrt,
        "fabs" => Fabs,
        "exp" => Exp,
        "log" => Log,
        "floor" => Floor,
        "mad" => Mad,
        "min" => IMin,
        "max" => IMax,
        "clamp" => Clamp,
        "dot" => Dot,
        _ => return None,
    })
}

fn bin_op_by_name(m: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "sdiv" => SDiv,
        "udiv" => UDiv,
        "srem" => SRem,
        "urem" => URem,
        "shl" => Shl,
        "lshr" => LShr,
        "ashr" => AShr,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "fmin" => FMin,
        "fmax" => FMax,
        _ => return None,
    })
}

fn cmp_pred_by_name(m: &str) -> Option<CmpPred> {
    use CmpPred::*;
    Some(match m {
        "eq" => Eq,
        "ne" => Ne,
        "slt" => Slt,
        "sle" => Sle,
        "sgt" => Sgt,
        "sge" => Sge,
        "ult" => Ult,
        "ule" => Ule,
        "ugt" => Ugt,
        "uge" => Uge,
        "feq" => FEq,
        "fne" => FNe,
        "flt" => FLt,
        "fle" => FLe,
        "fgt" => FGt,
        "fge" => FGe,
        _ => return None,
    })
}

fn cast_by_name(m: &str) -> Option<CastKind> {
    use CastKind::*;
    Some(match m {
        "sext" => SExt,
        "zext" => ZExt,
        "trunc" => Trunc,
        "sitofp" => SiToFp,
        "fptosi" => FpToSi,
        "bitcast" => Bitcast,
        _ => return None,
    })
}

#[allow(clippy::too_many_arguments)]
fn parse_inst(
    f: &mut Function,
    line: &str,
    lno: usize,
    blk: BlockId,
    values: &mut HashMap<String, ValueId>,
    blocks: &mut HashMap<String, BlockId>,
    pending_phis: &mut Vec<PendingPhi>,
) -> Result<(), ParseError> {
    let block_of = |name: &str, blocks: &HashMap<String, BlockId>| -> Result<BlockId, ParseError> {
        blocks.get(name).copied().ok_or(ParseError {
            message: format!("unknown block `{name}`"),
            line: lno,
        })
    };

    // Result-less instructions first.
    if let Some(rest) = line.strip_prefix("store ") {
        // store <ty> <val>, <ptr>
        let (lhs, ptr_s) = rest.rsplit_once(", ").ok_or(ParseError {
            message: "bad store".into(),
            line: lno,
        })?;
        let val_tok = lhs.rsplit(' ').next().ok_or(ParseError {
            message: "bad store value".into(),
            line: lno,
        })?;
        let value = resolve(f, values, val_tok, lno)?;
        let ptr = resolve(f, values, ptr_s, lno)?;
        f.append_inst(blk, Inst::Store { ptr, value }, Type::Void);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("barrier ") {
        let scope = match rest.trim() {
            "Local" => BarrierScope::Local,
            "Global" => BarrierScope::Global,
            "Both" => BarrierScope::Both,
            other => return perr(format!("unknown barrier scope `{other}`"), lno),
        };
        f.append_inst(blk, Inst::Barrier { scope }, Type::Void);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("br ") {
        let target = block_of(rest.trim(), blocks)?;
        f.append_inst(blk, Inst::Br { target }, Type::Void);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let parts: Vec<&str> = rest.split(", ").collect();
        if parts.len() != 3 {
            return perr("bad condbr", lno);
        }
        let cond = resolve(f, values, parts[0], lno)?;
        let then_blk = block_of(parts[1].trim(), blocks)?;
        let else_blk = block_of(parts[2].trim(), blocks)?;
        f.append_inst(
            blk,
            Inst::CondBr {
                cond,
                then_blk,
                else_blk,
            },
            Type::Void,
        );
        return Ok(());
    }
    if line == "ret" {
        f.append_inst(blk, Inst::Ret, Type::Void);
        return Ok(());
    }

    // `%name = <op> ...`
    let (res, body) = line.split_once(" = ").ok_or(ParseError {
        message: format!("unrecognised instruction `{line}`"),
        line: lno,
    })?;
    let (op, rest) = body.split_once(' ').unwrap_or((body, ""));

    let (inst, ty) = if let Some(bop) = bin_op_by_name(op) {
        // add <ty> <lhs>, <rhs>
        let (ty_s, ops) = split_type_operands(rest, lno)?;
        let ty = parse_type(ty_s, lno)?;
        let (a, b) = two(&ops, lno)?;
        let lhs = resolve(f, values, &a, lno)?;
        let rhs = resolve(f, values, &b, lno)?;
        (Inst::Bin { op: bop, lhs, rhs }, ty)
    } else if op == "cmp" {
        // cmp <pred> <ty> <lhs>, <rhs>
        let (pred_s, rest2) = rest.split_once(' ').ok_or(ParseError {
            message: "bad cmp".into(),
            line: lno,
        })?;
        let pred = cmp_pred_by_name(pred_s).ok_or(ParseError {
            message: format!("bad predicate `{pred_s}`"),
            line: lno,
        })?;
        let (ty_s, ops) = split_type_operands(rest2, lno)?;
        let opty = parse_type(ty_s, lno)?;
        let (a, b) = two(&ops, lno)?;
        let lhs = resolve(f, values, &a, lno)?;
        let rhs = resolve(f, values, &b, lno)?;
        let ty = if opty.lanes() > 1 {
            Type::Vector(Scalar::Bool, opty.lanes())
        } else {
            Type::BOOL
        };
        (Inst::Cmp { pred, lhs, rhs }, ty)
    } else if op == "select" {
        let ops: Vec<&str> = rest.split(", ").collect();
        if ops.len() != 3 {
            return perr("bad select", lno);
        }
        let cond = resolve(f, values, ops[0], lno)?;
        let then_val = resolve(f, values, ops[1], lno)?;
        let else_val = resolve(f, values, ops[2], lno)?;
        let ty = f.ty(then_val);
        (
            Inst::Select {
                cond,
                then_val,
                else_val,
            },
            ty,
        )
    } else if let Some(kind) = cast_by_name(op) {
        // sext <val> to <ty>
        let (val_s, ty_s) = rest.split_once(" to ").ok_or(ParseError {
            message: "bad cast".into(),
            line: lno,
        })?;
        let value = resolve(f, values, val_s, lno)?;
        let to = parse_type(ty_s, lno)?;
        (Inst::Cast { kind, value, to }, to)
    } else if op == "call" {
        // call name(arg, arg)
        let open = rest.find('(').ok_or(ParseError {
            message: "bad call".into(),
            line: lno,
        })?;
        let fname = &rest[..open];
        let args_s = rest[open + 1..].strip_suffix(')').ok_or(ParseError {
            message: "bad call args".into(),
            line: lno,
        })?;
        let builtin = builtin_by_name(fname).ok_or(ParseError {
            message: format!("unknown builtin `{fname}`"),
            line: lno,
        })?;
        let mut args = Vec::new();
        if !args_s.trim().is_empty() {
            for a in args_s.split(", ") {
                args.push(resolve(f, values, a, lno)?);
            }
        }
        let ty = if builtin.is_workitem_query() {
            Type::I64
        } else if builtin == Builtin::Dot {
            Type::Scalar(f.ty(args[0]).scalar_kind().unwrap_or(Scalar::F32))
        } else {
            f.ty(args[0])
        };
        (Inst::Call { builtin, args }, ty)
    } else if op == "gep" {
        // gep <ptrty> <base>, <idx>   (ptrty ends with `*`)
        let star = rest.rfind("* ").ok_or(ParseError {
            message: "bad gep type".into(),
            line: lno,
        })?;
        let ty = parse_type(&rest[..star + 1], lno)?;
        let ops = &rest[star + 2..];
        let (a, b) = two(ops, lno)?;
        let base = resolve(f, values, &a, lno)?;
        let index = resolve(f, values, &b, lno)?;
        (Inst::Gep { base, index }, ty)
    } else if op == "load" {
        // load <ty> <ptr>
        let (ty_s, ptr_s) = rest.rsplit_once(' ').ok_or(ParseError {
            message: "bad load".into(),
            line: lno,
        })?;
        let ty = parse_type(ty_s, lno)?;
        let ptr = resolve(f, values, ptr_s, lno)?;
        (Inst::Load { ptr }, ty)
    } else if op == "phi" {
        // phi <ty> [blk: val], [blk: val]
        let bracket = rest.find('[').ok_or(ParseError {
            message: "bad phi".into(),
            line: lno,
        })?;
        let ty = parse_type(rest[..bracket].trim(), lno)?;
        let mut incoming = Vec::new();
        for part in rest[bracket..].split("], ") {
            let part = part.trim_matches(['[', ']']);
            let (b, v) = part.split_once(": ").ok_or(ParseError {
                message: "bad phi edge".into(),
                line: lno,
            })?;
            incoming.push((b.trim().to_string(), v.trim().to_string()));
        }
        let v = f.append_inst(
            blk,
            Inst::Phi {
                incoming: Vec::new(),
            },
            ty,
        );
        pending_phis.push((v, incoming, lno));
        bind_result(f, values, res, v, lno)?;
        return Ok(());
    } else if op == "extractlane" {
        let (a, b) = two(rest, lno)?;
        let vector = resolve(f, values, &a, lno)?;
        let lane = resolve(f, values, &b, lno)?;
        let ty = Type::Scalar(f.ty(vector).scalar_kind().unwrap_or(Scalar::F32));
        (Inst::ExtractLane { vector, lane }, ty)
    } else if op == "insertlane" {
        let ops: Vec<&str> = rest.split(", ").collect();
        if ops.len() != 3 {
            return perr("bad insertlane", lno);
        }
        let vector = resolve(f, values, ops[0], lno)?;
        let lane = resolve(f, values, ops[1], lno)?;
        let value = resolve(f, values, ops[2], lno)?;
        let ty = f.ty(vector);
        (
            Inst::InsertLane {
                vector,
                lane,
                value,
            },
            ty,
        )
    } else if op == "buildvector" {
        let inner = rest
            .trim()
            .strip_prefix('<')
            .and_then(|x| x.strip_suffix('>'))
            .ok_or(ParseError {
                message: "bad buildvector".into(),
                line: lno,
            })?;
        let mut lanes = Vec::new();
        for a in inner.split(", ") {
            lanes.push(resolve(f, values, a, lno)?);
        }
        let k = f.ty(lanes[0]).scalar_kind().unwrap_or(Scalar::F32);
        let ty = Type::Vector(k, lanes.len() as u8);
        (Inst::BuildVector { lanes }, ty)
    } else {
        return perr(format!("unknown opcode `{op}`"), lno);
    };

    let v = f.append_inst(blk, inst, ty);
    bind_result(f, values, res, v, lno)?;
    Ok(())
}

fn bind_result(
    f: &mut Function,
    values: &mut HashMap<String, ValueId>,
    res: &str,
    v: ValueId,
    lno: usize,
) -> Result<(), ParseError> {
    let res = res.trim();
    if !res.starts_with('%') {
        return perr(format!("bad result name `{res}`"), lno);
    }
    // Preserve human-readable names (anything not matching the default
    // `%vNN` numbering).
    let bare = &res[1..];
    let is_default = bare
        .strip_prefix('v')
        .is_some_and(|n| n.parse::<u32>().is_ok());
    if !is_default {
        f.set_name(v, bare);
    }
    if values.insert(res.to_string(), v).is_some() {
        return perr(format!("duplicate definition of `{res}`"), lno);
    }
    Ok(())
}

/// Split "`<ty>` op1, op2" where ty may contain spaces (vector types).
fn split_type_operands(s: &str, lno: usize) -> Result<(&str, String), ParseError> {
    // The operand list is everything after the last space before the first
    // operand; operands never contain '<' but vector types do, so split at
    // the first token after the closing '>' (or the first space for scalars).
    let s = s.trim();
    if let Some(close) = s.find('>') {
        if s.starts_with('<') {
            let ty = &s[..=close];
            return Ok((ty, s[close + 1..].trim().to_string()));
        }
    }
    let (ty, rest) = s.split_once(' ').ok_or(ParseError {
        message: "missing operands".into(),
        line: lno,
    })?;
    Ok((ty, rest.trim().to_string()))
}

fn two(s: &str, lno: usize) -> Result<(String, String), ParseError> {
    let (a, b) = s.split_once(", ").ok_or(ParseError {
        message: format!("expected two operands in `{s}`"),
        line: lno,
    })?;
    Ok((a.trim().to_string(), b.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::function_to_string;

    fn roundtrip(f: &Function) {
        // Default `%vNN` numbering may shift across a parse (constants are
        // interned in reference order), so exact equality holds from the
        // *second* round on: print∘parse must be a fixpoint.
        let text0 = function_to_string(f);
        let parsed1 =
            parse_function(&text0).unwrap_or_else(|e| panic!("parse failed: {e}\n---\n{text0}"));
        crate::verifier::verify(&parsed1)
            .unwrap_or_else(|e| panic!("verify failed: {e:?}\n---\n{text0}"));
        let text1 = function_to_string(&parsed1);
        let parsed2 =
            parse_function(&text1).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text1}"));
        let text2 = function_to_string(&parsed2);
        assert_eq!(text1, text2, "print∘parse is not a fixpoint");
        // Structure must be preserved exactly.
        assert_eq!(f.num_blocks(), parsed1.num_blocks());
        assert_eq!(f.num_insts(), parsed1.num_insts());
        assert_eq!(f.params().len(), parsed1.params().len());
        assert_eq!(f.local_mem_bytes(), parsed1.local_mem_bytes());
    }

    #[test]
    fn roundtrips_straightline_kernel() {
        use crate::builder::Builder;
        let mut f = Function::new(
            "copy",
            vec![
                Param {
                    name: "in".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
                Param {
                    name: "out".into(),
                    ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
                },
            ],
        );
        let a = f.param_value(0);
        let o = f.param_value(1);
        let mut b = Builder::at_entry(&mut f);
        let g = b.global_id_i32(0);
        let src = b.gep(a, g);
        let v = b.load(src);
        let dst = b.gep(o, g);
        b.store(dst, v);
        b.ret();
        roundtrip(&f);
    }

    #[test]
    fn roundtrips_control_flow_and_phis() {
        use crate::builder::Builder;
        let mut f = Function::new(
            "loopy",
            vec![
                Param {
                    name: "n".into(),
                    ty: Type::I32,
                },
                Param {
                    name: "out".into(),
                    ty: Type::ptr_scalar(Scalar::I32, AddressSpace::Global),
                },
            ],
        );
        let n = f.param_value(0);
        let out = f.param_value(1);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let zero = f.const_i32(0);
        let mut b = Builder::at_entry(&mut f);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32, vec![]);
        let c = b.cmp(CmpPred::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let one = b.i32(1);
        let ni = b.add(i, one);
        let g = b.gep(out, i);
        b.store(g, i);
        b.br(header);
        b.switch_to(exit);
        b.ret();
        let entry = f.entry;
        if let Some(Inst::Phi { incoming }) = f.inst_mut(i) {
            *incoming = vec![(entry, zero), (body, ni)];
        }
        f.set_name(i, "i");
        roundtrip(&f);
    }

    #[test]
    fn roundtrips_local_buffers_and_barriers() {
        use crate::builder::Builder;
        let mut f = Function::new(
            "stage",
            vec![Param {
                name: "in".into(),
                ty: Type::ptr_scalar(Scalar::F32, AddressSpace::Global),
            }],
        );
        let inp = f.param_value(0);
        let lm = f.add_local_buf(LocalBuf {
            name: "lm".into(),
            elem: Scalar::F32,
            lanes: 1,
            dims: vec![8, 8],
        });
        let mut b = Builder::at_entry(&mut f);
        let l = b.local_id_i32(0);
        let src = b.gep(inp, l);
        let v = b.load(src);
        let dst = b.gep(lm, l);
        b.store(dst, v);
        b.barrier(BarrierScope::Local);
        b.ret();
        roundtrip(&f);
    }

    #[test]
    fn roundtrips_vectors_and_math() {
        use crate::builder::Builder;
        let mut f = Function::new(
            "vec",
            vec![Param {
                name: "buf".into(),
                ty: Type::ptr(Scalar::F32, 4, AddressSpace::Global),
            }],
        );
        let buf = f.param_value(0);
        let mut b = Builder::at_entry(&mut f);
        let zero = b.i32(0);
        let p = b.gep(buf, zero);
        let v = b.load(p);
        let e = b.extract_lane(v, 2);
        let s = b.call(Builtin::Sqrt, vec![e]);
        let v2 = b.insert_lane(v, 0, s);
        let d = b.call(Builtin::Dot, vec![v2, v2]);
        let halves = b.fmul(d, d);
        let c = b.cmp(CmpPred::FGt, halves, d);
        let sel = b.select(c, d, halves);
        let bv = b.build_vector(vec![sel, sel, sel, sel]);
        b.store(p, bv);
        b.ret();
        roundtrip(&f);
    }

    #[test]
    fn roundtrips_compiled_benchmark_kernels() {
        // The strongest test: every bundled benchmark kernel round-trips,
        // before and after Grover.
        // (grover-frontend/core are dev-deps of other crates; here we only
        // exercise hand-built functions — the cross-crate version lives in
        // the workspace tests.)
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(parse_function("").is_err());
        assert!(
            parse_function("kernel @k() {\nentry:\n  %x = frobnicate 1\n}")
                .unwrap_err()
                .message
                .contains("unknown opcode")
        );
        assert!(
            parse_function("kernel @k() {\nentry:\n  %x = add i32 %nope, 1\n}")
                .unwrap_err()
                .message
                .contains("unknown value")
        );
    }

    #[test]
    fn constants_parse_back() {
        let mut f = Function::new("k", vec![]);
        use crate::builder::Builder;
        let mut b = Builder::at_entry(&mut f);
        let x = b.f32(0.1);
        let y = b.f32(2.0);
        let s = b.fadd(x, y);
        let i = b.i64(1 << 40);
        let t = b.cast(CastKind::Trunc, i, Type::I32);
        let u = b.add(t, t);
        let c = b.cmp(CmpPred::Slt, u, t);
        let sel = b.select(c, u, t);
        let fv = b.cast(CastKind::SiToFp, sel, Type::F32);
        let z = b.fmul(s, fv);
        let _ = z;
        b.ret();
        roundtrip(&f);
    }
}
