//! Type system for the Grover IR.
//!
//! The IR is deliberately close to the subset of LLVM/SPIR types that OpenCL
//! C kernels produce: scalars, short vectors, and pointers qualified by an
//! OpenCL address space. Aggregates never appear as SSA values; arrays only
//! exist as buffer objects (kernel arguments or `__local` allocations) that
//! are accessed through pointers.

use std::fmt;

/// OpenCL address space of a pointer.
///
/// The Grover pass keys almost everything on this distinction: a load from a
/// [`AddressSpace::Local`] pointer is an `LL`, a store to one is an `LS`, and
/// a load from a [`AddressSpace::Global`] pointer is a `GL` (paper §III-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AddressSpace {
    /// `__global` — device-wide memory, visible to all work-items.
    Global,
    /// `__local` — per-work-group scratch-pad memory.
    Local,
    /// `__constant` — read-only device-wide memory.
    Constant,
    /// `__private` — per-work-item memory (spills, private arrays).
    Private,
}

impl AddressSpace {
    /// Short OpenCL-style qualifier string.
    pub fn qualifier(self) -> &'static str {
        match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Constant => "__constant",
            AddressSpace::Private => "__private",
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.qualifier())
    }
}

/// Scalar value kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scalar {
    /// 1-bit boolean (comparison results).
    Bool,
    /// 32-bit signed integer (`int`). Unsigned OpenCL types are represented
    /// with the same bits; unsigned semantics live in the opcode
    /// (`UDiv`, `LShr`, unsigned comparisons).
    I32,
    /// 64-bit signed integer (`long`, and `size_t` results of the work-item
    /// functions before truncation).
    I64,
    /// 32-bit IEEE float (`float`).
    F32,
}

impl Scalar {
    /// Size of the scalar in bytes. `Bool` occupies one byte in memory.
    pub fn size_bytes(self) -> u64 {
        match self {
            Scalar::Bool => 1,
            Scalar::I32 | Scalar::F32 => 4,
            Scalar::I64 => 8,
        }
    }

    /// Whether this is one of the integer kinds (including `Bool`).
    pub fn is_int(self) -> bool {
        matches!(self, Scalar::Bool | Scalar::I32 | Scalar::I64)
    }

    /// Whether this is a floating-point kind.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scalar::Bool => "bool",
            Scalar::I32 => "i32",
            Scalar::I64 => "i64",
            Scalar::F32 => "f32",
        };
        f.write_str(s)
    }
}

/// An IR type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// No value (only as a call/function result).
    Void,
    /// A scalar.
    Scalar(Scalar),
    /// A short vector of 2, 4, 8 or 16 scalar lanes (OpenCL `floatN` etc.).
    Vector(Scalar, u8),
    /// A pointer to elements of a scalar or vector type in an address space.
    ///
    /// Pointee is restricted to non-pointer, non-void types, which is all
    /// OpenCL kernels in our subset need; this keeps `Type` `Copy`.
    Ptr {
        /// Element scalar kind.
        elem: Scalar,
        /// Number of lanes of the pointee (1 = scalar pointee).
        lanes: u8,
        /// Address space the pointer refers to.
        space: AddressSpace,
    },
}

impl Type {
    /// The boolean scalar type.
    pub const BOOL: Type = Type::Scalar(Scalar::Bool);
    /// The 32-bit integer scalar type.
    pub const I32: Type = Type::Scalar(Scalar::I32);
    /// The 64-bit integer scalar type.
    pub const I64: Type = Type::Scalar(Scalar::I64);
    /// The 32-bit float scalar type.
    pub const F32: Type = Type::Scalar(Scalar::F32);

    /// Build a pointer type to `lanes` lanes of `elem` in `space`.
    pub fn ptr(elem: Scalar, lanes: u8, space: AddressSpace) -> Type {
        Type::Ptr { elem, lanes, space }
    }

    /// Pointer to a scalar element.
    pub fn ptr_scalar(elem: Scalar, space: AddressSpace) -> Type {
        Type::ptr(elem, 1, space)
    }

    /// The type loaded/stored through a pointer of this type.
    pub fn pointee(self) -> Option<Type> {
        match self {
            Type::Ptr { elem, lanes: 1, .. } => Some(Type::Scalar(elem)),
            Type::Ptr { elem, lanes, .. } => Some(Type::Vector(elem, lanes)),
            _ => None,
        }
    }

    /// The address space of a pointer type.
    pub fn address_space(self) -> Option<AddressSpace> {
        match self {
            Type::Ptr { space, .. } => Some(space),
            _ => None,
        }
    }

    /// Size in bytes of a value of this type when stored to memory.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Scalar(s) => s.size_bytes(),
            Type::Vector(s, n) => s.size_bytes() * n as u64,
            Type::Ptr { .. } => 8,
        }
    }

    /// The scalar kind of a scalar or vector type.
    pub fn scalar_kind(self) -> Option<Scalar> {
        match self {
            Type::Scalar(s) | Type::Vector(s, _) => Some(s),
            _ => None,
        }
    }

    /// Number of lanes (1 for scalars).
    pub fn lanes(self) -> u8 {
        match self {
            Type::Vector(_, n) => n,
            _ => 1,
        }
    }

    /// True for `i32`/`i64`/`bool` scalars and vectors thereof.
    pub fn is_int(self) -> bool {
        self.scalar_kind().is_some_and(Scalar::is_int)
    }

    /// True for `f32` scalars and vectors thereof.
    pub fn is_float(self) -> bool {
        self.scalar_kind().is_some_and(Scalar::is_float)
    }

    /// True for pointer types.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr { .. })
    }

    /// Vector type with the same lane count but a different scalar kind.
    /// Scalars map to scalars.
    pub fn with_scalar(self, s: Scalar) -> Type {
        match self {
            Type::Vector(_, n) => Type::Vector(s, n),
            _ => Type::Scalar(s),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s, n) => write!(f, "<{n} x {s}>"),
            Type::Ptr {
                elem,
                lanes: 1,
                space,
            } => write!(f, "{elem} {space}*"),
            Type::Ptr { elem, lanes, space } => write!(f, "<{lanes} x {elem}> {space}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Scalar::Bool.size_bytes(), 1);
        assert_eq!(Scalar::I32.size_bytes(), 4);
        assert_eq!(Scalar::I64.size_bytes(), 8);
        assert_eq!(Scalar::F32.size_bytes(), 4);
    }

    #[test]
    fn vector_sizes() {
        assert_eq!(Type::Vector(Scalar::F32, 4).size_bytes(), 16);
        assert_eq!(Type::Vector(Scalar::I64, 2).size_bytes(), 16);
        assert_eq!(Type::I32.size_bytes(), 4);
    }

    #[test]
    fn pointee_roundtrip() {
        let p = Type::ptr_scalar(Scalar::F32, AddressSpace::Local);
        assert_eq!(p.pointee(), Some(Type::F32));
        assert_eq!(p.address_space(), Some(AddressSpace::Local));
        let v = Type::ptr(Scalar::F32, 4, AddressSpace::Global);
        assert_eq!(v.pointee(), Some(Type::Vector(Scalar::F32, 4)));
    }

    #[test]
    fn classification() {
        assert!(Type::I32.is_int());
        assert!(!Type::I32.is_float());
        assert!(Type::F32.is_float());
        assert!(Type::Vector(Scalar::F32, 4).is_float());
        assert!(Type::ptr_scalar(Scalar::F32, AddressSpace::Global).is_ptr());
        assert!(!Type::Void.is_int());
    }

    #[test]
    fn with_scalar_preserves_lanes() {
        assert_eq!(
            Type::Vector(Scalar::F32, 4).with_scalar(Scalar::I32),
            Type::Vector(Scalar::I32, 4)
        );
        assert_eq!(Type::F32.with_scalar(Scalar::I64), Type::I64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::F32.to_string(), "f32");
        assert_eq!(Type::Vector(Scalar::F32, 4).to_string(), "<4 x f32>");
        assert_eq!(
            Type::ptr_scalar(Scalar::F32, AddressSpace::Local).to_string(),
            "f32 __local*"
        );
        assert_eq!(AddressSpace::Global.to_string(), "__global");
    }
}
