//! Tuner ↔ model integration: `predict_first` serves confident answers
//! with provably zero launches, abstains below the threshold into the
//! measured race, and grades abstained guesses against the measurement.

use std::sync::Arc;

use grover_kernels::{app_by_id, prepare_pair, Scale};
use grover_predict::{FeatureVector, Model, TrainConfig, TrainRow, Verdict};
use grover_tuner::{Tuner, Workload};

/// Measure AMD-MM once and train a single-row model from the decision.
fn trained_on_measurement() -> (grover_ir::Function, Workload, Model, String) {
    let app = app_by_id("AMD-MM").expect("suite app");
    let pair = prepare_pair(&app, Scale::Test).expect("prepares");
    let nd = (app.prepare)(Scale::Test).nd;
    let prepare = app.prepare;
    let workload = Workload::new(move || {
        let p = prepare(Scale::Test);
        (p.ctx, p.args, p.nd)
    });

    let mut tuner = Tuner::new();
    let d = tuner
        .tune(&pair.original, "SNB", &workload)
        .expect("measured tune");
    assert!(d.np > 0.0, "the measured race must produce a ratio");

    let rows = [TrainRow {
        device: "SNB".to_string(),
        kernel: pair.original.name.clone(),
        features: FeatureVector::extract(&pair.original, nd.global, nd.local),
        choice: Verdict::parse(d.choice.kind()).expect("tags coincide"),
        np: d.np,
    }];
    let model = Model::train(&rows, "epoch-x", &TrainConfig::default());
    (pair.original, workload, model, d.choice.kind().to_string())
}

#[test]
fn predict_first_serves_hits_with_zero_launches() {
    let (kernel, workload, model, measured_choice) = trained_on_measurement();

    let mut tuner = Tuner::new();
    tuner.predictor = Some(Arc::new(model));
    tuner.predict_first = true; // default threshold 0.7 < exact-match confidence
    let d = tuner
        .tune(&kernel, "SNB", &workload)
        .expect("predicted tune");

    let conf = d.predicted.expect("served by the model");
    assert!(conf >= tuner.predict_threshold);
    assert_eq!(d.choice.kind(), measured_choice);
    // Zero launches is a counted fact, not an assumption: no race, no
    // verification run, no cycles measured.
    assert_eq!(tuner.launches_run(), 0);
    assert_eq!(tuner.races_run(), 0);
    assert_eq!((d.cycles_with, d.cycles_without), (0, 0));
    assert_eq!(tuner.predict_hits(), 1);
    assert_eq!(tuner.predict_abstains(), 0);
    assert_eq!(tuner.predict_wrong(), 0);
}

#[test]
fn below_threshold_abstains_into_the_measured_race() {
    let (kernel, workload, model, measured_choice) = trained_on_measurement();

    let mut tuner = Tuner::new();
    tuner.predictor = Some(Arc::new(model));
    tuner.predict_first = true;
    // Above even the exact-match confidence: the model must abstain and
    // the measured race must run.
    tuner.predict_threshold = 0.995;
    let d = tuner
        .tune(&kernel, "SNB", &workload)
        .expect("measured tune");

    assert!(d.predicted.is_none(), "abstained decisions are measured");
    assert_eq!(d.choice.kind(), measured_choice);
    assert!(d.cycles_with > 0 && d.cycles_without > 0);
    assert!(tuner.launches_run() > 0);
    assert_eq!(tuner.races_run(), 1);
    assert_eq!(tuner.predict_hits(), 0);
    assert_eq!(tuner.predict_abstains(), 1);
    // The abstained guess agreed with the measurement (it was trained on
    // exactly this row), so the error counter stays flat.
    assert_eq!(tuner.predict_wrong(), 0);
}

#[test]
fn unknown_device_abstains_even_with_a_model() {
    let (kernel, workload, model, _) = trained_on_measurement();

    let mut tuner = Tuner::new();
    tuner.predictor = Some(Arc::new(model)); // trained for SNB only
    tuner.predict_first = true;
    let d = tuner
        .tune(&kernel, "Fermi", &workload)
        .expect("measured tune");

    assert!(d.predicted.is_none());
    assert_eq!(tuner.predict_abstains(), 1);
    assert!(tuner.launches_run() > 0, "fell back to the measured race");
}
