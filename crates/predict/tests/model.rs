//! Model persistence contracts: train → save → load reproduces scores
//! bit-for-bit, and every flavour of staleness (schema drift, pass-epoch
//! drift, corruption) is rejected observably instead of mis-scoring.

use grover_predict::{
    schema_hash, FeatureVector, Model, ModelError, TrainConfig, TrainRow, Verdict, FEATURE_NAMES,
};

/// A deterministic synthetic feature vector parameterised by `bias`.
fn fv(bias: f64) -> FeatureVector {
    let values: Vec<f64> = (0..FEATURE_NAMES.len())
        .map(|i| ((i as f64) * 0.37 + bias).sin().abs())
        .collect();
    FeatureVector::from_values(values).expect("schema-length vector")
}

fn row(device: &str, kernel: &str, np: f64, bias: f64) -> TrainRow {
    TrainRow {
        device: device.to_string(),
        kernel: kernel.to_string(),
        features: fv(bias),
        choice: Verdict::from_np(np, 0.05),
        np,
    }
}

fn corpus() -> Vec<TrainRow> {
    vec![
        row("SNB", "k0", 1.40, 0.1),
        row("SNB", "k1", 1.22, 0.7),
        row("SNB", "k2", 0.81, 1.9),
        row("SNB", "k3", 0.74, 2.6),
        row("SNB", "k4", 1.01, 3.3),
        row("Fermi", "k0", 0.62, 0.1),
        row("Fermi", "k1", 0.88, 0.7),
        row("Fermi", "k2", 1.31, 1.9),
        row("Fermi", "k3", 0.99, 2.6),
    ]
}

const EPOCH: &str = "test-epoch-1";

#[test]
fn train_save_load_round_trips_bitwise() {
    let model = Model::train(&corpus(), EPOCH, &TrainConfig::default());
    let text = model.to_json();
    let loaded = Model::load(&text, EPOCH).expect("fresh model loads");

    // Serialisation is a fixed point: saving the loaded model reproduces
    // the original document byte for byte.
    assert_eq!(loaded.to_json(), text);

    // Scores are reproduced exactly — same verdict, bit-identical
    // numerics — for seen and unseen queries alike.
    for device in ["SNB", "Fermi"] {
        for bias in [0.1, 0.7, 1.9, 2.6, 0.42, 5.0] {
            let q = fv(bias);
            let a = model.predict(device, &q).expect("device model exists");
            let b = loaded.predict(device, &q).expect("device model exists");
            assert_eq!(a.verdict, b.verdict, "{device}/{bias}");
            assert_eq!(a.np_est.to_bits(), b.np_est.to_bits(), "{device}/{bias}");
            assert_eq!(
                a.confidence.to_bits(),
                b.confidence.to_bits(),
                "{device}/{bias}"
            );
            assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "{device}/{bias}");
            assert_eq!(a.neighbor_kernel, b.neighbor_kernel, "{device}/{bias}");
            assert_eq!(
                a.neighbor_distance.to_bits(),
                b.neighbor_distance.to_bits(),
                "{device}/{bias}"
            );
            assert_eq!(a.exact_match, b.exact_match, "{device}/{bias}");
        }
    }

    // Unknown device: abstains (None), never guesses cross-device.
    assert!(model.predict("Tahiti", &fv(0.1)).is_none());
}

#[test]
fn exact_training_match_is_high_confidence() {
    let model = Model::train(&corpus(), EPOCH, &TrainConfig::default());
    let p = model.predict("SNB", &fv(0.1)).expect("device model exists");
    assert!(p.exact_match);
    assert_eq!(p.neighbor_kernel, "k0");
    assert_eq!(p.verdict, Verdict::from_np(1.40, 0.05));
    assert!(
        p.confidence > 0.9,
        "exact match confidence {}",
        p.confidence
    );
}

#[test]
fn stale_models_are_rejected_not_served() {
    let model = Model::train(&corpus(), EPOCH, &TrainConfig::default());
    let text = model.to_json();

    // Pass-fingerprint epoch drift: decisions from another transform
    // revision must not be served.
    match Model::load(&text, "other-epoch") {
        Err(ModelError::EpochMismatch { model, ours }) => {
            assert_eq!(model, EPOCH);
            assert_eq!(ours, "other-epoch");
        }
        other => panic!("expected EpochMismatch, got {other:?}"),
    }

    // Feature-schema drift: a model trained under another feature list.
    let tampered = text.replace(&schema_hash(), &"0".repeat(32));
    match Model::load(&tampered, EPOCH) {
        Err(ModelError::SchemaMismatch { ours, .. }) => assert_eq!(ours, schema_hash()),
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }

    // Corruption: not a model document at all.
    assert!(matches!(
        Model::load("not a model", EPOCH),
        Err(ModelError::Parse(_))
    ));
    assert!(matches!(
        Model::load("{}", EPOCH),
        Err(ModelError::Parse(_))
    ));
}

#[test]
fn rows_without_ratio_information_are_skipped() {
    // np == 0 marks a decision whose transformed kernel never completed —
    // it carries a choice but no ratio, so training must not ingest it.
    let mut rows = corpus();
    rows.push(row("MIC", "broken", 0.0, 4.0));
    let model = Model::train(&rows, EPOCH, &TrainConfig::default());
    assert!(
        !model.devices.contains_key("MIC"),
        "a zero-np row must not create a device model"
    );
}
