//! The paper-facing acceptance gate: leave-one-app-out evaluation over a
//! corpus of measured decisions for the full 12-app suite on all six
//! device profiles. The model must agree with the measured verdict on at
//! least 75 % of held-out apps, and — the safety half of the contract —
//! every disagreement must sit below the default serving threshold, so a
//! predict-hit can never silently serve a wrong answer.

use grover_devsim::ALL_DEVICES;
use grover_kernels::{all_apps, extension_apps, prepare_pair, App, Scale};
use grover_predict::{evaluate_loo, FeatureVector, TrainConfig, TrainRow, Verdict};
use grover_runtime::Backend;
use grover_tuner::{Tuner, Workload};

fn suite() -> Vec<App> {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    apps
}

/// Measure the full suite × device grid once. Bytecode backend and no
/// output verification: this corpus feeds the evaluator, not the safety
/// pipeline, and the differential guard is exercised elsewhere.
fn measured_corpus() -> Vec<TrainRow> {
    let mut rows = Vec::new();
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).expect("suite app prepares");
        let nd = (app.prepare)(Scale::Test).nd;
        let features = FeatureVector::extract(&pair.original, nd.global, nd.local);
        let prepare = app.prepare;
        let workload = Workload::new(move || {
            let p = prepare(Scale::Test);
            (p.ctx, p.args, p.nd)
        });
        for device in ALL_DEVICES {
            let mut tuner = Tuner::new();
            tuner.backend = Backend::Bytecode;
            tuner.verify_outputs = false;
            let d = tuner
                .tune(&pair.original, device, &workload)
                .expect("suite app tunes");
            rows.push(TrainRow {
                device: device.to_string(),
                // Group by app id, not kernel symbol: the NVD-MM variants
                // share one kernel, and leave-one-out must hold out the
                // whole app.
                kernel: app.id.to_string(),
                features: features.clone(),
                choice: Verdict::parse(d.choice.kind())
                    .expect("tuner choice tags and predict verdicts coincide"),
                np: d.np,
            });
        }
    }
    rows
}

#[test]
fn leave_one_app_out_meets_acceptance() {
    let rows = measured_corpus();
    assert_eq!(rows.len(), 12 * ALL_DEVICES.len(), "full grid measured");

    let epoch = grover_core::pass_fingerprint();
    let cfg = TrainConfig::default();
    let report = evaluate_loo(&rows, &epoch, &cfg);

    let acc = report.accuracy();
    assert!(
        acc >= 0.75,
        "LOO agreement {acc:.3} below the 0.75 acceptance floor; disagreements: {:?}",
        report
            .cases
            .iter()
            .filter(|c| !c.agrees())
            .map(|c| (c.kernel.as_str(), c.device.as_str(), c.confidence))
            .collect::<Vec<_>>()
    );

    // Every wrong prediction abstains at the default serving threshold
    // (0.7 — `Tuner::predict_threshold` / `ServeConfig::predict_threshold`).
    let max_wrong = report.max_wrong_confidence();
    assert!(
        max_wrong < 0.7,
        "a wrong prediction is over-confident: {max_wrong:.3}"
    );
}
