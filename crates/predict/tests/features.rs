//! Feature-extraction contracts: determinism (byte-identical JSON for
//! identical inputs), a locked schema hash, and the static-vs-dynamic
//! reconciliation — every feature the extractor claims is present must be
//! corroborated by the observed execution counters of the bundled suite,
//! and the counters themselves must be schedule-independent
//! (serial ≡ parallel).

use grover_kernels::{
    all_apps, extension_apps, prepare_pair, run_prepared_observed_backend, App, Scale,
};
use grover_obs::NoopRecorder;
use grover_predict::{schema_hash, FeatureVector, FEATURE_NAMES};
use grover_runtime::{Backend, CountingSink, ExecPolicy};

/// The full 12-app suite: the 11 Table-I applications plus EXT-CONV.
fn suite() -> Vec<App> {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    apps
}

/// Observed execution counters of the original (local-memory) kernel.
fn observe(app: &App, policy: ExecPolicy) -> CountingSink {
    let pair = prepare_pair(app, Scale::Test).expect("suite app prepares");
    let prepared = (app.prepare)(Scale::Test);
    let mut sink = CountingSink::default();
    run_prepared_observed_backend(
        &pair.original,
        prepared,
        &mut sink,
        policy,
        Backend::Interp,
        &NoopRecorder,
        None,
    )
    .expect("suite app runs");
    sink
}

#[test]
fn schema_hash_is_locked() {
    // Any change to the feature list (order, name, count, version) must be
    // deliberate: bump `FEATURES_VERSION` and update this literal, then
    // retrain every model — stale ones are rejected by hash, not by luck.
    assert_eq!(FEATURE_NAMES.len(), 14);
    assert_eq!(schema_hash(), "9e396297c70b5aaceb4e3e4039429e64");
}

#[test]
fn extraction_is_deterministic_and_byte_stable() {
    for app in suite() {
        let a = prepare_pair(&app, Scale::Test).expect("prepares");
        let b = prepare_pair(&app, Scale::Test).expect("prepares");
        let nd = (app.prepare)(Scale::Test).nd;
        let fa = FeatureVector::extract(&a.original, nd.global, nd.local);
        let fb = FeatureVector::extract(&b.original, nd.global, nd.local);
        // Two independent compiles of the same source yield byte-identical
        // serialisations — the corpus-determinism contract.
        assert_eq!(fa.to_json(), fb.to_json(), "{}", app.id);
        assert_eq!(fa.values_json(), fb.values_json(), "{}", app.id);
        // And a round-trip through the wire form is exact.
        let parsed = grover_obs::json::parse(&fa.values_json()).expect("valid json");
        let back = FeatureVector::from_values_json(&parsed).expect("parses back");
        assert_eq!(back, fa, "{}", app.id);
    }
}

#[test]
fn static_features_reconcile_with_observed_counters() {
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).expect("prepares");
        let nd = (app.prepare)(Scale::Test).nd;
        let fv = FeatureVector::extract(&pair.original, nd.global, nd.local);
        let get = |name: &str| fv.get(name).expect("known feature");

        let obs = observe(&app, ExecPolicy::Serial);
        // Sound direction only: an executed operation must be visible to
        // the static extractor. (The converse can fail legitimately —
        // statically present code may be guarded off at this scale.)
        if obs.barriers > 0 {
            assert!(get("barrier_density") > 0.0, "{}: barriers ran", app.id);
        }
        if obs.local_loads > 0 {
            assert!(get("local_load_frac") > 0.0, "{}: local loads ran", app.id);
        }
        if obs.local_stores > 0 {
            assert!(
                get("local_store_frac") > 0.0,
                "{}: local stores ran",
                app.id
            );
        }
        if obs.global_loads > 0 {
            assert!(
                get("global_load_frac") > 0.0,
                "{}: global loads ran",
                app.id
            );
        }
        if obs.global_stores > 0 {
            assert!(
                get("global_store_frac") > 0.0,
                "{}: global stores ran",
                app.id
            );
        }
        // Footprint: the geometry-normalised local-buffer feature is
        // positive exactly when the kernel declares `__local` storage.
        assert_eq!(
            get("local_bytes_per_item") > 0.0,
            pair.original.local_mem_bytes() > 0,
            "{}: local footprint",
            app.id
        );
        // Geometry features mirror the launch, not the trace.
        let wg: u64 = nd.local.iter().product();
        let groups: u64 = nd.global.iter().product::<u64>() / wg.max(1);
        assert_eq!(
            get("wg_items_log2"),
            (wg.max(1) as f64).log2(),
            "{}",
            app.id
        );
        assert_eq!(
            get("groups_log2"),
            (groups.max(1) as f64).log2(),
            "{}",
            app.id
        );
    }
}

#[test]
fn observed_counters_are_schedule_independent() {
    // The reconciliation above is only meaningful if the dynamic side is
    // itself deterministic: a parallel schedule must count exactly what
    // the serial one does.
    for app in suite() {
        let s = observe(&app, ExecPolicy::Serial);
        let p = observe(&app, ExecPolicy::Parallel { threads: 4 });
        assert_eq!(s.barriers, p.barriers, "{}", app.id);
        assert_eq!(s.instructions, p.instructions, "{}", app.id);
        assert_eq!(s.global_loads, p.global_loads, "{}", app.id);
        assert_eq!(s.global_stores, p.global_stores, "{}", app.id);
        assert_eq!(s.local_loads, p.local_loads, "{}", app.id);
        assert_eq!(s.local_stores, p.local_stores, "{}", app.id);
        assert_eq!(s.bytes_loaded, p.bytes_loaded, "{}", app.id);
        assert_eq!(s.bytes_stored, p.bytes_stored, "{}", app.id);
    }
}
