//! The JSONL training table: measured decisions joined with features.
//!
//! One line per measured decision. Each row is self-describing — it
//! carries the feature schema hash and the pass-fingerprint epoch it was
//! produced under, so a corpus can never silently feed a mismatched
//! trainer. `grover corpus export` writes this format; `grover train`
//! reads it; the predict test fixtures are rows of it.

use grover_obs::json::{self, Obj};

use crate::features::{schema_hash, FeatureVector, FEATURES_VERSION};
use crate::model::{TrainRow, Verdict};

/// One corpus line: the join of a journal decision and its features.
#[derive(Clone, Debug)]
pub struct CorpusRow {
    /// App id (or fingerprint when exported from a serve journal).
    pub app: String,
    /// Kernel name.
    pub kernel: String,
    /// Device profile.
    pub device: String,
    /// Measured choice (`Choice::kind()` wire name).
    pub choice: Verdict,
    /// Measured np ratio.
    pub np: f64,
    /// Cycles of the original kernel.
    pub cycles_with: u64,
    /// Cycles of the transformed kernel.
    pub cycles_without: u64,
    /// Static features of the original kernel + geometry.
    pub features: FeatureVector,
}

impl CorpusRow {
    /// Serialise one JSONL line (no trailing newline).
    pub fn to_json(&self, epoch: &str) -> String {
        Obj::new()
            .str("app", &self.app)
            .str("kernel", &self.kernel)
            .str("device", &self.device)
            .str("choice", self.choice.kind())
            .f64("np", self.np)
            .u64("cycles_with", self.cycles_with)
            .u64("cycles_without", self.cycles_without)
            .u64("feature_schema_version", u64::from(FEATURES_VERSION))
            .str("feature_schema_hash", &schema_hash())
            .str("pass_fingerprint", epoch)
            .raw("features", &self.features.values_json())
            .finish()
    }

    /// Parse one line, validating schema hash and epoch strictly — a
    /// row produced under another schema or transform revision is an
    /// error, not a silent skip.
    pub fn parse(line: &str, ours_epoch: &str) -> Result<CorpusRow, String> {
        let doc = json::parse(line)?;
        let row_hash = doc
            .str_of("feature_schema_hash")
            .ok_or("corpus row missing feature_schema_hash")?;
        let ours = schema_hash();
        if row_hash != ours {
            return Err(format!(
                "corpus row feature schema {row_hash} does not match this binary's {ours}"
            ));
        }
        let row_epoch = doc
            .str_of("pass_fingerprint")
            .ok_or("corpus row missing pass_fingerprint")?;
        if row_epoch != ours_epoch {
            return Err(format!(
                "corpus row epoch {row_epoch} does not match this binary's {ours_epoch}"
            ));
        }
        let features = doc
            .get("features")
            .ok_or("corpus row missing features")
            .and_then(|v| FeatureVector::from_values_json(v).map_err(|_| "bad features array"))?;
        let need = |key: &str| -> Result<String, String> {
            doc.str_of(key)
                .map(str::to_string)
                .ok_or_else(|| format!("corpus row missing {key}"))
        };
        Ok(CorpusRow {
            app: need("app")?,
            kernel: need("kernel")?,
            device: need("device")?,
            choice: need("choice")
                .and_then(|s| Verdict::parse(&s).ok_or_else(|| format!("unknown choice {s:?}")))?,
            np: doc.f64_of("np").ok_or("corpus row missing np")?,
            cycles_with: doc.u64_of("cycles_with").unwrap_or(0),
            cycles_without: doc.u64_of("cycles_without").unwrap_or(0),
            features,
        })
    }

    /// View this row as a training row. The app id becomes the grouping
    /// key: the three NVD-MM variants are distinct Table-I apps sharing
    /// one kernel symbol, and leave-one-out holds apps out, not symbols.
    pub fn to_train_row(&self) -> TrainRow {
        TrainRow {
            device: self.device.clone(),
            kernel: self.app.clone(),
            features: self.features.clone(),
            choice: self.choice,
            np: self.np,
        }
    }
}

/// Parse a whole JSONL corpus (blank lines ignored). Fails on the first
/// invalid or stale row, naming its line number.
pub fn parse_corpus(text: &str, ours_epoch: &str) -> Result<Vec<CorpusRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = CorpusRow::parse(line, ours_epoch).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows.push(row);
    }
    Ok(rows)
}

/// Convert corpus rows to training rows.
pub fn train_rows(rows: &[CorpusRow]) -> Vec<TrainRow> {
    rows.iter().map(CorpusRow::to_train_row).collect()
}
