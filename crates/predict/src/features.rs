//! Static, architecture-independent kernel features.
//!
//! The extractor walks the IR of the *original* (local-memory-using)
//! kernel plus its launch geometry and produces a versioned
//! [`FeatureVector`] — no launch, no device model, no trace. The feature
//! taxonomy follows the AIWC school (Chilukuri et al., PAPERS.md):
//! everything is a property of the program and its index maps, never of a
//! target machine, so one vector serves every device column of the model.
//!
//! Determinism is a schema property: the same IR and geometry produce the
//! same bytes from [`FeatureVector::to_json`] in every process — values
//! are quantised to `1e-6` before serialisation and the field order is
//! fixed by [`FEATURE_NAMES`].

use std::collections::HashMap;

use grover_core::FingerprintBuilder;
use grover_ir::{
    AddressSpace, BinOp, BlockId, Builtin, CastKind, CmpPred, Function, Inst, Type, ValueDef,
    ValueId,
};
use grover_obs::json::{self, Json, Obj};

/// Version of the feature schema. Bump whenever a feature is added,
/// removed, reordered, or its definition changes — the hash in every
/// corpus row and model file carries it, so stale artifacts are rejected
/// instead of silently mis-scored.
pub const FEATURES_VERSION: u32 = 1;

/// The feature taxonomy, in vector order. See DESIGN.md §19 for the
/// prose definitions.
pub const FEATURE_NAMES: [&str; 14] = [
    "insts_log2",       // log2(1 + static instruction count)
    "barrier_density",  // barrier sites / instructions (trip-weighted)
    "global_load_frac", // per-space memory-op mix, trip-weighted sites
    "global_store_frac",
    "local_load_frac",
    "local_store_frac",
    "local_reuse",          // local loads per local store (clamped, /8)
    "reuse_distance",       // staging-store → last-local-load span / insts
    "gl_coalesced_frac",    // GL index maps with unit/broadcast fast stride
    "gl_strided_frac",      // GL index maps with non-unit or unknown stride
    "local_bytes_per_item", // log2(1 + __local bytes / work-group items)
    "wg_items_log2",        // log2(work-group items)
    "groups_log2",          // log2(number of work-groups)
    "loop_trip_class",      // 0 none / 1 short / 2 medium / 3 long, /3
];

/// Content hash of the feature schema (version + ordered names), baked
/// into every corpus row and model file. A model trained under one schema
/// can never score vectors of another: the serving layer compares hashes
/// before trusting a single weight.
pub fn schema_hash() -> String {
    let mut b = FingerprintBuilder::new().part("predict-features", &FEATURES_VERSION.to_le_bytes());
    for name in FEATURE_NAMES {
        b = b.part("feature", name.as_bytes());
    }
    b.finish().to_hex()
}

/// A stable, versioned vector of architecture-independent features.
/// Values are quantised to `1e-6` at construction, so equality and
/// serialisation are exact.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureVector {
    values: Vec<f64>,
}

/// Quantise to `1e-6`: the resolution floor that makes extraction
/// byte-stable across processes and platforms.
fn quantise(v: f64) -> f64 {
    if !v.is_finite() {
        return 0.0;
    }
    (v * 1e6).round() / 1e6
}

impl FeatureVector {
    /// Wrap raw values (e.g. parsed back from a corpus row). The length
    /// must match the schema.
    pub fn from_values(values: Vec<f64>) -> Result<FeatureVector, String> {
        if values.len() != FEATURE_NAMES.len() {
            return Err(format!(
                "feature vector has {} values, schema v{FEATURES_VERSION} has {}",
                values.len(),
                FEATURE_NAMES.len()
            ));
        }
        Ok(FeatureVector {
            values: values.into_iter().map(quantise).collect(),
        })
    }

    /// The raw values, in [`FEATURE_NAMES`] order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Look a feature up by schema name.
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }

    /// Euclidean distance to another vector, normalised by the feature
    /// count so the scale is schema-independent.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / FEATURE_NAMES.len() as f64).sqrt()
    }

    /// The named-feature object:
    /// `{"schema_version":V,"schema_hash":"..","features":{name:value,..}}`.
    /// Byte-identical for identical inputs — the determinism contract.
    pub fn to_json(&self) -> String {
        let mut features = Obj::new();
        for (name, v) in FEATURE_NAMES.iter().zip(&self.values) {
            features = features.f64(name, *v);
        }
        Obj::new()
            .u64("schema_version", u64::from(FEATURES_VERSION))
            .str("schema_hash", &schema_hash())
            .raw("features", &features.finish())
            .finish()
    }

    /// The bare value array (`[v0,v1,..]`) for embedding in corpus rows.
    pub fn values_json(&self) -> String {
        json::array(self.values.iter().map(|v| json::number(*v)))
    }

    /// Parse a bare value array produced by [`FeatureVector::values_json`].
    pub fn from_values_json(v: &Json) -> Result<FeatureVector, String> {
        let arr = v.as_arr().ok_or("`features` must be an array")?;
        let values: Option<Vec<f64>> = arr.iter().map(Json::as_f64).collect();
        FeatureVector::from_values(values.ok_or("`features` entries must be numbers")?)
    }

    /// Extract the feature vector from a kernel and its launch geometry.
    /// Pure and deterministic: no launch is performed.
    pub fn extract(f: &Function, global: [u64; 3], local: [u64; 3]) -> FeatureVector {
        let weights = block_weights(f);
        let loops = loop_summary(f);

        let mut insts = 0u64;
        let mut barriers = 0f64;
        let mut mem = SpaceMix::default();
        let mut first_local_store: Option<usize> = None;
        let mut last_local_load: Option<usize> = None;
        let mut gl_total = 0f64;
        let mut gl_coalesced = 0f64;
        let mut gl_strided = 0f64;
        let mut affine = AffineCtx::new(f);

        for (pos, (block, v)) in f.iter_insts().enumerate() {
            insts += 1;
            let w = weights.get(&block).copied().unwrap_or(1.0);
            let Some(inst) = f.inst(v) else { continue };
            match inst {
                Inst::Barrier { .. } => barriers += w,
                Inst::Load { ptr } => {
                    let space = pointer_space(f, *ptr);
                    mem.load(space, w);
                    if space == Some(AddressSpace::Local) {
                        last_local_load = Some(pos);
                    }
                    if space == Some(AddressSpace::Global) {
                        gl_total += w;
                        match affine.classify(*ptr) {
                            Stride::Unit | Stride::Broadcast => gl_coalesced += w,
                            Stride::Strided | Stride::Opaque => gl_strided += w,
                        }
                    }
                }
                Inst::Store { ptr, .. } => {
                    let space = pointer_space(f, *ptr);
                    mem.store(space, w);
                    if space == Some(AddressSpace::Local) && first_local_store.is_none() {
                        first_local_store = Some(pos);
                    }
                }
                _ => {}
            }
        }

        let mem_total = mem.total().max(1.0);
        let wg_items: u64 = local.iter().product::<u64>().max(1);
        let global_items: u64 = global.iter().product::<u64>().max(1);
        let groups = (global_items / wg_items).max(1);
        let reuse_distance = match (first_local_store, last_local_load) {
            (Some(s), Some(l)) if l > s => (l - s) as f64 / insts.max(1) as f64,
            _ => 0.0,
        };
        let local_reuse = if mem.local_stores > 0.0 {
            (mem.local_loads / mem.local_stores).clamp(0.0, 8.0) / 8.0
        } else {
            0.0
        };
        let bytes_per_item = f.local_mem_bytes() as f64 / wg_items as f64;

        let values = vec![
            ((insts + 1) as f64).log2(),
            barriers / insts.max(1) as f64,
            mem.global_loads / mem_total,
            mem.global_stores / mem_total,
            mem.local_loads / mem_total,
            mem.local_stores / mem_total,
            local_reuse,
            reuse_distance,
            if gl_total > 0.0 {
                gl_coalesced / gl_total
            } else {
                1.0
            },
            if gl_total > 0.0 {
                gl_strided / gl_total
            } else {
                0.0
            },
            (1.0 + bytes_per_item).log2(),
            (wg_items as f64).log2(),
            (groups as f64).log2(),
            loops.trip_class() / 3.0,
        ];
        FeatureVector {
            values: values.into_iter().map(quantise).collect(),
        }
    }
}

/// Trip-weighted per-space memory-operation counts.
#[derive(Default)]
struct SpaceMix {
    global_loads: f64,
    global_stores: f64,
    local_loads: f64,
    local_stores: f64,
    other: f64,
}

impl SpaceMix {
    fn load(&mut self, space: Option<AddressSpace>, w: f64) {
        match space {
            Some(AddressSpace::Global) => self.global_loads += w,
            Some(AddressSpace::Local) => self.local_loads += w,
            _ => self.other += w,
        }
    }

    fn store(&mut self, space: Option<AddressSpace>, w: f64) {
        match space {
            Some(AddressSpace::Global) => self.global_stores += w,
            Some(AddressSpace::Local) => self.local_stores += w,
            _ => self.other += w,
        }
    }

    fn total(&self) -> f64 {
        self.global_loads + self.global_stores + self.local_loads + self.local_stores + self.other
    }
}

/// Address space behind a pointer-typed value.
fn pointer_space(f: &Function, ptr: ValueId) -> Option<AddressSpace> {
    match f.ty(ptr) {
        Type::Ptr { space, .. } => Some(space),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Loop analysis: back-edge detection, constant trip estimation, weights.
// ---------------------------------------------------------------------------

/// Default trip estimate when a loop bound cannot be resolved statically.
const UNKNOWN_TRIP: u64 = 16;
/// Cap on the product of nested trip estimates (keeps the weighting
/// bounded for pathological nests).
const MAX_WEIGHT: f64 = 4096.0;

struct LoopInfo {
    header: BlockId,
    latch: BlockId,
    /// `Some(trip)` when resolved from a constant-bound induction,
    /// `None` when unknown.
    trip: Option<u64>,
}

struct LoopSummary {
    loops: Vec<LoopInfo>,
}

impl LoopSummary {
    /// The loop trip-count class: `0` no loops, `1` every loop is a short
    /// constant trip (≤ 16), `2` constant trips ≤ 256, `3` long or
    /// statically unknown.
    fn trip_class(&self) -> f64 {
        if self.loops.is_empty() {
            return 0.0;
        }
        let mut class = 1.0f64;
        for l in &self.loops {
            let c = match l.trip {
                Some(t) if t <= 16 => 1.0,
                Some(t) if t <= 256 => 2.0,
                _ => 3.0,
            };
            class = class.max(c);
        }
        class
    }
}

/// Detect loops via the ordered-block back-edge heuristic (the frontend
/// emits headers before latches) and estimate constant trip counts from
/// `phi`-based inductions compared against constants.
fn loop_summary(f: &Function) -> LoopSummary {
    let mut loops = Vec::new();
    for b in f.blocks() {
        for succ in f.successors(b) {
            if succ.index() <= b.index() {
                let trip = estimate_trip(f, succ, b);
                loops.push(LoopInfo {
                    header: succ,
                    latch: b,
                    trip,
                });
            }
        }
    }
    LoopSummary { loops }
}

/// Estimate the trip count of the loop `header..=latch`: find the
/// header's conditional exit `cmp(ind, bound)` where `ind` is a `phi` in
/// the header incremented by a constant along the back edge and `bound`
/// is a constant. Any unresolved piece yields `None`.
fn estimate_trip(f: &Function, header: BlockId, latch: BlockId) -> Option<u64> {
    let term = f.terminator(header)?;
    let cond = match term {
        Inst::CondBr { cond, .. } => *cond,
        _ => return None,
    };
    let (pred, lhs, rhs) = match f.inst(cond)? {
        Inst::Cmp { pred, lhs, rhs } => (*pred, *lhs, *rhs),
        _ => return None,
    };
    // Normalise to (induction, bound).
    let (ind, bound, pred) = if f.as_const_int(rhs).is_some() {
        (lhs, f.as_const_int(rhs)?, pred)
    } else if f.as_const_int(lhs).is_some() {
        (rhs, f.as_const_int(lhs)?, flip(pred))
    } else {
        return None;
    };
    let Some(Inst::Phi { incoming }) = f.inst(ind) else {
        return None;
    };
    let mut init = None;
    let mut step = None;
    for (from, val) in incoming {
        if *from == latch {
            // Back-edge value: must be `ind + const` (or `ind - const`).
            if let Some(Inst::Bin { op, lhs, rhs }) = f.inst(*val) {
                let (other, sign) = match op {
                    BinOp::Add => (*rhs, 1i64),
                    BinOp::Sub => (*rhs, -1i64),
                    _ => return None,
                };
                if *lhs != ind {
                    return None;
                }
                step = Some(sign * f.as_const_int(other)?);
            } else {
                return None;
            }
        } else {
            init = Some(f.as_const_int(*val)?);
        }
    }
    let (init, step) = (init?, step?);
    if step == 0 {
        return None;
    }
    let span = match pred {
        CmpPred::Slt | CmpPred::Ult => bound - init,
        CmpPred::Sle | CmpPred::Ule => bound - init + 1,
        CmpPred::Sgt | CmpPred::Ugt => init - bound,
        CmpPred::Sge | CmpPred::Uge => init - bound + 1,
        CmpPred::Ne => bound - init,
        _ => return None,
    };
    let trips = (span as f64 / step.abs() as f64).ceil();
    if trips.is_finite() && trips >= 1.0 {
        Some(trips as u64)
    } else {
        None
    }
}

fn flip(p: CmpPred) -> CmpPred {
    match p {
        CmpPred::Slt => CmpPred::Sgt,
        CmpPred::Sle => CmpPred::Sge,
        CmpPred::Sgt => CmpPred::Slt,
        CmpPred::Sge => CmpPred::Sle,
        CmpPred::Ult => CmpPred::Ugt,
        CmpPred::Ule => CmpPred::Uge,
        CmpPred::Ugt => CmpPred::Ult,
        CmpPred::Uge => CmpPred::Ule,
        other => other,
    }
}

/// Per-block execution weight: the product of the (estimated) trip counts
/// of every loop whose `header..=latch` block range contains the block.
fn block_weights(f: &Function) -> HashMap<BlockId, f64> {
    let loops = loop_summary(f);
    let mut weights = HashMap::new();
    for b in f.blocks() {
        let mut w = 1.0f64;
        for l in &loops.loops {
            if b.index() >= l.header.index() && b.index() <= l.latch.index() {
                w *= l.trip.unwrap_or(UNKNOWN_TRIP) as f64;
            }
        }
        weights.insert(b, w.min(MAX_WEIGHT));
    }
    weights
}

// ---------------------------------------------------------------------------
// Coalescing analysis: affine index maps over the work-item atoms.
// ---------------------------------------------------------------------------

/// Linear-form atoms: `get_global_id(d)`, `get_local_id(d)`,
/// `get_group_id(d)` for d = 0..3. Everything else (params, constants,
/// uniform builtins, loop counters) folds into the uniform bucket.
const N_ATOMS: usize = 9;
const GID0: usize = 0;
const LID0: usize = 3;
const GROUP0: usize = 6;

/// An atom's coefficient in a linear index form.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Coeff {
    Zero,
    Known(i64),
    /// Non-zero but not statically known (e.g. scaled by a runtime
    /// uniform such as a width parameter).
    Unknown,
}

impl Coeff {
    fn add(self, other: Coeff) -> Coeff {
        match (self, other) {
            (Coeff::Zero, c) | (c, Coeff::Zero) => c,
            (Coeff::Known(a), Coeff::Known(b)) => {
                if a + b == 0 {
                    Coeff::Zero
                } else {
                    Coeff::Known(a + b)
                }
            }
            _ => Coeff::Unknown,
        }
    }

    fn negate(self) -> Coeff {
        match self {
            Coeff::Known(a) => Coeff::Known(-a),
            c => c,
        }
    }

    fn scale(self, k: i64) -> Coeff {
        match self {
            Coeff::Zero => Coeff::Zero,
            _ if k == 0 => Coeff::Zero,
            Coeff::Known(a) => Coeff::Known(a * k),
            Coeff::Unknown => Coeff::Unknown,
        }
    }

    fn scale_unknown(self) -> Coeff {
        match self {
            Coeff::Zero => Coeff::Zero,
            _ => Coeff::Unknown,
        }
    }
}

/// A value expressed as a linear combination of work-item atoms plus a
/// uniform remainder. `opaque` marks values outside the affine fragment
/// (data-dependent indices, non-linear arithmetic over ids).
#[derive(Clone, Copy, Debug)]
struct Lin {
    coeffs: [Coeff; N_ATOMS],
    opaque: bool,
}

impl Lin {
    fn uniform() -> Lin {
        Lin {
            coeffs: [Coeff::Zero; N_ATOMS],
            opaque: false,
        }
    }

    fn opaque() -> Lin {
        Lin {
            coeffs: [Coeff::Zero; N_ATOMS],
            opaque: true,
        }
    }

    fn atom(i: usize) -> Lin {
        let mut l = Lin::uniform();
        l.coeffs[i] = Coeff::Known(1);
        l
    }

    fn is_uniform(&self) -> bool {
        !self.opaque && self.coeffs.iter().all(|c| *c == Coeff::Zero)
    }
}

/// How a global-load index map varies with the fastest work-item
/// dimension.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Stride {
    /// Consecutive work-items touch consecutive elements.
    Unit,
    /// Uniform across the fast dimension (one transaction, broadcast).
    Broadcast,
    /// A known non-unit or unknown non-zero stride.
    Strided,
    /// Outside the affine fragment entirely.
    Opaque,
}

struct AffineCtx<'a> {
    f: &'a Function,
    memo: HashMap<ValueId, Lin>,
    visiting: Vec<ValueId>,
}

impl<'a> AffineCtx<'a> {
    fn new(f: &'a Function) -> AffineCtx<'a> {
        AffineCtx {
            f,
            memo: HashMap::new(),
            visiting: Vec::new(),
        }
    }

    /// Classify the index map of a global-load pointer.
    fn classify(&mut self, ptr: ValueId) -> Stride {
        let lin = match self.f.inst(ptr) {
            Some(Inst::Gep { index, .. }) => self.linearise(*index),
            // A bare base pointer (no GEP): element 0 for every item.
            _ => Lin::uniform(),
        };
        if lin.opaque {
            return Stride::Opaque;
        }
        // The fastest-varying atoms: dimension-0 global and local ids
        // (`gid0 = group0·ls0 + lid0`, so both move with the fast lane).
        let fast = lin.coeffs[GID0].add(lin.coeffs[LID0]);
        match fast {
            Coeff::Zero => Stride::Broadcast,
            Coeff::Known(1) | Coeff::Known(-1) => Stride::Unit,
            _ => Stride::Strided,
        }
    }

    fn linearise(&mut self, v: ValueId) -> Lin {
        if let Some(l) = self.memo.get(&v) {
            return *l;
        }
        if self.visiting.contains(&v) {
            // A recursive def (loop phi): uniform across work-items.
            return Lin::uniform();
        }
        self.visiting.push(v);
        let lin = self.linearise_inner(v);
        self.visiting.pop();
        self.memo.insert(v, lin);
        lin
    }

    fn linearise_inner(&mut self, v: ValueId) -> Lin {
        let f = self.f;
        match &f.value(v).def {
            ValueDef::Const(_) | ValueDef::Param(_) => Lin::uniform(),
            ValueDef::LocalBuf(_) => Lin::opaque(),
            ValueDef::Inst(inst) => match inst {
                Inst::Call { builtin, args } => {
                    let dim = args
                        .first()
                        .and_then(|a| f.as_const_int(*a))
                        .unwrap_or(0)
                        .clamp(0, 2) as usize;
                    match builtin {
                        Builtin::GlobalId => Lin::atom(GID0 + dim),
                        Builtin::LocalId => Lin::atom(LID0 + dim),
                        Builtin::GroupId => Lin::atom(GROUP0 + dim),
                        Builtin::LocalSize | Builtin::GlobalSize | Builtin::NumGroups => {
                            Lin::uniform()
                        }
                        _ => self.fold_uniform(args.clone()),
                    }
                }
                Inst::Bin { op, lhs, rhs } => self.linearise_bin(*op, *lhs, *rhs),
                Inst::Cast {
                    kind: CastKind::SExt | CastKind::ZExt | CastKind::Trunc,
                    value,
                    ..
                } => self.linearise(*value),
                Inst::Phi { incoming } => {
                    let vals: Vec<ValueId> = incoming.iter().map(|(_, v)| *v).collect();
                    self.fold_uniform(vals)
                }
                Inst::Load { .. } => Lin::opaque(),
                Inst::Select {
                    cond,
                    then_val,
                    else_val,
                } => self.fold_uniform(vec![*cond, *then_val, *else_val]),
                _ => Lin::opaque(),
            },
        }
    }

    /// Values built from uniform inputs are uniform; anything touching a
    /// work-item id through a non-affine operation is opaque.
    fn fold_uniform(&mut self, args: Vec<ValueId>) -> Lin {
        for a in args {
            if !self.linearise(a).is_uniform() {
                return Lin::opaque();
            }
        }
        Lin::uniform()
    }

    fn linearise_bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> Lin {
        let f = self.f;
        let (l, r) = (self.linearise(lhs), self.linearise(rhs));
        if l.opaque || r.opaque {
            return Lin::opaque();
        }
        match op {
            BinOp::Add | BinOp::Sub => {
                let mut out = Lin::uniform();
                for i in 0..N_ATOMS {
                    let rc = if op == BinOp::Sub {
                        r.coeffs[i].negate()
                    } else {
                        r.coeffs[i]
                    };
                    out.coeffs[i] = l.coeffs[i].add(rc);
                }
                out
            }
            BinOp::Mul => self.linearise_mul(lhs, l, rhs, r),
            BinOp::Shl => {
                // `x << c` is `x * 2^c` for a constant shift.
                if let Some(c) = f.as_const_int(rhs) {
                    if (0..63).contains(&c) {
                        let mut out = l;
                        for co in &mut out.coeffs {
                            *co = co.scale(1i64 << c);
                        }
                        return out;
                    }
                }
                if l.is_uniform() && r.is_uniform() {
                    Lin::uniform()
                } else {
                    Lin::opaque()
                }
            }
            // Non-linear over ids; fine over uniforms.
            _ => {
                if l.is_uniform() && r.is_uniform() {
                    Lin::uniform()
                } else {
                    Lin::opaque()
                }
            }
        }
    }

    fn linearise_mul(&mut self, lhs: ValueId, l: Lin, rhs: ValueId, r: Lin) -> Lin {
        let f = self.f;
        let scale_by = |lin: Lin, k: Option<i64>| -> Lin {
            let mut out = lin;
            for c in &mut out.coeffs {
                *c = match k {
                    Some(k) => c.scale(k),
                    None => c.scale_unknown(),
                };
            }
            out
        };
        match (l.is_uniform(), r.is_uniform()) {
            (true, true) => Lin::uniform(),
            // affine × uniform: known constant scales exactly, a runtime
            // uniform turns every non-zero coefficient unknown.
            (true, false) => scale_by(r, f.as_const_int(lhs)),
            (false, true) => scale_by(l, f.as_const_int(rhs)),
            // id × id: quadratic, outside the fragment.
            (false, false) => Lin::opaque(),
        }
    }
}
