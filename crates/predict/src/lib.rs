#![warn(missing_docs)]
//! # grover-predict
//!
//! Architecture-independent kernel features and zero-launch predictive
//! tuning. The paper answers "when does disabling local memory win?" by
//! racing candidate kernels — at serving scale most tunes must instead
//! cost *zero launches*. Following the AIWC school (Chilukuri et al.,
//! PAPERS.md), this crate scores the decision from program structure
//! alone:
//!
//! * [`features`] — a static analyzer over `grover-ir` producing a
//!   stable, versioned [`FeatureVector`]: barrier density, per-space
//!   load/store mix, estimated reuse distance, coalescing ratio of
//!   global-load index maps, local-buffer footprint vs geometry, loop
//!   trip-count class. No launch, no device model; deterministic to the
//!   byte.
//! * [`model`] — an interpretable per-device scorer: ridge-regularised
//!   linear regression over `ln(np)` plus a nearest-neighbour fallback
//!   keyed by feature distance, trained from the decision journal.
//!   `model.json` bakes in the feature schema hash and the
//!   pass-fingerprint epoch so stale models are observably rejected.
//! * [`corpus`] — the JSONL training table joining measured decisions
//!   with their feature vectors (written by `grover corpus export`,
//!   read by `grover train`).
//!
//! The tuner's `predict_first` mode and `grover-serve`'s
//! `POST /v1/predict` sit on top: answer from the model when confidence
//! clears `--predict-threshold`, fall back to the measured race when it
//! abstains, and append every fallback's measured outcome back to the
//! corpus — a closed loop.

pub mod corpus;
pub mod features;
pub mod model;

pub use corpus::{parse_corpus, train_rows, CorpusRow};
pub use features::{schema_hash, FeatureVector, FEATURES_VERSION, FEATURE_NAMES};
pub use model::{
    evaluate_loo, DeviceModel, LooCase, LooReport, Model, ModelError, Prediction, TrainConfig,
    TrainRow, Verdict,
};

/// Device profiles the per-device models are keyed by — the simulator's
/// six paper devices.
pub fn known_devices() -> &'static [&'static str] {
    &grover_devsim::ALL_DEVICES
}
