//! Interpretable per-device scorer trained from measured decisions.
//!
//! The model is deliberately boring: one ridge-regularised linear
//! regressor per device profile over the standardised feature vector,
//! predicting `ln(np)` (the paper's normalised-performance ratio), plus a
//! nearest-neighbour fallback keyed by feature distance. Both halves are
//! inspectable — every weight names a feature, every neighbour names a
//! kernel — so a prediction can always be explained.
//!
//! Serialisation is exact: Rust's `f64` `Display` prints the shortest
//! round-trip representation, so `train → save → load → score` is
//! bit-identical to scoring the in-memory model (covered by tests).

use std::collections::BTreeMap;

use grover_obs::json::{self, Json, Obj};

use crate::features::{schema_hash, FeatureVector, FEATURES_VERSION, FEATURE_NAMES};

/// Format tag written to (and required from) every `model.json`.
pub const MODEL_FORMAT: &str = "grover-predict-model";
/// Version of the model container format.
pub const MODEL_VERSION: u32 = 1;

/// The tuning outcome a model predicts — mirrors the tuner's `Choice`
/// without depending on it (the tuner depends on this crate, not the
/// reverse).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Keep the original kernel (`np < 1 - threshold`).
    WithLocalMemory,
    /// Run the transformed kernel (`np > 1 + threshold`).
    WithoutLocalMemory,
    /// Within the similarity band — either works.
    Similar,
}

impl Verdict {
    /// The wire name, identical to `Choice::kind()` in the tuner.
    pub fn kind(self) -> &'static str {
        match self {
            Verdict::WithLocalMemory => "with_local_memory",
            Verdict::WithoutLocalMemory => "without_local_memory",
            Verdict::Similar => "similar",
        }
    }

    /// Parse a wire name back to a verdict.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "with_local_memory" => Some(Verdict::WithLocalMemory),
            "without_local_memory" => Some(Verdict::WithoutLocalMemory),
            "similar" => Some(Verdict::Similar),
            _ => None,
        }
    }

    /// Classify a measured/estimated np ratio under the tuner's
    /// threshold rule.
    pub fn from_np(np: f64, threshold: f64) -> Verdict {
        if np > 1.0 + threshold {
            Verdict::WithoutLocalMemory
        } else if np < 1.0 - threshold {
            Verdict::WithLocalMemory
        } else {
            Verdict::Similar
        }
    }
}

/// One measured decision joined with its feature vector — a corpus row.
#[derive(Clone, Debug)]
pub struct TrainRow {
    /// Device profile the decision was measured on.
    pub device: String,
    /// Kernel name (the leave-one-out grouping key).
    pub kernel: String,
    /// Static features of the original kernel + geometry.
    pub features: FeatureVector,
    /// The measured choice.
    pub choice: Verdict,
    /// The measured np ratio (`cycles_with / cycles_without`).
    pub np: f64,
}

/// Training hyper-parameters. The defaults are tuned once against the
/// 12-app corpus and checked in CI; they are exposed so experiments can
/// vary them.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Gradient-descent iterations.
    pub iterations: u32,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Ridge (L2) regularisation strength.
    pub l2: f64,
    /// The similarity band half-width (the tuner's 5%).
    pub threshold: f64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            iterations: 400,
            learning_rate: 0.1,
            l2: 1e-3,
            threshold: 0.05,
        }
    }
}

/// A stored corpus row inside a device model — the nearest-neighbour
/// memory.
#[derive(Clone, Debug)]
struct StoredRow {
    kernel: String,
    values: Vec<f64>,
    choice: Verdict,
    np: f64,
}

/// The per-device half of the model: standardisation statistics, linear
/// weights over `ln(np)`, and the row memory for the neighbour fallback.
#[derive(Clone, Debug)]
pub struct DeviceModel {
    bias: f64,
    weights: Vec<f64>,
    mean: Vec<f64>,
    scale: Vec<f64>,
    rows: Vec<StoredRow>,
}

/// A scored prediction: the verdict, the estimated ratio, and how much
/// the model believes itself.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predicted tuning outcome.
    pub verdict: Verdict,
    /// Estimated np ratio.
    pub np_est: f64,
    /// Confidence in `[0, 1]`; serving compares this to
    /// `--predict-threshold` to decide hit vs fallback race.
    pub confidence: f64,
    /// Distance of `np_est` from the nearest decision boundary, in
    /// `ln(np)` units.
    pub margin: f64,
    /// Kernel name of the nearest training neighbour.
    pub neighbor_kernel: String,
    /// Normalised feature distance to that neighbour.
    pub neighbor_distance: f64,
    /// True when the query matched a training row exactly.
    pub exact_match: bool,
}

/// Why a saved model was refused.
#[derive(Debug)]
pub enum ModelError {
    /// The file is not a valid model document.
    Parse(String),
    /// The model was trained under a different feature schema.
    SchemaMismatch {
        /// Hash the model was trained with.
        model: String,
        /// Hash this binary computes.
        ours: String,
    },
    /// The model was trained under a different pass-fingerprint epoch.
    EpochMismatch {
        /// Epoch baked into the model.
        model: String,
        /// This binary's epoch.
        ours: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Parse(m) => write!(f, "model parse error: {m}"),
            ModelError::SchemaMismatch { model, ours } => write!(
                f,
                "stale model: feature schema {model} does not match this binary's {ours}"
            ),
            ModelError::EpochMismatch { model, ours } => write!(
                f,
                "stale model: pass-fingerprint epoch {model} does not match this binary's {ours}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// The full model: per-device scorers plus the provenance that makes
/// staleness observable.
#[derive(Clone, Debug)]
pub struct Model {
    /// Feature schema version the model was trained under.
    pub schema_version: u32,
    /// Feature schema hash the model was trained under.
    pub schema_hash: String,
    /// Pass-fingerprint epoch of the corpus (decisions from another
    /// transform revision must not be served).
    pub epoch: String,
    /// Similarity band half-width used when classifying `np_est`.
    pub threshold: f64,
    /// Per-device scorers, keyed by device profile name.
    pub devices: BTreeMap<String, DeviceModel>,
}

impl Model {
    /// Train from corpus rows. Rows with non-positive np are skipped
    /// (they carry no ratio information). Training is deterministic:
    /// fixed iteration count, no randomness, rows grouped per device in
    /// input order.
    pub fn train(rows: &[TrainRow], epoch: &str, cfg: &TrainConfig) -> Model {
        let mut by_device: BTreeMap<String, Vec<&TrainRow>> = BTreeMap::new();
        for r in rows {
            if r.np > 0.0 && r.np.is_finite() {
                by_device.entry(r.device.clone()).or_default().push(r);
            }
        }
        let devices = by_device
            .into_iter()
            .map(|(dev, rows)| (dev, DeviceModel::train(&rows, cfg)))
            .collect();
        Model {
            schema_version: FEATURES_VERSION,
            schema_hash: schema_hash(),
            epoch: epoch.to_string(),
            threshold: cfg.threshold,
            devices,
        }
    }

    /// Score a feature vector for a device. `None` when the model has no
    /// rows for that device (serving treats this as an abstain).
    pub fn predict(&self, device: &str, fv: &FeatureVector) -> Option<Prediction> {
        self.devices
            .get(device)
            .and_then(|m| m.predict(fv, self.threshold))
    }

    /// Devices the model can score.
    pub fn device_names(&self) -> Vec<&str> {
        self.devices.keys().map(String::as_str).collect()
    }

    /// Total training rows across devices.
    pub fn rows_total(&self) -> usize {
        self.devices.values().map(|d| d.rows.len()).sum()
    }

    /// Serialise to the versioned `model.json` document.
    pub fn to_json(&self) -> String {
        let mut devices = Obj::new();
        for (name, d) in &self.devices {
            devices = devices.raw(name, &d.to_json());
        }
        Obj::new()
            .str("format", MODEL_FORMAT)
            .u64("model_version", u64::from(MODEL_VERSION))
            .u64("feature_schema_version", u64::from(self.schema_version))
            .str("feature_schema_hash", &self.schema_hash)
            .str("pass_fingerprint", &self.epoch)
            .f64("threshold", self.threshold)
            .raw(
                "feature_names",
                &json::array(FEATURE_NAMES.iter().map(|n| format!("\"{n}\""))),
            )
            .raw("devices", &devices.finish())
            .finish()
    }

    /// Load and validate a `model.json` produced by [`Model::to_json`].
    /// `ours_epoch` is this binary's `pass_fingerprint()`; a model
    /// trained under a different schema or epoch is rejected with a
    /// specific, observable error.
    pub fn load(text: &str, ours_epoch: &str) -> Result<Model, ModelError> {
        let doc = json::parse(text).map_err(ModelError::Parse)?;
        if doc.str_of("format") != Some(MODEL_FORMAT) {
            return Err(ModelError::Parse(format!(
                "missing or wrong `format` tag (want {MODEL_FORMAT:?})"
            )));
        }
        let model_hash = doc
            .str_of("feature_schema_hash")
            .ok_or_else(|| ModelError::Parse("missing feature_schema_hash".into()))?;
        let ours_hash = schema_hash();
        if model_hash != ours_hash {
            return Err(ModelError::SchemaMismatch {
                model: model_hash.to_string(),
                ours: ours_hash,
            });
        }
        let model_epoch = doc
            .str_of("pass_fingerprint")
            .ok_or_else(|| ModelError::Parse("missing pass_fingerprint".into()))?;
        if model_epoch != ours_epoch {
            return Err(ModelError::EpochMismatch {
                model: model_epoch.to_string(),
                ours: ours_epoch.to_string(),
            });
        }
        let threshold = doc
            .f64_of("threshold")
            .ok_or_else(|| ModelError::Parse("missing threshold".into()))?;
        let schema_version = doc
            .u64_of("feature_schema_version")
            .ok_or_else(|| ModelError::Parse("missing feature_schema_version".into()))?
            as u32;
        let mut devices = BTreeMap::new();
        if let Some(Json::Obj(entries)) = doc.get("devices") {
            for (name, val) in entries {
                devices.insert(name.clone(), DeviceModel::from_json(val)?);
            }
        } else {
            return Err(ModelError::Parse("missing devices object".into()));
        }
        Ok(Model {
            schema_version,
            schema_hash: model_hash.to_string(),
            epoch: model_epoch.to_string(),
            threshold,
            devices,
        })
    }
}

/// Clamp for the regression target `ln(np)` — keeps outliers from
/// dominating the fit.
const LN_NP_CLAMP: f64 = 3.0;
/// Confidence assigned to exact corpus matches.
const EXACT_CONFIDENCE: f64 = 0.98;
/// Neighbours consulted by the interpolation half of the scorer.
const KNN_K: usize = 3;
/// Softening added to neighbour distances before inverse-square
/// weighting, so an all-but-exact match cannot produce an infinite
/// weight.
const KNN_EPS: f64 = 1e-3;
/// Standardised distance beyond which the corpus neighbourhood is not
/// trusted: past this radius the scorer extrapolates with the
/// regularised linear model instead of interpolating neighbours (and the
/// proximity term has already driven confidence toward zero).
const NEIGHBOR_RADIUS: f64 = 2.0;
/// ln(np) margin scale of the confidence model: a prediction one band
/// half-width (`ln 1.05 ≈ 0.049`) from a verdict boundary earns ~0.39 of
/// the margin term.
const MARGIN_SCALE: f64 = 0.1;
/// Distance scale of the proximity term: neighbour agreement only counts
/// while the nearest row is genuinely close in standardised space.
const PROXIMITY_SCALE: f64 = 0.3;
/// Weight of the band-margin term in the confidence blend.
const MARGIN_WEIGHT: f64 = 0.4;
/// Weight of the neighbour-agreement term in the confidence blend.
const AGREE_WEIGHT: f64 = 0.7;

/// Per-feature weights of the neighbour distance metric, in
/// [`FEATURE_NAMES`] order. Calibrated once by leave-one-app-out search
/// over the 12-app × 6-device corpus (see `tests/loo.rs`): the launch
/// geometry features (`wg_items_log2`, `groups_log2`) and the redundant
/// complement `gl_strided_frac` are excluded from *similarity* — two
/// kernels with the same memory behaviour at different launch sizes are
/// the same program for tuning purposes — while every behavioural
/// feature participates. They remain in the schema: the linear half and
/// the corpus still carry them.
const DISTANCE_WEIGHTS: [f64; 14] = [
    1.0, // insts_log2
    1.0, // barrier_density
    1.0, // global_load_frac
    1.0, // global_store_frac
    1.0, // local_load_frac
    1.0, // local_store_frac
    1.0, // local_reuse
    1.0, // reuse_distance
    1.0, // gl_coalesced_frac
    0.0, // gl_strided_frac (complement of coalesced: double-counting)
    1.0, // local_bytes_per_item
    0.0, // wg_items_log2 (launch geometry, not program behaviour)
    0.0, // groups_log2 (launch geometry, not program behaviour)
    1.0, // loop_trip_class
];
const _: () = assert!(DISTANCE_WEIGHTS.len() == FEATURE_NAMES.len());

/// Standardised distance under [`DISTANCE_WEIGHTS`], normalised by the
/// total weight so the scale is schema-independent.
fn weighted_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut wsum = 0.0;
    let mut sum = 0.0;
    for ((x, y), w) in a.iter().zip(b).zip(&DISTANCE_WEIGHTS) {
        wsum += w;
        sum += w * (x - y) * (x - y);
    }
    (sum / wsum.max(1e-12)).sqrt()
}

impl DeviceModel {
    /// Number of stored training rows backing the nearest-neighbour
    /// fallback.
    pub fn training_rows(&self) -> usize {
        self.rows.len()
    }

    fn train(rows: &[&TrainRow], cfg: &TrainConfig) -> DeviceModel {
        let n = rows.len().max(1) as f64;
        let dim = FEATURE_NAMES.len();

        // Standardise features per device.
        let mut mean = vec![0.0; dim];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r.features.values()) {
                *m += v / n;
            }
        }
        let mut scale = vec![0.0; dim];
        for r in rows {
            for (s, (v, m)) in scale.iter_mut().zip(r.features.values().iter().zip(&mean)) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut scale {
            *s = s.sqrt();
            if *s < 1e-9 {
                *s = 1.0;
            }
        }

        let xs: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| standardise(r.features.values(), &mean, &scale))
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| r.np.ln().clamp(-LN_NP_CLAMP, LN_NP_CLAMP))
            .collect();

        // Deterministic full-batch ridge gradient descent.
        let mut bias = 0.0;
        let mut weights = vec![0.0; dim];
        for _ in 0..cfg.iterations {
            let mut gb = 0.0;
            let mut gw = vec![0.0; dim];
            for (x, y) in xs.iter().zip(&ys) {
                let pred = bias + dot(&weights, x);
                let err = pred - y;
                gb += err / n;
                for (g, xv) in gw.iter_mut().zip(x) {
                    *g += err * xv / n;
                }
            }
            bias -= cfg.learning_rate * gb;
            for (w, g) in weights.iter_mut().zip(&gw) {
                *w -= cfg.learning_rate * (g + cfg.l2 * *w);
            }
        }

        let stored = rows
            .iter()
            .map(|r| StoredRow {
                kernel: r.kernel.clone(),
                values: r.features.values().to_vec(),
                choice: r.choice,
                np: r.np,
            })
            .collect();
        DeviceModel {
            bias,
            weights,
            mean,
            scale,
            rows: stored,
        }
    }

    fn predict(&self, fv: &FeatureVector, threshold: f64) -> Option<Prediction> {
        if self.rows.is_empty() {
            return None;
        }
        let x = standardise(fv.values(), &self.mean, &self.scale);

        // Neighbour ranking in standardised space under the calibrated
        // distance metric. Ties in distance resolve by row order, which
        // is corpus order, which is deterministic.
        let mut ranked: Vec<(f64, &StoredRow)> = self
            .rows
            .iter()
            .map(|r| {
                let rx = standardise(&r.values, &self.mean, &self.scale);
                (weighted_distance(&rx, &x), r)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let (nearest_d, nearest) = (ranked[0].0, ranked[0].1);

        let hi = (1.0 + threshold).ln();
        let lo = (1.0 - threshold).ln();

        // Exact corpus match: *all* features equal (both sides are
        // 1e-6-quantised, so equality is well-defined) — the calibrated
        // distance deliberately ignores launch geometry, so it alone
        // cannot distinguish the same kernel at two sizes, and must not
        // decide exactness.
        if let Some(row) = self.rows.iter().find(|r| r.values == fv.values()) {
            let y = row.np.max(f64::MIN_POSITIVE).ln();
            return Some(Prediction {
                verdict: row.choice,
                np_est: row.np,
                confidence: EXACT_CONFIDENCE,
                margin: (y - hi).abs().min((y - lo).abs()),
                neighbor_kernel: row.kernel.clone(),
                neighbor_distance: 0.0,
                exact_match: true,
            });
        }

        // ln(np) estimate: inverse-square-distance interpolation over the
        // k nearest measured rows while the query sits inside the corpus
        // neighbourhood; the regularised linear model extrapolates beyond
        // it (where confidence is near zero anyway).
        let k = self.rows.len().min(KNN_K);
        let y = if nearest_d <= NEIGHBOR_RADIUS {
            let mut num = 0.0;
            let mut den = 0.0;
            for (d, r) in &ranked[..k] {
                let w = 1.0 / ((d + KNN_EPS) * (d + KNN_EPS));
                num += w * r.np.ln().clamp(-LN_NP_CLAMP, LN_NP_CLAMP);
                den += w;
            }
            num / den
        } else {
            self.bias + dot(&self.weights, &x)
        };
        let np_est = y.exp();
        let verdict = Verdict::from_np(np_est, threshold);

        // Confidence: band margin plus proximity-gated neighbour
        // agreement. The blend is calibrated against the leave-one-app-out
        // corpus (tests/loo.rs) so that every disagreement there scores
        // below the 0.7 serving threshold — wrong answers abstain.
        let margin = (y - hi).abs().min((y - lo).abs());
        let conf_margin = 1.0 - (-margin / MARGIN_SCALE).exp();
        let agree = ranked[..k]
            .iter()
            .filter(|(_, r)| r.choice == verdict)
            .count() as f64
            / k as f64;
        let proximity = (-nearest_d / PROXIMITY_SCALE).exp();
        let confidence =
            (MARGIN_WEIGHT * conf_margin + AGREE_WEIGHT * agree * proximity).clamp(0.0, 1.0);

        Some(Prediction {
            verdict,
            np_est,
            confidence,
            margin,
            neighbor_kernel: nearest.kernel.clone(),
            neighbor_distance: nearest_d,
            exact_match: false,
        })
    }

    fn to_json(&self) -> String {
        let nums = |vs: &[f64]| json::array(vs.iter().map(|v| json::number(*v)));
        let rows = json::array(self.rows.iter().map(|r| {
            Obj::new()
                .str("kernel", &r.kernel)
                .str("choice", r.choice.kind())
                .f64("np", r.np)
                .raw("features", &nums(&r.values))
                .finish()
        }));
        Obj::new()
            .f64("bias", self.bias)
            .raw("weights", &nums(&self.weights))
            .raw("mean", &nums(&self.mean))
            .raw("scale", &nums(&self.scale))
            .raw("rows", &rows)
            .finish()
    }

    fn from_json(v: &Json) -> Result<DeviceModel, ModelError> {
        let parse = |m: &str| ModelError::Parse(m.to_string());
        let nums = |key: &str| -> Result<Vec<f64>, ModelError> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| parse(&format!("device model missing `{key}` array")))?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| parse(&format!("`{key}` entries must be numbers")))
        };
        let bias = v
            .f64_of("bias")
            .ok_or_else(|| parse("device model missing bias"))?;
        let weights = nums("weights")?;
        let mean = nums("mean")?;
        let scale = nums("scale")?;
        let rows_json = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| parse("device model missing rows"))?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for r in rows_json {
            let kernel = r
                .str_of("kernel")
                .ok_or_else(|| parse("row missing kernel"))?;
            let choice = r
                .str_of("choice")
                .and_then(Verdict::parse)
                .ok_or_else(|| parse("row missing/invalid choice"))?;
            let np = r.f64_of("np").ok_or_else(|| parse("row missing np"))?;
            let values = r
                .get("features")
                .and_then(Json::as_arr)
                .ok_or_else(|| parse("row missing features"))?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| parse("row features must be numbers"))?;
            rows.push(StoredRow {
                kernel: kernel.to_string(),
                values,
                choice,
                np,
            });
        }
        Ok(DeviceModel {
            bias,
            weights,
            mean,
            scale,
            rows,
        })
    }
}

fn standardise(values: &[f64], mean: &[f64], scale: &[f64]) -> Vec<f64> {
    values
        .iter()
        .zip(mean.iter().zip(scale))
        .map(|(v, (m, s))| (v - m) / s)
        .collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

// ---------------------------------------------------------------------------
// Leave-one-out evaluation.
// ---------------------------------------------------------------------------

/// One leave-one-kernel-out prediction compared to its measured row.
#[derive(Clone, Debug)]
pub struct LooCase {
    /// Device the pair was measured on.
    pub device: String,
    /// Held-out kernel.
    pub kernel: String,
    /// What the model (trained without this kernel) predicted.
    pub predicted: Verdict,
    /// What the race measured.
    pub measured: Verdict,
    /// Model confidence for the held-out prediction.
    pub confidence: f64,
}

impl LooCase {
    /// Did the model agree with the measurement?
    pub fn agrees(&self) -> bool {
        self.predicted == self.measured
    }
}

/// Aggregate leave-one-kernel-out accuracy report.
#[derive(Clone, Debug, Default)]
pub struct LooReport {
    /// Every held-out case.
    pub cases: Vec<LooCase>,
}

impl LooReport {
    /// Fraction of cases where prediction matched measurement.
    pub fn accuracy(&self) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        self.cases.iter().filter(|c| c.agrees()).count() as f64 / self.cases.len() as f64
    }

    /// Highest confidence among disagreeing cases (serving is safe as
    /// long as `--predict-threshold` sits above this).
    pub fn max_wrong_confidence(&self) -> f64 {
        self.cases
            .iter()
            .filter(|c| !c.agrees())
            .map(|c| c.confidence)
            .fold(0.0, f64::max)
    }

    /// Per-device `(device, agreed, total)` rows for the accuracy table.
    pub fn by_device(&self) -> Vec<(String, usize, usize)> {
        let mut per: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for c in &self.cases {
            let e = per.entry(c.device.clone()).or_default();
            e.1 += 1;
            if c.agrees() {
                e.0 += 1;
            }
        }
        per.into_iter().map(|(d, (a, t))| (d, a, t)).collect()
    }
}

/// Leave-one-kernel-out evaluation: for each distinct kernel, train on
/// every row of every *other* kernel and predict the held-out rows.
/// Deterministic end to end.
pub fn evaluate_loo(rows: &[TrainRow], epoch: &str, cfg: &TrainConfig) -> LooReport {
    let mut kernels: Vec<&str> = rows.iter().map(|r| r.kernel.as_str()).collect();
    kernels.sort_unstable();
    kernels.dedup();

    let mut report = LooReport::default();
    for held in kernels {
        let train: Vec<TrainRow> = rows.iter().filter(|r| r.kernel != held).cloned().collect();
        let model = Model::train(&train, epoch, cfg);
        for r in rows.iter().filter(|r| r.kernel == held) {
            let Some(p) = model.predict(&r.device, &r.features) else {
                continue;
            };
            report.cases.push(LooCase {
                device: r.device.clone(),
                kernel: r.kernel.clone(),
                predicted: p.verdict,
                measured: r.choice,
                confidence: p.confidence,
            });
        }
    }
    report
}
