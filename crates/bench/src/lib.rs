//! # grover-bench
//!
//! Shared machinery for regenerating every table and figure of the Grover
//! paper's evaluation:
//!
//! * `cargo run -p grover-bench --release --bin table1` — Table I (apps & datasets)
//! * `cargo run -p grover-bench --release --bin table3` — Table III (symbolic nGL indices)
//! * `cargo run -p grover-bench --release --bin fig2`   — Fig. 2 (MT/MM on 6 devices)
//! * `cargo run -p grover-bench --release --bin fig10`  — Fig. 10 (11 apps on SNB/Nehalem/MIC)
//! * `cargo run -p grover-bench --release --bin table4` — Table IV (gain/loss distribution)
//! * `cargo run -p grover-bench --release --bin ablations` — extra studies (DESIGN.md §8)
//!
//! The scale is taken from `GROVER_SCALE` (`test` | `small` | `paper`,
//! default `small`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use grover_devsim::Device;
use grover_kernels::{all_apps, app_by_id, prepare_pair, run_prepared, App, Scale};

/// The normalized performance of one test case (paper §VI-B):
/// `np = t_with_lm / t_without_lm` — above 1 means disabling local memory
/// *improved* performance.
#[derive(Clone, Debug)]
pub struct NpResult {
    pub app: String,
    pub device: String,
    pub cycles_with: u64,
    pub cycles_without: u64,
    pub np: f64,
}

/// Classification at the paper's 5 % similarity threshold (Table IV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Verdict {
    Gain,
    Loss,
    Similar,
}

impl Verdict {
    pub fn of(np: f64, threshold: f64) -> Verdict {
        if np > 1.0 + threshold {
            Verdict::Gain
        } else if np < 1.0 - threshold {
            Verdict::Loss
        } else {
            Verdict::Similar
        }
    }
}

/// Minimal timing harness for the `[[bench]]` targets (`harness = false`),
/// replacing the former Criterion dependency so the workspace builds with
/// no external crates. Runs one warm-up, then `samples` timed iterations,
/// and prints the median.
pub fn time_case<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> std::time::Duration {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t = std::time::Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{name:<44} median {median:>12.3?}  ({} samples)",
        times.len()
    );
    median
}

/// Scale from `GROVER_SCALE` (default Small).
pub fn scale_from_env() -> Scale {
    match std::env::var("GROVER_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    }
}

/// Simulate one app on one device, both kernel versions, and compute np.
pub fn normalized_performance(app: &App, device: &str, scale: Scale) -> Result<NpResult, String> {
    let pair = prepare_pair(app, scale)?;

    let mut dev = Device::by_name(device).ok_or_else(|| format!("unknown device {device}"))?;
    run_prepared(&pair.original, (app.prepare)(scale), &mut dev)
        .map_err(|e| format!("{} original on {device}: {e}", app.id))?;
    let with_lm = dev.finish();

    let mut dev = Device::by_name(device).expect("checked");
    run_prepared(&pair.transformed, (app.prepare)(scale), &mut dev)
        .map_err(|e| format!("{} transformed on {device}: {e}", app.id))?;
    let without_lm = dev.finish();

    let np = with_lm.cycles as f64 / without_lm.cycles.max(1) as f64;
    Ok(NpResult {
        app: app.id.to_string(),
        device: device.to_string(),
        cycles_with: with_lm.cycles,
        cycles_without: without_lm.cycles,
        np,
    })
}

/// Run a set of `(app id, device)` cases in parallel with a scoped
/// `std::thread` worker pool (each case owns its context and device model,
/// so they are fully independent).
pub fn run_cases(cases: &[(String, String)], scale: Scale) -> Vec<Result<NpResult, String>> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<NpResult, String>)>> =
        Mutex::new(Vec::with_capacity(cases.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cases.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let (app_id, device) = &cases[i];
                let r = match app_by_id(app_id) {
                    Some(app) => normalized_performance(&app, device, scale),
                    None => Err(format!("unknown app {app_id}")),
                };
                results.lock().expect("poisoned").push((i, r));
            });
        }
    });
    let mut v = results.into_inner().expect("poisoned");
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// The Fig. 10 case matrix: all 11 apps × the 3 cache-only devices.
pub fn fig10_cases() -> Vec<(String, String)> {
    let mut cases = Vec::new();
    for dev in grover_devsim::CPU_DEVICES {
        for app in all_apps() {
            cases.push((app.id.to_string(), dev.to_string()));
        }
    }
    cases
}

/// The Fig. 2 case matrix: NVD-MT and NVD-MM-A (the paper's manual MM
/// experiment removes matrix A's tile and keeps B's) on all 6 devices.
pub fn fig2_cases() -> Vec<(String, String)> {
    let mut cases = Vec::new();
    for app in ["NVD-MT", "NVD-MM-A"] {
        for dev in grover_devsim::ALL_DEVICES {
            cases.push((app.to_string(), dev.to_string()));
        }
    }
    cases
}

/// A simple ASCII bar for np values (matches the figures' visual reading).
pub fn np_bar(np: f64) -> String {
    let width = (np * 20.0).round().clamp(0.0, 60.0) as usize;
    let mut s = String::with_capacity(width + 1);
    for i in 0..width {
        // mark the np = 1.0 reference line
        s.push(if i == 19 { '|' } else { '#' });
    }
    if width <= 19 {
        for _ in width..20 {
            s.push(' ');
        }
        s.push('|');
    }
    s
}

/// Paper-reported np values where the text/figures state them, used by the
/// regeneration binaries to print paper-vs-measured side by side.
/// (Figure 10 is a bar chart; only values called out in §VI-C are exact.)
pub fn paper_np(app: &str, device: &str) -> Option<f64> {
    match (app, device) {
        // §II-C / Fig. 2
        ("NVD-MT", "SNB") => Some(1.3),
        ("NVD-MT", "Nehalem") => Some(1.6),
        // §VI-C explicit numbers on SNB
        ("AMD-RG", "SNB") => Some(1.12),
        ("NVD-MM-A", "SNB") => Some(1.18),
        ("NVD-MM-AB", "SNB") => Some(1.07),
        ("PAB-ST", "SNB") => Some(1.16),
        ("AMD-MM", "SNB") => Some(0.56),
        ("NVD-MM-B", "SNB") => Some(0.81),
        ("NVD-NBody", "SNB") => Some(0.95),
        _ => None,
    }
}

/// Paper-direction expectations (win/lose/flat) for the qualitative check:
/// `Some(true)` = paper reports a gain, `Some(false)` = loss, `None` = no
/// clear claim / similar.
pub fn paper_direction(app: &str, device: &str) -> Option<bool> {
    match (app, device) {
        ("NVD-MT", "SNB" | "Nehalem") => Some(true),
        ("NVD-MT", "Fermi" | "Kepler" | "Tahiti") => Some(false),
        ("AMD-MM", "SNB" | "Nehalem") => Some(false),
        ("NVD-MM-B", "SNB") => Some(false),
        ("NVD-MM-A", "SNB") => Some(true),
        ("PAB-ST", "SNB") => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_thresholds() {
        assert_eq!(Verdict::of(1.10, 0.05), Verdict::Gain);
        assert_eq!(Verdict::of(0.90, 0.05), Verdict::Loss);
        assert_eq!(Verdict::of(1.03, 0.05), Verdict::Similar);
        assert_eq!(Verdict::of(0.96, 0.05), Verdict::Similar);
    }

    #[test]
    fn case_matrices() {
        assert_eq!(fig10_cases().len(), 33);
        assert_eq!(fig2_cases().len(), 12);
    }

    #[test]
    fn np_single_case_runs() {
        let app = app_by_id("NVD-MT").unwrap();
        let r = normalized_performance(&app, "SNB", Scale::Test).unwrap();
        assert!(r.cycles_with > 0);
        assert!(r.cycles_without > 0);
        assert!(r.np > 0.0);
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let cases = vec![
            ("NVD-MT".to_string(), "SNB".to_string()),
            ("ROD-SC".to_string(), "Nehalem".to_string()),
            ("AMD-SS".to_string(), "MIC".to_string()),
        ];
        let rs = run_cases(&cases, Scale::Test);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].as_ref().unwrap().app, "NVD-MT");
        assert_eq!(rs[1].as_ref().unwrap().app, "ROD-SC");
        assert_eq!(rs[2].as_ref().unwrap().app, "AMD-SS");
    }

    #[test]
    fn bar_renders() {
        assert!(np_bar(1.0).contains('|'));
        assert!(np_bar(2.0).len() >= 40);
    }
}
