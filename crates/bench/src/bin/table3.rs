//! Regenerate Table III: the symbolic GL/LS/LL data indices and the nGL
//! index Grover derives for each benchmark. Every row is produced by the
//! actual pass, not hard-coded.

use grover_bench::scale_from_env;
use grover_kernels::{all_apps, prepare_pair};

fn main() {
    let scale = scale_from_env();
    println!("TABLE III: Determining the data index of nGL (scale: {scale:?})");
    println!("{:=<100}", "");
    let mut ok = 0;
    let mut total = 0;
    for app in all_apps() {
        total += 1;
        println!("\n[{}] {}", app.id, app.description);
        match prepare_pair(&app, scale) {
            Ok(pair) => {
                ok += 1;
                for b in &pair.report.buffers {
                    if matches!(b.outcome, grover_core::BufferOutcome::Skipped) {
                        println!("  __local {}: kept (variant keeps this tile)", b.buffer);
                        continue;
                    }
                    println!("  __local {}:", b.buffer);
                    if let Some(gl) = &b.gl {
                        println!("    GL  : {gl}");
                    }
                    let ls: Vec<String> = b.ls_dims.iter().map(|a| a.to_string()).collect();
                    println!("    LS  : ({})", ls.join(", "));
                    for ((ll, sol), ngl) in b.ll_display.iter().zip(&b.solutions).zip(&b.ngl) {
                        println!("    LL  : ({ll})");
                        println!("    sol : {sol}");
                        println!("    nGL : {ngl}");
                    }
                }
            }
            Err(e) => println!("  FAILED: {e}"),
        }
    }
    println!("\n{:=<100}", "");
    println!("{ok}/{total} applications transformed successfully (paper: 11/11).");
}
