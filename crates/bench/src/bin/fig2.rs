//! Regenerate Fig. 2: the performance impact of removing local memory on
//! Matrix Transpose (MT) and Matrix Multiplication (MM) across all six
//! devices (Fermi, Kepler, Tahiti, SNB, Nehalem, MIC).
//!
//! The paper's MM experiment removes the local tile of matrix A while
//! keeping matrix B's — our NVD-MM-A variant.

use grover_bench::{fig2_cases, np_bar, paper_direction, run_cases, scale_from_env, Verdict};

fn main() {
    let scale = scale_from_env();
    println!("FIG. 2: normalized performance np = t_with_lm / t_without_lm (scale: {scale:?})");
    println!("np > 1: disabling local memory improved performance\n");
    let cases = fig2_cases();
    let results = run_cases(&cases, scale);
    let mut matched = 0;
    let mut claimed = 0;
    let mut cur_app = String::new();
    for r in results {
        match r {
            Ok(r) => {
                if r.app != cur_app {
                    cur_app = r.app.clone();
                    let label = if r.app == "NVD-MT" {
                        "MT"
                    } else {
                        "MM (A de-localised)"
                    };
                    println!("--- {label} ---");
                    println!(
                        "{:<9} {:>10} {:>14} {:>14}  0        1.0        2.0",
                        "device", "np", "cyc(with)", "cyc(without)"
                    );
                }
                let dir = paper_direction(&r.app, &r.device);
                let verdict = Verdict::of(r.np, 0.05);
                let mark = match dir {
                    Some(true) => {
                        claimed += 1;
                        if verdict == Verdict::Gain {
                            matched += 1;
                            " (paper: gain ✓)"
                        } else {
                            " (paper: gain ✗)"
                        }
                    }
                    Some(false) => {
                        claimed += 1;
                        if verdict == Verdict::Loss {
                            matched += 1;
                            " (paper: loss ✓)"
                        } else {
                            " (paper: loss ✗)"
                        }
                    }
                    None => "",
                };
                println!(
                    "{:<9} {:>10.3} {:>14} {:>14}  {}{}",
                    r.device,
                    r.np,
                    r.cycles_with,
                    r.cycles_without,
                    np_bar(r.np),
                    mark
                );
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
    println!("\npaper-direction agreement: {matched}/{claimed} cases with explicit claims");
}
