//! Regenerate Table I: the benchmark applications and their datasets.

use grover_bench::scale_from_env;
use grover_kernels::all_apps;

fn main() {
    let scale = scale_from_env();
    println!("TABLE I: Selected benchmarks (scale: {scale:?})");
    println!("{:-<88}", "");
    println!("{:<11} {:<44} {:<30}", "ID", "Application", "Dataset");
    println!("{:-<88}", "");
    for app in all_apps() {
        println!(
            "{:<11} {:<44} {:<30}",
            app.id,
            app.description,
            (app.dataset)(scale)
        );
    }
    println!("{:-<88}", "");
    println!("All applications use __local memory in their original versions.");
}
