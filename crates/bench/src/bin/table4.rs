//! Regenerate Table IV: gain/loss/similar distribution of the 33 test
//! cases at the 5 % similarity threshold.

use std::collections::BTreeMap;

use grover_bench::{fig10_cases, run_cases, scale_from_env, Verdict};
use grover_devsim::CPU_DEVICES;

fn main() {
    let scale = scale_from_env();
    println!("TABLE IV: performance gain/loss distribution (5% threshold, scale: {scale:?})\n");
    let cases = fig10_cases();
    let results = run_cases(&cases, scale);

    let mut counts: BTreeMap<(&str, Verdict), usize> = BTreeMap::new();
    let mut total = 0;
    for r in results.iter().flatten() {
        let v = Verdict::of(r.np, 0.05);
        let dev: &str = CPU_DEVICES
            .iter()
            .find(|d| **d == r.device)
            .copied()
            .unwrap_or("other");
        *counts.entry((dev, v)).or_insert(0) += 1;
        total += 1;
    }

    println!("{:<9} {:>6} {:>6} {:>8}", "", "Gain", "Loss", "Similar");
    let mut sums = [0usize; 3];
    for dev in CPU_DEVICES {
        let g = counts.get(&(dev, Verdict::Gain)).copied().unwrap_or(0);
        let l = counts.get(&(dev, Verdict::Loss)).copied().unwrap_or(0);
        let s = counts.get(&(dev, Verdict::Similar)).copied().unwrap_or(0);
        sums[0] += g;
        sums[1] += l;
        sums[2] += s;
        println!("{dev:<9} {g:>6} {l:>6} {s:>8}");
    }
    let pct = |n: usize| format!("{n} ({:.0}%)", 100.0 * n as f64 / total.max(1) as f64);
    println!(
        "{:<9} {:>6} {:>6} {:>8}   measured: {} / {} / {}",
        "Total",
        sums[0],
        sums[1],
        sums[2],
        pct(sums[0]),
        pct(sums[1]),
        pct(sums[2]),
    );
    println!("\npaper Table IV: Gain 12 (36%) — Loss 9 (27%) — Similar 12 (36%)");
    println!("paper conclusion: more than a third of the 33 cases improve when");
    println!("local memory is disabled; the distribution is device-dependent.");
}
