//! EXTENSION (paper §VIII future work): "In the near future, we will
//! further investigate Grover's impact on other types of devices (e.g.,
//! GPUs)." — the full 11-application matrix on the three GPU models,
//! complementing Fig. 10's CPU-only evaluation.

use grover_bench::{np_bar, run_cases, scale_from_env, Verdict};
use grover_kernels::all_apps;

fn main() {
    let scale = scale_from_env();
    println!(
        "EXTENSION: normalized performance of all 11 apps on the GPU models (scale: {scale:?})"
    );
    println!("np > 1: disabling local memory improved performance\n");
    let mut cases = Vec::new();
    for dev in ["Fermi", "Kepler", "Tahiti"] {
        for app in all_apps() {
            cases.push((app.id.to_string(), dev.to_string()));
        }
    }
    let results = run_cases(&cases, scale);
    let mut cur_dev = String::new();
    let mut tallies = [0usize; 3]; // gain/loss/similar
    for r in &results {
        match r {
            Ok(r) => {
                if r.device != cur_dev {
                    cur_dev = r.device.clone();
                    println!("--- {} ---", r.device);
                    println!("{:<11} {:>8}  0        1.0        2.0", "app", "np");
                }
                match Verdict::of(r.np, 0.05) {
                    Verdict::Gain => tallies[0] += 1,
                    Verdict::Loss => tallies[1] += 1,
                    Verdict::Similar => tallies[2] += 1,
                }
                println!("{:<11} {:>8.3}  {}", r.app, r.np, np_bar(r.np));
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
    println!(
        "\nGPU totals: {} gains / {} losses / {} similar of {} cases",
        tallies[0],
        tallies[1],
        tallies[2],
        tallies.iter().sum::<usize>()
    );
    println!("Expected shape: losses dominate — staging exists to serve GPUs, so");
    println!("reversing it mostly hurts there; the exceptions are kernels whose");
    println!("global access stays coalesced without the tile.");
}
