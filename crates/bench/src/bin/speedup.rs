//! Wall-clock speedup of the parallel work-group engine: runs three
//! benchmark kernels serially and with `ExecPolicy::Parallel`, and emits
//! the timings as JSON on stdout.
//!
//! ```text
//! cargo run -p grover-bench --release --bin speedup [-- --threads N]
//! ```
//!
//! `--threads 0` (the default) uses one worker per available CPU. The
//! scale comes from `GROVER_SCALE` (`test` | `small` | `paper`).

use std::time::{Duration, Instant};

use grover_bench::scale_from_env;
use grover_kernels::{app_by_id, prepare_pair, Scale};
use grover_obs::json::{array, Obj};
use grover_runtime::{enqueue_with_policy, ExecPolicy, Limits, NullSink};

/// Apps whose launches are large enough to amortise thread start-up.
const APPS: [&str; 3] = ["NVD-MT", "NVD-MM-AB", "NVD-NBody"];
const SAMPLES: usize = 5;

fn median_time(
    kernel: &grover_ir::Function,
    app: &grover_kernels::App,
    scale: Scale,
    policy: ExecPolicy,
) -> Duration {
    let mut times = Vec::with_capacity(SAMPLES);
    for i in 0..=SAMPLES {
        // Workload creation (input generation, reference run) stays
        // outside the timed region.
        let mut prepared = (app.prepare)(scale);
        let t = Instant::now();
        enqueue_with_policy(
            &mut prepared.ctx,
            kernel,
            &prepared.args,
            &prepared.nd,
            &mut NullSink,
            &Limits::default(),
            policy,
        )
        .expect("launch failed");
        if i > 0 {
            // First iteration is warm-up.
            times.push(t.elapsed());
        }
    }
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("error: --threads needs an integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("usage: speedup [--threads N]");
                std::process::exit(2);
            }
        }
    }
    let scale = scale_from_env();
    let parallel = ExecPolicy::Parallel { threads };
    let workers = parallel.worker_count();

    let mut rows = Vec::new();
    for id in APPS {
        let app = app_by_id(id).expect("bundled app");
        let pair = prepare_pair(&app, scale).expect("prepare failed");
        let serial = median_time(&pair.original, &app, scale, ExecPolicy::Serial);
        let par = median_time(&pair.original, &app, scale, parallel);
        let speedup = serial.as_secs_f64() / par.as_secs_f64().max(1e-12);
        eprintln!(
            "{id:<10} serial {serial:>10.3?}  parallel({workers}) {par:>10.3?}  speedup {speedup:.2}x"
        );
        rows.push(
            Obj::new()
                .str("app", id)
                .raw("serial_ms", &format!("{:.3}", serial.as_secs_f64() * 1e3))
                .raw("parallel_ms", &format!("{:.3}", par.as_secs_f64() * 1e3))
                .raw("speedup", &format!("{speedup:.3}"))
                .finish(),
        );
    }

    let report = Obj::new()
        .str("scale", &format!("{scale:?}"))
        .u64("threads", workers as u64)
        .u64(
            "available_parallelism",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as u64,
        )
        .u64("samples", SAMPLES as u64)
        .raw("kernels", &array(rows))
        .finish();
    println!("{report}");
}
