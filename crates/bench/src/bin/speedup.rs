//! Wall-clock speedups of the launch engine: runs benchmark kernels
//! serially on the tree-walking interpreter, serially on the compiled
//! register-bytecode backend, and with `ExecPolicy::Parallel`, and emits
//! median-of-N timings (with warm-up) as JSON on stdout.
//!
//! ```text
//! cargo run -p grover-bench --release --bin speedup [-- --threads N] [--samples N]
//! ```
//!
//! `--threads 0` (the default) uses one worker per available CPU. The
//! scale comes from `GROVER_SCALE` (`test` | `small` | `paper`).
//!
//! Per app the report carries `serial_ms` (interpreter), `parallel_ms`,
//! `bytecode_ms`, the parallel `speedup` (serial/parallel) and
//! `bytecode_speedup` — the interpreter/bytecode launch-throughput ratio
//! that gates the bytecode backend's performance claim.

use std::time::{Duration, Instant};

use grover_bench::scale_from_env;
use grover_kernels::{app_by_id, prepare_pair, Scale};
use grover_obs::json::{array, Obj};
use grover_runtime::{enqueue_with_backend, Backend, ExecPolicy, Limits, NullSink};

/// Apps whose launches are large enough to amortise thread start-up — and
/// interpreter-bound enough that dispatch overhead dominates.
const APPS: [&str; 3] = ["NVD-MT", "NVD-MM-AB", "NVD-NBody"];
const DEFAULT_SAMPLES: usize = 5;

fn median_time(
    kernel: &grover_ir::Function,
    app: &grover_kernels::App,
    scale: Scale,
    policy: ExecPolicy,
    backend: Backend,
    samples: usize,
) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for i in 0..=samples {
        // Workload creation (input generation, reference run) stays
        // outside the timed region.
        let mut prepared = (app.prepare)(scale);
        let t = Instant::now();
        enqueue_with_backend(
            &mut prepared.ctx,
            kernel,
            &prepared.args,
            &prepared.nd,
            &mut NullSink,
            &Limits::default(),
            policy,
            backend,
        )
        .expect("launch failed");
        if i > 0 {
            // First iteration is warm-up.
            times.push(t.elapsed());
        }
    }
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut samples = DEFAULT_SAMPLES;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("error: --threads needs an integer");
                    std::process::exit(2);
                }
            },
            "--samples" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => samples = n,
                _ => {
                    eprintln!("error: --samples needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unexpected argument `{other}`");
                eprintln!("usage: speedup [--threads N] [--samples N]");
                std::process::exit(2);
            }
        }
    }
    let scale = scale_from_env();
    let parallel = ExecPolicy::Parallel { threads };
    let workers = parallel.worker_count();

    let mut rows = Vec::new();
    for id in APPS {
        let app = app_by_id(id).expect("bundled app");
        let pair = prepare_pair(&app, scale).expect("prepare failed");
        let time =
            |policy, backend| median_time(&pair.original, &app, scale, policy, backend, samples);
        let serial = time(ExecPolicy::Serial, Backend::Interp);
        let par = time(parallel, Backend::Interp);
        let bytecode = time(ExecPolicy::Serial, Backend::Bytecode);
        let speedup = serial.as_secs_f64() / par.as_secs_f64().max(1e-12);
        let bc_speedup = serial.as_secs_f64() / bytecode.as_secs_f64().max(1e-12);
        eprintln!(
            "{id:<10} serial {serial:>10.3?}  parallel({workers}) {par:>10.3?}  speedup {speedup:.2}x  \
             bytecode {bytecode:>10.3?}  bytecode-speedup {bc_speedup:.2}x"
        );
        rows.push(
            Obj::new()
                .str("app", id)
                .raw("serial_ms", &format!("{:.3}", serial.as_secs_f64() * 1e3))
                .raw("parallel_ms", &format!("{:.3}", par.as_secs_f64() * 1e3))
                .raw(
                    "bytecode_ms",
                    &format!("{:.3}", bytecode.as_secs_f64() * 1e3),
                )
                .raw("speedup", &format!("{speedup:.3}"))
                .raw("bytecode_speedup", &format!("{bc_speedup:.3}"))
                .finish(),
        );
    }

    let report = Obj::new()
        .str("scale", &format!("{scale:?}"))
        .u64("threads", workers as u64)
        .u64(
            "available_parallelism",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as u64,
        )
        .u64("samples", samples as u64)
        .raw("kernels", &array(rows))
        .finish();
    println!("{report}");
}
