//! EXTENSION (paper §VIII future work): evaluate a trace-free analytic
//! model of local-memory benefit/loss against the trace-driven simulator.
//!
//! The expected outcome *is the paper's conclusion*: operation counts
//! predict the staging-overhead cases but cannot see data-layout effects
//! (set conflicts, line utilisation), so empirical auto-tuning remains the
//! reliable approach (§VI-C "the empirical exploration of Grover remains
//! the ideal approach").

use grover_bench::scale_from_env;
use grover_devsim::profiles::cpu_by_name;
use grover_devsim::{agreement, Agreement, AnalyticCpuModel, Device, OpCounts};
use grover_kernels::{all_apps, prepare_pair, run_prepared};
use grover_runtime::CountingSink;

fn main() {
    let scale = scale_from_env();
    let device = "SNB";
    let profile = cpu_by_name(device).unwrap();
    let model = AnalyticCpuModel::from_profile(&profile);
    println!(
        "MODEL CHECK: analytic (count-based) np vs simulated np on {device} (scale {scale:?})\n"
    );
    println!(
        "{:<11} {:>10} {:>10} {:>11}",
        "app", "model-np", "sim-np", "agreement"
    );
    let mut tallies = [0usize; 3];
    let mut abs_err = 0.0f64;
    let mut n = 0usize;
    for app in all_apps() {
        let pair = match prepare_pair(&app, scale) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<11} ERROR: {e}", app.id);
                continue;
            }
        };
        let count = |k| {
            let mut s = CountingSink::default();
            let r = run_prepared(k, (app.prepare)(scale), &mut s).unwrap();
            let _ = r;
            let items = (app.prepare)(scale).nd.items_per_group();
            OpCounts::from_counts(&s, items)
        };
        let with_lm = count(&pair.original);
        let without = count(&pair.transformed);
        let model_np = model.predict_np(&with_lm, &without);

        let sim = |k| {
            let mut d = Device::by_name(device).unwrap();
            run_prepared(k, (app.prepare)(scale), &mut d).unwrap();
            d.finish().cycles
        };
        let sim_np = sim(&pair.original) as f64 / sim(&pair.transformed).max(1) as f64;

        let a = agreement(model_np, sim_np, 0.05);
        let label = match a {
            Agreement::Exact => {
                tallies[0] += 1;
                "exact"
            }
            Agreement::Near => {
                tallies[1] += 1;
                "near"
            }
            Agreement::Opposite => {
                tallies[2] += 1;
                "OPPOSITE"
            }
        };
        abs_err += (model_np - sim_np).abs();
        n += 1;
        println!(
            "{:<11} {:>10.3} {:>10.3} {:>11}",
            app.id, model_np, sim_np, label
        );
    }
    println!(
        "\nverdict agreement: {} exact, {} near, {} opposite; mean |error| = {:.3}",
        tallies[0],
        tallies[1],
        tallies[2],
        abs_err / n.max(1) as f64
    );
    println!("Count-based models miss layout effects — the cases they get wrong are");
    println!("exactly the cache-conflict ones, supporting the paper's case for");
    println!("empirical auto-tuning over modelling.");
}
