//! Regenerate Fig. 10 (a/b/c): normalized performance of all 11
//! applications on SNB, Nehalem and MIC after Grover disables local memory.

use grover_bench::{fig10_cases, np_bar, paper_np, run_cases, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("FIG. 10: normalized performance np = t_with_lm / t_without_lm (scale: {scale:?})");
    println!("np > 1: disabling local memory improved performance\n");
    let cases = fig10_cases();
    let results = run_cases(&cases, scale);
    let mut cur_dev = String::new();
    for r in &results {
        match r {
            Ok(r) => {
                if r.device != cur_dev {
                    cur_dev = r.device.clone();
                    println!("--- Fig. 10 on {} ---", r.device);
                    println!(
                        "{:<11} {:>8} {:>9}  0        1.0        2.0",
                        "app", "np", "paper-np"
                    );
                }
                let pnp = paper_np(&r.app, &r.device)
                    .map(|v| format!("{v:>9.2}"))
                    .unwrap_or_else(|| format!("{:>9}", "-"));
                println!("{:<11} {:>8.3} {}  {}", r.app, r.np, pnp, np_bar(r.np));
            }
            Err(e) => println!("ERROR: {e}"),
        }
    }
    // Cycle summary for EXPERIMENTS.md bookkeeping.
    println!("\nraw cycles (with_lm / without_lm):");
    for r in results.iter().flatten() {
        println!(
            "  {:<11} {:<9} {:>14} {:>14}",
            r.app, r.device, r.cycles_with, r.cycles_without
        );
    }
}
