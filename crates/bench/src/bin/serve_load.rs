//! Load generator for the `grover-serve` tuning-cache service: N client
//! threads hammer `POST /v1/tune` over a fixed set of distinct tune
//! keys and the tool reports throughput and cache hit-rate as JSON.
//!
//! ```text
//! cargo run -p grover-bench --release --bin serve_load -- \
//!     [--addr HOST:PORT] [--clients N] [--requests N] [--distinct K] [--workers N]
//! ```
//!
//! Without `--addr` an in-process server is started on a loopback port
//! with a throwaway cache directory (measuring the full TCP + HTTP path
//! regardless). The first `K` requests are issued serially to warm the
//! cache, so the expected hit rate is exactly `(requests - K) /
//! requests` — the CI smoke job asserts `hit_rate >= 0.9`. A non-zero
//! exit means some request failed.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use grover_obs::json::{self, Obj};
use grover_obs::NoopRecorder;
use grover_serve::{http_request, ServeConfig, Server};

/// The staging kernel every request tunes; distinct keys come from
/// distinct launch geometries.
const KERNEL: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn tune_body(global: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"SNB\", \"global\": [{global}], \"local\": [64]}}",
        json::escape(KERNEL)
    )
}

struct Tally {
    ok: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    /// Per-request wall-clock latencies (µs), for the percentile report.
    latencies_us: std::sync::Mutex<Vec<u64>>,
}

/// The `p`-th percentile (nearest-rank) of a sorted latency list, in ms.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1] as f64 / 1000.0
}

fn run_one(addr: SocketAddr, body: &str, tally: &Tally) {
    let start = Instant::now();
    run_one_inner(addr, body, tally);
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    tally
        .latencies_us
        .lock()
        .expect("latency tally poisoned")
        .push(us);
}

fn run_one_inner(addr: SocketAddr, body: &str, tally: &Tally) {
    match http_request(addr, "POST", "/v1/tune", Some(body)) {
        Ok((200, text)) => {
            tally.ok.fetch_add(1, Ordering::Relaxed);
            match json::parse(&text).ok().and_then(|v| v.bool_of("cached")) {
                Some(true) => tally.hits.fetch_add(1, Ordering::Relaxed),
                Some(false) => tally.misses.fetch_add(1, Ordering::Relaxed),
                None => tally.errors.fetch_add(1, Ordering::Relaxed),
            };
        }
        Ok((429, _)) => {
            // Backpressure is not a failure; retry once after yielding.
            std::thread::yield_now();
            match http_request(addr, "POST", "/v1/tune", Some(body)) {
                Ok((200, text)) => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    if json::parse(&text).ok().and_then(|v| v.bool_of("cached")) == Some(true) {
                        tally.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        tally.misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        _ => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut clients = 4usize;
    let mut requests = 200u64;
    let mut distinct = 4u64;
    let mut workers = 2usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2)
                })
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = Some(next("--addr")),
            "--clients" => clients = next("--clients").parse().expect("--clients: integer"),
            "--requests" => requests = next("--requests").parse().expect("--requests: integer"),
            "--distinct" => distinct = next("--distinct").parse().expect("--distinct: integer"),
            "--workers" => workers = next("--workers").parse().expect("--workers: integer"),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let distinct = distinct.max(1).min(requests.max(1));

    // An in-process server unless an external one was named.
    let (target, _local) = match &addr {
        Some(a) => (a.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            let dir =
                std::env::temp_dir().join(format!("grover-serve-load-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let server = Server::start(
                ServeConfig {
                    cache_dir: dir,
                    workers,
                    ..ServeConfig::default()
                },
                Arc::new(NoopRecorder),
            )
            .expect("in-process server starts");
            (server.addr(), Some(server))
        }
    };

    let bodies: Vec<Arc<String>> = (0..distinct)
        .map(|i| Arc::new(tune_body(64 * (i + 1))))
        .collect();
    let tally = Arc::new(Tally {
        ok: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        latencies_us: std::sync::Mutex::new(Vec::with_capacity(requests as usize)),
    });

    let start = Instant::now();
    // Serial warm-up: one miss per distinct key, deterministically.
    for body in &bodies {
        run_one(target, body, &tally);
    }
    let remaining = requests.saturating_sub(distinct);
    let per_client = remaining / clients as u64;
    let extra = remaining % clients as u64;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.clone();
            let tally = tally.clone();
            let n = per_client + u64::from((c as u64) < extra);
            std::thread::spawn(move || {
                for i in 0..n {
                    let body = &bodies[((c as u64 + i) % bodies.len() as u64) as usize];
                    run_one(target, body, &tally);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    if let Some(server) = _local {
        server.shutdown();
    }

    let ok = tally.ok.load(Ordering::Relaxed);
    let hits = tally.hits.load(Ordering::Relaxed);
    let misses = tally.misses.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let hit_rate = if ok > 0 { hits as f64 / ok as f64 } else { 0.0 };
    let secs = elapsed.as_secs_f64();
    let mut sorted_us = tally
        .latencies_us
        .lock()
        .expect("latency tally poisoned")
        .clone();
    sorted_us.sort_unstable();
    println!(
        "{}",
        Obj::new()
            .u64("requests", requests)
            .u64("clients", clients as u64)
            .u64("distinct", distinct)
            .u64("ok", ok)
            .u64("hits", hits)
            .u64("misses", misses)
            .u64("errors", errors)
            .f64("hit_rate", hit_rate)
            .f64("elapsed_s", secs)
            .f64(
                "throughput_rps",
                if secs > 0.0 { ok as f64 / secs } else { 0.0 }
            )
            .f64("p50_ms", percentile_ms(&sorted_us, 50.0))
            .f64("p99_ms", percentile_ms(&sorted_us, 99.0))
            .finish()
    );
    if errors > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
