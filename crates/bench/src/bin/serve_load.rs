//! Load generator for the `grover-serve` tuning-cache service: N client
//! threads hammer `POST /v1/tune` over a fixed set of distinct tune
//! keys and the tool reports throughput, cache hit-rate and a latency
//! breakdown as JSON.
//!
//! ```text
//! cargo run -p grover-bench --release --bin serve_load -- \
//!     [--addr HOST:PORT] [--clients N] [--requests N] [--distinct K] [--workers N]
//! ```
//!
//! Without `--addr` an in-process server is started on a loopback port
//! with a throwaway cache directory (measuring the full TCP + HTTP path
//! regardless). The first `K` requests are issued serially to warm the
//! cache, so the expected hit rate is exactly `(requests - K) /
//! requests` — the CI smoke job asserts `hit_rate >= 0.9`. A non-zero
//! exit means some request failed.
//!
//! Every request carries its own minted `x-grover-trace-id`; the report
//! asserts the server echoed each id back (`trace_id_echoed`) and, by
//! joining the ids against `GET /debug/requests`, splits p50/p99
//! latency by the server's own disposition (`hit` / `miss` /
//! `coalesced`) instead of guessing from the client side. Requests that
//! aged out of the server's bounded request log are counted as
//! `unclassified`, never silently dropped.
//!
//! With `--predict` the tool instead measures the zero-launch serving
//! path: it races the staging kernel's geometries once in-process to
//! build a training corpus, trains a model, boots the server with
//! `--model`, and hammers `POST /v1/predict`. The report asserts
//! `grover_serve_launches_total` and `grover_serve_tune_races_total`
//! stayed flat across the run (a predict hit performs zero launches)
//! and reports the launch count the model saved versus measuring every
//! request.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use grover_obs::json::{self, Obj};
use grover_obs::NoopRecorder;
use grover_serve::{http_request, request_full, ClientConfig, ServeConfig, Server, TRACE_HEADER};

/// The staging kernel every request tunes; distinct keys come from
/// distinct launch geometries.
const KERNEL: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn tune_body(global: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"SNB\", \"global\": [{global}], \"local\": [64]}}",
        json::escape(KERNEL)
    )
}

/// Mint a process-unique 32-hex trace id (high half: pid, low half: a
/// monotonic sequence number) — valid input for `x-grover-trace-id`.
fn next_trace() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}{seq:016x}", u64::from(std::process::id()) + 1)
}

struct Tally {
    ok: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    /// Responses whose echoed `x-grover-trace-id` did not match the id
    /// the client sent (should stay zero).
    echo_mismatches: AtomicU64,
    /// Per-request wall-clock latencies (µs) tagged with the trace id of
    /// the final attempt (`None` when no response came back).
    latencies_us: Mutex<Vec<(Option<String>, u64)>>,
}

/// The `p`-th percentile (nearest-rank) of a sorted latency list, in ms.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1] as f64 / 1000.0
}

/// `{count, p50_ms, p99_ms}` for one latency bucket.
fn bucket_json(mut us: Vec<u64>) -> String {
    us.sort_unstable();
    Obj::new()
        .u64("count", us.len() as u64)
        .f64("p50_ms", percentile_ms(&us, 50.0))
        .f64("p99_ms", percentile_ms(&us, 99.0))
        .finish()
}

fn run_one(addr: SocketAddr, body: &str, tally: &Tally) {
    let start = Instant::now();
    let trace = run_one_inner(addr, body, tally);
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    tally
        .latencies_us
        .lock()
        .expect("latency tally poisoned")
        .push((trace, us));
}

/// One traced POST to `/v1/tune`: returns `(status, body, trace_id)` and
/// counts an echo mismatch if the server failed to echo the id back.
fn tune_once(addr: SocketAddr, body: &str, tally: &Tally) -> Option<(u16, String, String)> {
    let trace = next_trace();
    let (status, headers, text) = request_full(
        addr,
        "POST",
        "/v1/tune",
        Some(body),
        &[(TRACE_HEADER, &trace)],
        &ClientConfig::default(),
    )
    .ok()?;
    if !headers
        .iter()
        .any(|(n, v)| n == TRACE_HEADER && *v == trace)
    {
        tally.echo_mismatches.fetch_add(1, Ordering::Relaxed);
    }
    Some((status, text, trace))
}

/// Issue one tune (retrying once through backpressure) and return the
/// trace id of the attempt whose response settled the request.
fn run_one_inner(addr: SocketAddr, body: &str, tally: &Tally) -> Option<String> {
    match tune_once(addr, body, tally) {
        Some((200, text, trace)) => {
            tally.ok.fetch_add(1, Ordering::Relaxed);
            match json::parse(&text).ok().and_then(|v| v.bool_of("cached")) {
                Some(true) => tally.hits.fetch_add(1, Ordering::Relaxed),
                Some(false) => tally.misses.fetch_add(1, Ordering::Relaxed),
                None => tally.errors.fetch_add(1, Ordering::Relaxed),
            };
            Some(trace)
        }
        Some((429, _, _)) => {
            // Backpressure is not a failure; retry once after yielding.
            std::thread::yield_now();
            match tune_once(addr, body, tally) {
                Some((200, text, trace)) => {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                    if json::parse(&text).ok().and_then(|v| v.bool_of("cached")) == Some(true) {
                        tally.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        tally.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(trace)
                }
                other => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    other.map(|(_, _, trace)| trace)
                }
            }
        }
        other => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
            other.map(|(_, _, trace)| trace)
        }
    }
}

/// `GET /debug/requests` → map from trace id to the server's disposition
/// for that request. Empty on any failure (the split then reports
/// everything as unclassified rather than dying).
fn fetch_dispositions(addr: SocketAddr) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let Ok((200, text)) = http_request(addr, "GET", "/debug/requests", None) else {
        return out;
    };
    let Ok(parsed) = json::parse(&text) else {
        return out;
    };
    let Some(entries) = parsed.get("requests").and_then(|v| v.as_arr()) else {
        return out;
    };
    for e in entries {
        if let (Some(trace), Some(disp)) = (e.str_of("trace_id"), e.str_of("disposition")) {
            out.insert(trace.to_string(), disp.to_string());
        }
    }
    out
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut clients = 4usize;
    let mut requests = 200u64;
    let mut distinct = 4u64;
    let mut workers = 2usize;
    let mut predict = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2)
                })
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = Some(next("--addr")),
            "--clients" => clients = next("--clients").parse().expect("--clients: integer"),
            "--requests" => requests = next("--requests").parse().expect("--requests: integer"),
            "--distinct" => distinct = next("--distinct").parse().expect("--distinct: integer"),
            "--workers" => workers = next("--workers").parse().expect("--workers: integer"),
            "--predict" => predict = true,
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let distinct = distinct.max(1).min(requests.max(1));
    if predict {
        return run_predict_mode(clients, requests, distinct, workers);
    }

    // An in-process server unless an external one was named. The flight
    // capacity is sized to the campaign so the disposition join below
    // sees every request.
    let (target, _local) = match &addr {
        Some(a) => (a.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            let dir =
                std::env::temp_dir().join(format!("grover-serve-load-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let server = Server::start(
                ServeConfig {
                    cache_dir: dir,
                    workers,
                    flight_capacity: (requests as usize * 2).max(512),
                    ..ServeConfig::default()
                },
                Arc::new(NoopRecorder),
            )
            .expect("in-process server starts");
            (server.addr(), Some(server))
        }
    };

    let bodies: Vec<Arc<String>> = (0..distinct)
        .map(|i| Arc::new(tune_body(64 * (i + 1))))
        .collect();
    let tally = Arc::new(Tally {
        ok: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        echo_mismatches: AtomicU64::new(0),
        latencies_us: Mutex::new(Vec::with_capacity(requests as usize)),
    });

    let start = Instant::now();
    // Serial warm-up: one miss per distinct key, deterministically.
    for body in &bodies {
        run_one(target, body, &tally);
    }
    let remaining = requests.saturating_sub(distinct);
    let per_client = remaining / clients as u64;
    let extra = remaining % clients as u64;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.clone();
            let tally = tally.clone();
            let n = per_client + u64::from((c as u64) < extra);
            std::thread::spawn(move || {
                for i in 0..n {
                    let body = &bodies[((c as u64 + i) % bodies.len() as u64) as usize];
                    run_one(target, body, &tally);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    // Join client-side latencies against the server's own view of each
    // request before shutting it down.
    let dispositions = fetch_dispositions(target);

    if let Some(server) = _local {
        server.shutdown();
    }

    let ok = tally.ok.load(Ordering::Relaxed);
    let hits = tally.hits.load(Ordering::Relaxed);
    let misses = tally.misses.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let echo_mismatches = tally.echo_mismatches.load(Ordering::Relaxed);
    let hit_rate = if ok > 0 { hits as f64 / ok as f64 } else { 0.0 };
    let secs = elapsed.as_secs_f64();
    let tagged = tally
        .latencies_us
        .lock()
        .expect("latency tally poisoned")
        .clone();
    let mut sorted_us: Vec<u64> = tagged.iter().map(|(_, us)| *us).collect();
    sorted_us.sort_unstable();

    let mut split: HashMap<&str, Vec<u64>> = HashMap::new();
    let mut unclassified = 0u64;
    for (trace, us) in &tagged {
        match trace.as_deref().and_then(|t| dispositions.get(t)) {
            Some(d) => split.entry(match d.as_str() {
                "hit" => "hit",
                "miss" => "miss",
                "coalesced" => "coalesced",
                _ => "other",
            }),
            None => {
                unclassified += 1;
                continue;
            }
        }
        .or_default()
        .push(*us);
    }
    let by_disposition = Obj::new()
        .raw("hit", &bucket_json(split.remove("hit").unwrap_or_default()))
        .raw(
            "miss",
            &bucket_json(split.remove("miss").unwrap_or_default()),
        )
        .raw(
            "coalesced",
            &bucket_json(split.remove("coalesced").unwrap_or_default()),
        )
        .raw(
            "other",
            &bucket_json(split.remove("other").unwrap_or_default()),
        )
        .u64("unclassified", unclassified)
        .finish();

    println!(
        "{}",
        Obj::new()
            .u64("requests", requests)
            .u64("clients", clients as u64)
            .u64("distinct", distinct)
            .u64("ok", ok)
            .u64("hits", hits)
            .u64("misses", misses)
            .u64("errors", errors)
            .f64("hit_rate", hit_rate)
            .bool("trace_id_echoed", echo_mismatches == 0)
            .u64("echo_mismatches", echo_mismatches)
            .f64("elapsed_s", secs)
            .f64(
                "throughput_rps",
                if secs > 0.0 { ok as f64 / secs } else { 0.0 }
            )
            .f64("p50_ms", percentile_ms(&sorted_us, 50.0))
            .f64("p99_ms", percentile_ms(&sorted_us, 99.0))
            .raw("by_disposition", &by_disposition)
            .finish()
    );
    if errors > 0 || echo_mismatches > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Scrape one counter from `GET /metrics` (the `name value` line of the
/// Prometheus-style text format). `u64::MAX` on any failure so a broken
/// scrape can never satisfy a flatness assertion by accident.
fn metric_value(addr: SocketAddr, name: &str) -> u64 {
    let Ok((200, text)) = http_request(addr, "GET", "/metrics", None) else {
        return u64::MAX;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            let rest = rest.trim_start();
            if rest.len() < line.len() - name.len() {
                if let Ok(v) = rest.trim().parse::<f64>() {
                    return v as u64;
                }
            }
        }
    }
    u64::MAX
}

/// One traced POST to `/v1/predict`; counts hit (`predicted: true`) vs
/// abstain into the tally's hit/miss slots.
fn predict_once(addr: SocketAddr, body: &str, tally: &Tally) {
    let trace = next_trace();
    let resp = request_full(
        addr,
        "POST",
        "/v1/predict",
        Some(body),
        &[(TRACE_HEADER, &trace)],
        &ClientConfig::default(),
    );
    match resp {
        Ok((200, headers, text)) => {
            if !headers
                .iter()
                .any(|(n, v)| n == TRACE_HEADER && *v == trace)
            {
                tally.echo_mismatches.fetch_add(1, Ordering::Relaxed);
            }
            tally.ok.fetch_add(1, Ordering::Relaxed);
            match json::parse(&text).ok().and_then(|v| v.bool_of("predicted")) {
                Some(true) => tally.hits.fetch_add(1, Ordering::Relaxed),
                Some(false) => tally.misses.fetch_add(1, Ordering::Relaxed),
                None => tally.errors.fetch_add(1, Ordering::Relaxed),
            };
        }
        _ => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The `--predict` scenario: corpus → train → serve with the model →
/// hammer `/v1/predict` → assert the launch counters never moved.
fn run_predict_mode(clients: usize, requests: u64, distinct: u64, workers: usize) -> ExitCode {
    use grover_frontend::{compile, BuildOptions};
    use grover_predict::{CorpusRow, FeatureVector, Model, TrainConfig, Verdict};
    use grover_runtime::{ArgValue, Context, NdRange};
    use grover_tuner::{Tuner, Workload};

    let module = compile(KERNEL, &BuildOptions::new()).expect("staging kernel compiles");
    let kernel = module.kernels.first().expect("one kernel").clone();
    let epoch = grover_core::pass_fingerprint();

    // Phase 1 — corpus: race each distinct geometry once, in-process.
    // These are the only launches of the whole scenario; their count is
    // also the per-decision price a measured tune would pay, which is
    // what every later predict hit saves.
    let mut rows = Vec::new();
    let mut corpus_launches = 0u64;
    let mut corpus_races = 0u64;
    for i in 0..distinct {
        let g = 64 * (i + 1);
        let workload = Workload::new(move || {
            let mut ctx = Context::new();
            let len = (g as usize) * 2 + 64;
            let input: Vec<f32> = (0..len).map(|j| ((j * 13 + 7) % 61) as f32).collect();
            let a = ctx.buffer_f32(&input);
            let b = ctx.buffer_f32(&vec![0.0; len]);
            (
                ctx,
                vec![ArgValue::Buffer(a), ArgValue::Buffer(b)],
                NdRange::d3([g, 1, 1], [64, 1, 1]),
            )
        });
        let mut tuner = Tuner::new();
        let d = tuner
            .tune(&kernel, "SNB", &workload)
            .expect("corpus race succeeds");
        corpus_launches += tuner.launches_run();
        corpus_races += tuner.races_run();
        rows.push(CorpusRow {
            app: format!("stage-{g}"),
            kernel: kernel.name.clone(),
            device: "SNB".to_string(),
            choice: Verdict::parse(d.choice.kind()).expect("choice tags coincide"),
            np: d.np,
            cycles_with: d.cycles_with,
            cycles_without: d.cycles_without,
            features: FeatureVector::extract(&kernel, [g, 1, 1], [64, 1, 1]),
        });
    }

    // Phase 2 — train and persist the model next to the throwaway cache.
    let train: Vec<_> = rows.iter().map(CorpusRow::to_train_row).collect();
    let model = Model::train(&train, &epoch, &TrainConfig::default());
    let dir = std::env::temp_dir().join(format!("grover-serve-predict-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("cache dir");
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, model.to_json() + "\n").expect("model written");

    // Phase 3 — the server, armed with the model. The 0.9 threshold sits
    // below the exact-match confidence, so every request (its features
    // match a training row bit-for-bit) must hit.
    let server = Server::start(
        ServeConfig {
            cache_dir: dir,
            workers,
            flight_capacity: (requests as usize * 2).max(512),
            model_path: Some(model_path),
            predict_threshold: 0.9,
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .expect("in-process server starts");
    let target = server.addr();
    let launches_before = metric_value(target, "grover_serve_launches_total");
    let races_before = metric_value(target, "grover_serve_tune_races_total");

    // Phase 4 — hammer `/v1/predict`.
    let bodies: Vec<Arc<String>> = (0..distinct)
        .map(|i| Arc::new(tune_body(64 * (i + 1))))
        .collect();
    let tally = Arc::new(Tally {
        ok: AtomicU64::new(0),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        echo_mismatches: AtomicU64::new(0),
        latencies_us: Mutex::new(Vec::with_capacity(requests as usize)),
    });
    let start = Instant::now();
    let per_client = requests / clients as u64;
    let extra = requests % clients as u64;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.clone();
            let tally = tally.clone();
            let n = per_client + u64::from((c as u64) < extra);
            std::thread::spawn(move || {
                for i in 0..n {
                    let body = &bodies[((c as u64 + i) % bodies.len() as u64) as usize];
                    predict_once(target, body, &tally);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();

    // Phase 5 — the zero-launch proof: both counters flat.
    let launches_after = metric_value(target, "grover_serve_launches_total");
    let races_after = metric_value(target, "grover_serve_tune_races_total");
    let hits_metric = metric_value(target, "grover_serve_predict_hits_total");
    server.shutdown();

    let ok = tally.ok.load(Ordering::Relaxed);
    let hits = tally.hits.load(Ordering::Relaxed);
    let abstains = tally.misses.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let echo_mismatches = tally.echo_mismatches.load(Ordering::Relaxed);
    let launches_flat = launches_before != u64::MAX && launches_after == launches_before;
    let races_flat = races_before != u64::MAX && races_after == races_before;
    // What one measured decision costs, amortised over the corpus build —
    // and therefore what each predict hit saved.
    let launches_per_decision = corpus_launches / distinct.max(1);
    let secs = elapsed.as_secs_f64();
    println!(
        "{}",
        Obj::new()
            .str("mode", "predict")
            .u64("requests", requests)
            .u64("clients", clients as u64)
            .u64("distinct", distinct)
            .u64("ok", ok)
            .u64("predict_hits", hits)
            .u64("predict_abstains", abstains)
            .u64("errors", errors)
            .bool("trace_id_echoed", echo_mismatches == 0)
            .u64("corpus_races", corpus_races)
            .u64("corpus_launches", corpus_launches)
            .u64("launches_before", launches_before)
            .u64("launches_after", launches_after)
            .bool("launches_flat", launches_flat)
            .u64("tune_races_before", races_before)
            .u64("tune_races_after", races_after)
            .bool("tune_races_flat", races_flat)
            .u64("predict_hits_metric", hits_metric)
            .u64("launches_saved", hits * launches_per_decision)
            .f64("elapsed_s", secs)
            .f64(
                "throughput_rps",
                if secs > 0.0 { ok as f64 / secs } else { 0.0 }
            )
            .finish()
    );
    let all_hit = ok == requests && hits == ok;
    if errors > 0 || echo_mismatches > 0 || !launches_flat || !races_flat || !all_hit {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
