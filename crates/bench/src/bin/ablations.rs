//! Ablation studies beyond the paper (DESIGN.md §8):
//!
//! 1. **Barrier elision** — rerun NVD-MT with local memory removed but the
//!    barrier kept, separating the locality win from the work-item-switch
//!    win on CPUs.
//! 2. **Cache-size sweep** — shrink/grow the SNB LLC to find where staging
//!    through local memory starts/stops paying for AMD-MM.
//! 3. **Work-group-size sweep** — the paper holds WG size fixed (§V-B,
//!    citing reference \[18\] that it matters); we sweep it for NVD-MT on SNB.

use grover_core::{Grover, GroverOptions};
use grover_devsim::profiles::snb;
use grover_devsim::{CpuModel, Device, SimdCpuModel};
use grover_frontend::compile;
use grover_kernels::{app_by_id, prepare_pair, run_prepared, Scale};
use grover_runtime::NdRange;

fn main() {
    let scale = match std::env::var("GROVER_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("paper") => Scale::Paper,
        _ => Scale::Small,
    };
    barrier_elision(scale);
    cache_sweep(scale);
    wg_sweep(scale);
    runtime_model(scale);
}

/// Ablation 4: how much does the CPU runtime's execution style (scalar
/// work-item loop vs implicit SIMD vectorisation) change the verdicts?
fn runtime_model(scale: Scale) {
    println!("=== Ablation 4: scalar vs implicit-SIMD runtime model (SNB) ===");
    println!("{:<11} {:>12} {:>10}", "app", "np(scalar)", "np(simd)");
    for id in ["NVD-MT", "AMD-MM", "NVD-MM-A", "PAB-ST", "ROD-SC"] {
        let app = app_by_id(id).unwrap();
        let pair = match prepare_pair(&app, scale) {
            Ok(p) => p,
            Err(e) => {
                println!("{id:<11} error: {e}");
                continue;
            }
        };
        let scalar = |k| {
            let mut d = CpuModel::new(snb());
            run_prepared(k, (app.prepare)(scale), &mut d).unwrap();
            d.finish().cycles
        };
        let simd = |k| {
            let mut d = SimdCpuModel::new(snb());
            run_prepared(k, (app.prepare)(scale), &mut d).unwrap();
            d.finish().cycles
        };
        let np_scalar = scalar(&pair.original) as f64 / scalar(&pair.transformed) as f64;
        let np_simd = simd(&pair.original) as f64 / simd(&pair.transformed) as f64;
        println!("{id:<11} {np_scalar:>12.3} {np_simd:>10.3}");
    }
    println!("The default harness uses the scalar model; the SIMD model shifts");
    println!("magnitudes (vectorised compute dilutes staging overhead) but the");
    println!("gain/loss directions that drive Table IV are stable.\n");
}

fn sim_cycles(
    kernel: &grover_ir::Function,
    app: &grover_kernels::App,
    scale: Scale,
    dev: &str,
) -> u64 {
    let mut d = Device::by_name(dev).expect("device");
    run_prepared(kernel, (app.prepare)(scale), &mut d).expect("run");
    d.finish().cycles
}

fn barrier_elision(scale: Scale) {
    println!("=== Ablation 1: barrier elision (NVD-MT) ===");
    let app = app_by_id("NVD-MT").unwrap();
    let opts = (app.options)(scale);
    let module = compile(app.source, &opts).unwrap();
    let original = module.kernel(app.kernel).unwrap().clone();

    let mut no_lm = original.clone();
    Grover::new().run_on(&mut no_lm);

    let mut no_lm_keep_barrier = original.clone();
    Grover::with_options(GroverOptions {
        buffers: None,
        keep_barriers: true,
    })
    .run_on(&mut no_lm_keep_barrier);

    for dev in ["SNB", "Nehalem", "MIC"] {
        let with_lm = sim_cycles(&original, &app, scale, dev);
        let without = sim_cycles(&no_lm, &app, scale, dev);
        let without_kb = sim_cycles(&no_lm_keep_barrier, &app, scale, dev);
        let np_full = with_lm as f64 / without as f64;
        let np_kb = with_lm as f64 / without_kb as f64;
        println!(
            "{dev:<9} np(full removal) = {np_full:.3}   np(keep barrier) = {np_kb:.3}   \
             barrier share of the win: {:.0}%",
            100.0 * (np_full - np_kb).max(0.0) / (np_full - 1.0).max(1e-9)
        );
    }
    println!();
}

fn cache_sweep(scale: Scale) {
    println!("=== Ablation 2: SNB LLC size sweep (AMD-MM) ===");
    let app = app_by_id("AMD-MM").unwrap();
    let pair = prepare_pair(&app, scale).unwrap();
    println!("{:<10} {:>8}", "LLC", "np");
    for mb in [1u64, 2, 4, 8, 15, 30] {
        let mut prof = grover_devsim::profiles::snb();
        prof.llc.size_bytes = mb * 1024 * 1024;
        let mut d = CpuModel::new(prof.clone());
        run_prepared(&pair.original, (app.prepare)(scale), &mut d).unwrap();
        let with_lm = d.finish().cycles;
        let mut d = CpuModel::new(prof);
        run_prepared(&pair.transformed, (app.prepare)(scale), &mut d).unwrap();
        let without = d.finish().cycles;
        println!("{:>6} MiB {:>8.3}", mb, with_lm as f64 / without as f64);
    }
    println!();
}

fn wg_sweep(scale: Scale) {
    println!("=== Ablation 3: work-group size sweep (NVD-MT on SNB) ===");
    let app = app_by_id("NVD-MT").unwrap();
    println!("{:<8} {:>8}", "tile", "np");
    for tile in [4u64, 8, 16, 32] {
        let opts = grover_frontend::BuildOptions::new().define("S", tile);
        let module = match compile(app.source, &opts) {
            Ok(m) => m,
            Err(e) => {
                println!("{tile:<8} compile error: {e}");
                continue;
            }
        };
        let original = module.kernel(app.kernel).unwrap().clone();
        let mut transformed = original.clone();
        Grover::new().run_on(&mut transformed);
        // Re-prepare with a matching NDRange.
        let mut p = (app.prepare)(scale);
        let n = p.nd.global[0];
        if !n.is_multiple_of(tile) {
            println!("{tile:<8} skipped (does not divide {n})");
            continue;
        }
        p.nd = NdRange::d2(n, n, tile, tile);
        let mut p2 = (app.prepare)(scale);
        p2.nd = p.nd;

        let mut d = Device::by_name("SNB").unwrap();
        run_prepared(&original, p, &mut d).unwrap();
        let with_lm = d.finish().cycles;
        let mut d = Device::by_name("SNB").unwrap();
        run_prepared(&transformed, p2, &mut d).unwrap();
        let without = d.finish().cycles;
        println!("{tile:<8} {:>8.3}", with_lm as f64 / without as f64);
    }
}
