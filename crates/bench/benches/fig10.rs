//! Criterion bench backing Fig. 10: simulated execution of all 11
//! applications on the three cache-only devices, both kernel versions.
//! The figure (normalized simulated cycles) is printed by
//! `cargo run -p grover-bench --bin fig10`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grover_devsim::{Device, CPU_DEVICES};
use grover_kernels::{all_apps, prepare_pair, run_prepared, Scale};

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(800));
    for app in all_apps() {
        let pair = match prepare_pair(&app, Scale::Test) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        for dev in CPU_DEVICES {
            g.bench_with_input(
                BenchmarkId::new(format!("{}/with_lm", app.id), dev),
                &dev,
                |b, dev| {
                    b.iter(|| {
                        let mut d = Device::by_name(dev).unwrap();
                        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
                        std::hint::black_box(d.finish().cycles)
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{}/without_lm", app.id), dev),
                &dev,
                |b, dev| {
                    b.iter(|| {
                        let mut d = Device::by_name(dev).unwrap();
                        run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut d)
                            .unwrap();
                        std::hint::black_box(d.finish().cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
