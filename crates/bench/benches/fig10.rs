//! Bench backing Fig. 10: simulated execution of all 11 applications on
//! the three cache-only devices, both kernel versions. The figure
//! (normalized simulated cycles) is printed by
//! `cargo run -p grover-bench --bin fig10`.

use grover_bench::time_case;
use grover_devsim::{Device, CPU_DEVICES};
use grover_kernels::{all_apps, prepare_pair, run_prepared, Scale};

fn main() {
    for app in all_apps() {
        let pair = match prepare_pair(&app, Scale::Test) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        for dev in CPU_DEVICES {
            time_case(&format!("fig10/{}/with_lm/{dev}", app.id), 10, || {
                let mut d = Device::by_name(dev).unwrap();
                run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
                std::hint::black_box(d.finish().cycles)
            });
            time_case(&format!("fig10/{}/without_lm/{dev}", app.id), 10, || {
                let mut d = Device::by_name(dev).unwrap();
                run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut d).unwrap();
                std::hint::black_box(d.finish().cycles)
            });
        }
    }
}
