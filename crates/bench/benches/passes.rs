//! Criterion bench: throughput of the toolchain itself — front-end
//! compilation and the Grover pass — for every benchmark kernel.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use grover_core::Grover;
use grover_frontend::compile;
use grover_kernels::{all_apps, Scale};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend_compile");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for app in all_apps() {
        let opts = (app.options)(Scale::Small);
        g.bench_function(app.id, |b| {
            b.iter(|| compile(std::hint::black_box(app.source), &opts).unwrap())
        });
    }
    g.finish();
}

fn bench_grover_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("grover_pass");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for app in all_apps() {
        let opts = (app.options)(Scale::Small);
        let module = compile(app.source, &opts).unwrap();
        let kernel = module.kernel(app.kernel).unwrap().clone();
        let grover = match app.disable {
            Some(bufs) => Grover::for_buffers(bufs),
            None => Grover::new(),
        };
        g.bench_function(app.id, |b| {
            b.iter(|| {
                let mut k = kernel.clone();
                let report = grover.run_on(&mut k);
                std::hint::black_box(report.removed_count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_grover_pass);
criterion_main!(benches);
