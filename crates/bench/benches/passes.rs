//! Bench: throughput of the toolchain itself — front-end compilation and
//! the Grover pass — for every benchmark kernel.

use grover_bench::time_case;
use grover_core::Grover;
use grover_frontend::compile;
use grover_kernels::{all_apps, Scale};

fn main() {
    for app in all_apps() {
        let opts = (app.options)(Scale::Small);
        time_case(&format!("frontend_compile/{}", app.id), 20, || {
            compile(std::hint::black_box(app.source), &opts).unwrap()
        });
    }
    for app in all_apps() {
        let opts = (app.options)(Scale::Small);
        let module = compile(app.source, &opts).unwrap();
        let kernel = module.kernel(app.kernel).unwrap().clone();
        let grover = match app.disable {
            Some(bufs) => Grover::for_buffers(bufs),
            None => Grover::new(),
        };
        time_case(&format!("grover_pass/{}", app.id), 20, || {
            let mut k = kernel.clone();
            let report = grover.run_on(&mut k);
            std::hint::black_box(report.removed_count())
        });
    }
}
