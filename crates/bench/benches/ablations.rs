//! Criterion bench for the ablation studies (DESIGN.md §8): barrier-kept
//! variant and tile-size variants of NVD-MT on the SNB model.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grover_core::{Grover, GroverOptions};
use grover_devsim::Device;
use grover_frontend::compile;
use grover_kernels::{app_by_id, run_prepared, Scale};

fn bench_barrier_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_barrier");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(800));
    let app = app_by_id("NVD-MT").unwrap();
    let opts = (app.options)(Scale::Test);
    let module = compile(app.source, &opts).unwrap();
    let original = module.kernel(app.kernel).unwrap().clone();

    let mut full = original.clone();
    Grover::new().run_on(&mut full);
    let mut keep_barrier = original.clone();
    Grover::with_options(GroverOptions { buffers: None, keep_barriers: true })
        .run_on(&mut keep_barrier);

    for (name, kernel) in
        [("with_lm", &original), ("no_lm", &full), ("no_lm_keep_barrier", &keep_barrier)]
    {
        g.bench_with_input(BenchmarkId::new("NVD-MT/SNB", name), &kernel, |b, kernel| {
            b.iter(|| {
                let mut d = Device::by_name("SNB").unwrap();
                run_prepared(kernel, (app.prepare)(Scale::Test), &mut d).unwrap();
                std::hint::black_box(d.finish().cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_barrier_ablation);
criterion_main!(benches);
