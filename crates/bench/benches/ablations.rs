//! Bench for the ablation studies (DESIGN.md §8): barrier-kept variant and
//! tile-size variants of NVD-MT on the SNB model.

use grover_bench::time_case;
use grover_core::{Grover, GroverOptions};
use grover_devsim::Device;
use grover_frontend::compile;
use grover_kernels::{app_by_id, run_prepared, Scale};

fn main() {
    let app = app_by_id("NVD-MT").unwrap();
    let opts = (app.options)(Scale::Test);
    let module = compile(app.source, &opts).unwrap();
    let original = module.kernel(app.kernel).unwrap().clone();

    let mut full = original.clone();
    Grover::new().run_on(&mut full);
    let mut keep_barrier = original.clone();
    Grover::with_options(GroverOptions {
        buffers: None,
        keep_barriers: true,
    })
    .run_on(&mut keep_barrier);

    for (name, kernel) in [
        ("with_lm", &original),
        ("no_lm", &full),
        ("no_lm_keep_barrier", &keep_barrier),
    ] {
        time_case(&format!("ablation_barrier/NVD-MT/SNB/{name}"), 10, || {
            let mut d = Device::by_name("SNB").unwrap();
            run_prepared(kernel, (app.prepare)(Scale::Test), &mut d).unwrap();
            std::hint::black_box(d.finish().cycles)
        });
    }
}
