//! Criterion bench: raw interpreter throughput (IR instructions/second)
//! and trace-capture overhead — the substrate costs behind every
//! experiment in this repository.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grover_devsim::Device;
use grover_kernels::{app_by_id, prepare_pair, run_prepared, Scale};
use grover_runtime::{CountingSink, NullSink};

fn bench_interpreter(c: &mut Criterion) {
    let app = app_by_id("NVD-MM-AB").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    // Count instructions once for the throughput denominator.
    let mut counter = CountingSink::default();
    run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut counter).unwrap();
    let insts = counter.instructions;

    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(insts));

    g.bench_function("mm_no_trace", |b| {
        b.iter(|| {
            run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut NullSink).unwrap()
        })
    });
    g.bench_function("mm_counting_trace", |b| {
        b.iter(|| {
            let mut s = CountingSink::default();
            run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut s).unwrap()
        })
    });
    g.bench_function("mm_cache_sim_trace", |b| {
        b.iter(|| {
            let mut d = Device::by_name("SNB").unwrap();
            run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
            std::hint::black_box(d.finish().cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
