//! Bench: raw interpreter throughput (IR instructions/second) and
//! trace-capture overhead — the substrate costs behind every experiment in
//! this repository. `cargo bench -p grover-bench --bench interp`.

use grover_bench::time_case;
use grover_devsim::Device;
use grover_kernels::{app_by_id, prepare_pair, run_prepared, Scale};
use grover_runtime::{CountingSink, NullSink};

fn main() {
    let app = app_by_id("NVD-MM-AB").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    // Count instructions once for the throughput denominator.
    let mut counter = CountingSink::default();
    run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut counter).unwrap();
    let insts = counter.instructions;

    let med = time_case("interpreter/mm_no_trace", 10, || {
        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut NullSink).unwrap()
    });
    let per_sec = insts as f64 / med.as_secs_f64();
    println!("  ~{per_sec:.0} IR instructions/second");

    time_case("interpreter/mm_counting_trace", 10, || {
        let mut s = CountingSink::default();
        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut s).unwrap()
    });
    time_case("interpreter/mm_cache_sim_trace", 10, || {
        let mut d = Device::by_name("SNB").unwrap();
        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
        std::hint::black_box(d.finish().cycles)
    });
}
