//! Criterion bench backing Fig. 2: simulated execution of MT and MM
//! (A de-localised) on all six devices, both kernel versions. The measured
//! wall time is the simulator's; the figure itself (normalized simulated
//! cycles) is printed by `cargo run -p grover-bench --bin fig2`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grover_devsim::{Device, ALL_DEVICES};
use grover_kernels::{app_by_id, prepare_pair, run_prepared, Scale};

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(800));
    for app_id in ["NVD-MT", "NVD-MM-A"] {
        let app = app_by_id(app_id).unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        for dev in ALL_DEVICES {
            g.bench_with_input(
                BenchmarkId::new(format!("{app_id}/with_lm"), dev),
                &dev,
                |b, dev| {
                    b.iter(|| {
                        let mut d = Device::by_name(dev).unwrap();
                        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
                        std::hint::black_box(d.finish().cycles)
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{app_id}/without_lm"), dev),
                &dev,
                |b, dev| {
                    b.iter(|| {
                        let mut d = Device::by_name(dev).unwrap();
                        run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut d)
                            .unwrap();
                        std::hint::black_box(d.finish().cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
