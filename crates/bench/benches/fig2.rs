//! Bench backing Fig. 2: simulated execution of MT and MM (A de-localised)
//! on all six devices, both kernel versions. The measured wall time is the
//! simulator's; the figure itself (normalized simulated cycles) is printed
//! by `cargo run -p grover-bench --bin fig2`.

use grover_bench::time_case;
use grover_devsim::{Device, ALL_DEVICES};
use grover_kernels::{app_by_id, prepare_pair, run_prepared, Scale};

fn main() {
    for app_id in ["NVD-MT", "NVD-MM-A"] {
        let app = app_by_id(app_id).unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        for dev in ALL_DEVICES {
            time_case(&format!("fig2/{app_id}/with_lm/{dev}"), 10, || {
                let mut d = Device::by_name(dev).unwrap();
                run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut d).unwrap();
                std::hint::black_box(d.finish().cycles)
            });
            time_case(&format!("fig2/{app_id}/without_lm/{dev}"), 10, || {
                let mut d = Device::by_name(dev).unwrap();
                run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut d).unwrap();
                std::hint::black_box(d.finish().cycles)
            });
        }
    }
}
