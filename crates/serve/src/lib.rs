#![warn(missing_docs)]
//! # grover-serve
//!
//! A persistent tuning-cache service over the Grover pipeline: a
//! hand-rolled HTTP/1.1 server (std-only, like the rest of the
//! workspace) exposing the compile → transform → tune flow, with a
//! content-addressed decision cache that survives restarts.
//!
//! ## Endpoints
//!
//! | route                  | method | purpose                                         |
//! |------------------------|--------|-------------------------------------------------|
//! | `/v1/compile`          | POST   | OpenCL-C source → transformed IR + pass report  |
//! | `/v1/tune`             | POST   | source + device + launch → explainable decision |
//! | `/v1/predict`          | POST   | model answer with zero launches, or measured fallback |
//! | `/metrics`             | GET    | typed metrics registry (counters/gauges/histos) |
//! | `/healthz`             | GET    | liveness probe                                  |
//! | `/debug/flight`        | GET    | flight-recorder ring: recent spans/events JSONL |
//! | `/debug/requests`      | GET    | recent requests: trace id, status, disposition  |
//! | `/admin/shutdown`      | POST   | graceful shutdown (flushes cache and recorder)  |
//!
//! ## Cache identity
//!
//! Tune decisions are keyed by [`grover_core::tune_key`] — a stable
//! fingerprint of the *canonicalised* kernel source, kernel name, device
//! profile and launch geometry — and stamped with the pass-version epoch
//! ([`grover_core::pass_fingerprint`]). The epoch is checked when the
//! persistent store is replayed on boot, so bumping
//! [`grover_core::TRANSFORM_REVISION`] invalidates every stale decision
//! in lock-step with the golden snapshot tests.
//!
//! A cache hit is served without constructing a tuner: the
//! `grover_serve_tune_races_total` metric (fed from
//! [`grover_tuner::Tuner::races_run`]) makes "hits never re-measure" an
//! asserted invariant. Concurrent identical misses are coalesced through
//! a [`singleflight`] table — one leader races, followers share its
//! outcome — so that invariant extends to "N identical misses cost one
//! race".
//!
//! ## Fault tolerance
//!
//! The persistent store is a checksummed, length-prefixed [`journal`]:
//! replay classifies every line (intact / legacy / torn / corrupt)
//! instead of failing, so a SIGKILL mid-write costs at most the record
//! being written — never the warm start. Decisions are persisted
//! *before* they are acknowledged, and a [`breaker::CircuitBreaker`]
//! degrades tune misses to a conservative `degraded: true` answer while
//! the tuner is failing, instead of surfacing raw 500s.

pub mod breaker;
pub mod cache;
pub mod client;
pub mod flight;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod server;
pub mod singleflight;

pub use breaker::{Admit, CircuitBreaker};
pub use cache::{DecisionCache, DecisionRecord, DecisionStore, LoadStats};
pub use client::{
    http_request, request_full, request_with, ClientConfig, ClientError, FullResponse,
};
pub use flight::{FlightRecorder, FlightRing, RequestEntry, RequestLog};
pub use grover_runtime::Backend;
pub use metrics::Metrics;
pub use server::{ServeConfig, Server, TRACE_HEADER};
pub use singleflight::{FlightOutcome, Singleflight};
