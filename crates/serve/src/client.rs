//! A minimal blocking HTTP client for the service's own API — used by
//! the integration tests and the bench load generator so neither needs
//! an external HTTP library (or `curl`, which the CI smoke job uses to
//! prove interoperability from outside the workspace).
//!
//! Every phase — connect, write, read — is bounded by a timeout from
//! [`ClientConfig`], mapped to a typed [`ClientError`] instead of
//! hanging: a wedged or half-dead server costs a caller a bounded wait,
//! never a stuck thread.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-phase timeouts for one request.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (covers the whole response read).
    pub read_timeout: Duration,
    /// Socket write timeout (covers sending the request).
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a client request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connect did not complete within the connect timeout.
    ConnectTimedOut(SocketAddr, Duration),
    /// A read or write stalled past its timeout; `phase` is `"read"` or
    /// `"write"`.
    TimedOut {
        /// Which I/O phase stalled.
        phase: &'static str,
        /// The timeout that fired.
        after: Duration,
    },
    /// Any other socket failure.
    Io(std::io::Error),
    /// The server answered with bytes that are not an HTTP response.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::ConnectTimedOut(addr, after) => {
                write!(f, "connect to {addr} timed out after {after:?}")
            }
            ClientError::TimedOut { phase, after } => {
                write!(f, "{phase} timed out after {after:?}")
            }
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Malformed(head) => write!(f, "malformed response: {head}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Send one request with explicit timeouts and return `(status, body)`.
///
/// Opens a fresh connection per call — the server speaks
/// `Connection: close` only, and the load generator deliberately
/// measures that full path.
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    config: &ClientConfig,
) -> Result<(u16, String), ClientError> {
    request_full(addr, method, path, body, &[], config).map(|(status, _, body)| (status, body))
}

/// A full response: status, headers (lowercased names), body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// [`request_with`] plus request/response headers: sends the extra
/// `(name, value)` pairs and returns the response's headers (lowercased
/// names) alongside status and body. The tracing layer rides on this —
/// it is how a client propagates `x-grover-trace-id` in and reads the
/// echoed id back out.
pub fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
    config: &ClientConfig,
) -> Result<FullResponse, ClientError> {
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(|e| {
        if is_timeout(&e) {
            ClientError::ConnectTimedOut(addr, config.connect_timeout)
        } else {
            ClientError::Io(e)
        }
    })?;
    let mut stream = stream;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(ClientError::Io)?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(ClientError::Io)?;

    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let write_phase = |e: std::io::Error| {
        if is_timeout(&e) {
            ClientError::TimedOut {
                phase: "write",
                after: config.write_timeout,
            }
        } else {
            ClientError::Io(e)
        }
    };
    stream.write_all(head.as_bytes()).map_err(write_phase)?;
    stream.write_all(body.as_bytes()).map_err(write_phase)?;
    stream.flush().map_err(write_phase)?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| {
        if is_timeout(&e) {
            ClientError::TimedOut {
                phase: "read",
                after: config.read_timeout,
            }
        } else {
            ClientError::Io(e)
        }
    })?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("{text:.60}")))?;
    let (head, payload) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h.to_string(), b.to_string()),
        None => (text.into_owned(), String::new()),
    };
    let headers = head
        .split("\r\n")
        .skip(1)
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers, payload))
}

/// [`request_with`] under [`ClientConfig::default`], flattened to
/// `io::Result` for callers that predate the typed error.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    request_with(addr, method, path, body, &ClientConfig::default()).map_err(|e| match e {
        ClientError::Io(io) => io,
        ClientError::Malformed(m) => std::io::Error::new(std::io::ErrorKind::InvalidData, m),
        timeout => std::io::Error::new(std::io::ErrorKind::TimedOut, timeout.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_timeout_maps_to_a_typed_error_instead_of_hanging() {
        // A listener that accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });
        let config = ClientConfig {
            read_timeout: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let start = std::time::Instant::now();
        let err = request_with(addr, "GET", "/healthz", None, &config).unwrap_err();
        assert!(
            matches!(err, ClientError::TimedOut { phase: "read", .. }),
            "{err}"
        );
        assert!(start.elapsed() < Duration::from_secs(2), "must not hang");
        server.join().unwrap();
    }
}
