//! A minimal blocking HTTP client for the service's own API — used by
//! the integration tests and the bench load generator so neither needs
//! an external HTTP library (or `curl`, which the CI smoke job uses to
//! prove interoperability from outside the workspace).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Send one request and return `(status, body)`.
///
/// Opens a fresh connection per call — the server speaks
/// `Connection: close` only, and the load generator deliberately
/// measures that full path.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response: {text:.60}"),
            )
        })?;
    let payload = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, payload))
}
