//! A small typed metrics registry — counters, gauges and histograms over
//! relaxed `AtomicU64`s — and the service's [`Metrics`] built on it.
//!
//! Every instrument is registered under its wire name at construction, so
//! `GET /metrics` renders the whole registry uniformly instead of a
//! hand-maintained line list. The text format is Prometheus-flavoured
//! (`name{label="v"} value`) but kept trivially greppable for the CI
//! smoke job; wire names are stable across refactors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (µs) of the request-latency histogram buckets; a final
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A monotonically-increasing counter.
///
/// `set` exists for counters mirroring a total owned elsewhere (the
/// journal replay stats, the LRU's eviction count): the source is itself
/// monotonic, the metric just republishes it.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Republish an externally-tracked monotonic total.
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (in-flight requests, a state code).
#[derive(Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Add one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set an absolute value.
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (cumulative-bucket
/// rendering, Prometheus style: `_bucket{le=...}`, `_sum`, `_count`).
pub struct Histogram {
    bounds: &'static [u64],
    /// One slot per bound plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&le| v <= le)
            .unwrap_or(self.bounds.len());
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments rendered uniformly as the
/// `/metrics` document, in registration order.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(&'static str, Instrument)>,
}

impl Registry {
    /// Register and return a new counter.
    pub fn counter(&mut self, name: &'static str) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.entries.push((name, Instrument::Counter(c.clone())));
        c
    }

    /// Register and return a new gauge.
    pub fn gauge(&mut self, name: &'static str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.entries.push((name, Instrument::Gauge(g.clone())));
        g
    }

    /// Register and return a new histogram with the given upper bounds.
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [u64]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.entries.push((name, Instrument::Histogram(h.clone())));
        h
    }

    /// Render every registered instrument.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, inst) in &self.entries {
            match inst {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, le) in h.bounds.iter().enumerate() {
                        cumulative += h.counts[i].load(Ordering::Relaxed);
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    cumulative += h.counts[h.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    out.push_str(&format!("{name}_sum {}\n", h.sum.load(Ordering::Relaxed)));
                    out.push_str(&format!("{name}_count {cumulative}\n"));
                }
            }
        }
        out
    }
}

/// All service instruments. Shared behind an `Arc` by the acceptor, every
/// worker, and the `/metrics` handler. Each field is registered in
/// [`Metrics::new`] under its stable `grover_serve_*` wire name.
pub struct Metrics {
    /// Requests fully processed (any status).
    pub requests_total: Arc<Counter>,
    /// `POST /v1/compile` requests.
    pub compile_requests: Arc<Counter>,
    /// `POST /v1/tune` requests.
    pub tune_requests: Arc<Counter>,
    /// Tune requests answered from the decision cache.
    pub cache_hits: Arc<Counter>,
    /// Tune requests that had to run the tuner.
    pub cache_misses: Arc<Counter>,
    /// LRU evictions in the in-memory cache (republished total).
    pub cache_evictions: Arc<Counter>,
    /// Tuning races actually executed (misses that measured).
    pub tune_races: Arc<Counter>,
    /// Individual kernel launches the tuner executed (race measurements,
    /// retries, differential-output verification runs). A predict-hit
    /// request performs none — `serve_load --predict` asserts this stays
    /// flat across a predicted run.
    pub launches: Arc<Counter>,
    /// `POST /v1/predict` requests.
    pub predict_requests: Arc<Counter>,
    /// Predict requests answered from the model with zero launches.
    pub predict_hits: Arc<Counter>,
    /// Predict requests where the model abstained (below threshold, no
    /// model, or unknown device) and the measured race ran instead.
    pub predict_abstains: Arc<Counter>,
    /// Predictions later contradicted by a measurement (a fallback race
    /// or a cached measured decision disagreed with the model's verdict).
    pub predict_wrong: Arc<Counter>,
    /// Connections rejected with 429 because the queue was full.
    pub rejected_busy: Arc<Counter>,
    /// Requests that ended with a 4xx/5xx status.
    pub errors_total: Arc<Counter>,
    /// Handler panics converted into 500s.
    pub panics_total: Arc<Counter>,
    /// Tune requests that hit their deadline (504).
    pub deadline_timeouts: Arc<Counter>,
    /// Requests currently being processed by a worker.
    pub in_flight: Arc<Gauge>,
    /// Tune misses answered by joining another request's in-flight race.
    pub tune_coalesced: Arc<Counter>,
    /// Coalesced followers that timed out waiting for their leader.
    pub coalesce_timeouts: Arc<Counter>,
    /// Degraded (circuit-open fallback) tune responses served.
    pub degraded: Arc<Counter>,
    /// Times the tuner circuit breaker tripped open (republished total).
    pub breaker_opens: Arc<Counter>,
    /// Breaker state gauge: 0 closed, 1 open, 2 half-open.
    pub breaker_state: Arc<Gauge>,
    /// Journal records recovered at warm-start.
    pub journal_recovered: Arc<Counter>,
    /// Journal records skipped at warm-start: stale pass epoch.
    pub journal_stale_epoch: Arc<Counter>,
    /// Journal records skipped at warm-start: checksum/length mismatch.
    pub journal_corrupt: Arc<Counter>,
    /// Journal records skipped at warm-start: torn trailing write.
    pub journal_torn: Arc<Counter>,
    /// Legacy bare-JSON lines accepted at warm-start.
    pub journal_legacy: Arc<Counter>,
    /// Journal compactions performed since startup (republished total).
    pub journal_compactions: Arc<Counter>,
    /// Decisions that could not be persisted (answered 500, not cached).
    pub persist_failures: Arc<Counter>,
    /// Connections dropped by the per-request socket I/O timeout.
    pub slow_client_drops: Arc<Counter>,
    /// Request latency histogram, µs (see [`LATENCY_BUCKETS_US`]).
    pub request_latency_us: Arc<Histogram>,
    registry: Registry,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh zeroed instruments, registered under their wire names.
    pub fn new() -> Metrics {
        let mut r = Registry::default();
        Metrics {
            requests_total: r.counter("grover_serve_requests_total"),
            compile_requests: r.counter("grover_serve_compile_requests_total"),
            tune_requests: r.counter("grover_serve_tune_requests_total"),
            cache_hits: r.counter("grover_serve_cache_hits_total"),
            cache_misses: r.counter("grover_serve_cache_misses_total"),
            cache_evictions: r.counter("grover_serve_cache_evictions_total"),
            tune_races: r.counter("grover_serve_tune_races_total"),
            launches: r.counter("grover_serve_launches_total"),
            predict_requests: r.counter("grover_serve_predict_requests_total"),
            predict_hits: r.counter("grover_serve_predict_hits_total"),
            predict_abstains: r.counter("grover_serve_predict_abstains_total"),
            predict_wrong: r.counter("grover_serve_predict_wrong_total"),
            rejected_busy: r.counter("grover_serve_rejected_busy_total"),
            errors_total: r.counter("grover_serve_errors_total"),
            panics_total: r.counter("grover_serve_panics_total"),
            deadline_timeouts: r.counter("grover_serve_deadline_timeouts_total"),
            in_flight: r.gauge("grover_serve_in_flight"),
            tune_coalesced: r.counter("grover_serve_tune_coalesced_total"),
            coalesce_timeouts: r.counter("grover_serve_coalesce_timeouts_total"),
            degraded: r.counter("grover_serve_degraded_total"),
            breaker_opens: r.counter("grover_serve_breaker_opens_total"),
            breaker_state: r.gauge("grover_serve_breaker_state"),
            journal_recovered: r.counter("grover_serve_journal_recovered_total"),
            journal_stale_epoch: r.counter("grover_serve_journal_stale_epoch_total"),
            journal_corrupt: r.counter("grover_serve_journal_corrupt_total"),
            journal_torn: r.counter("grover_serve_journal_torn_total"),
            journal_legacy: r.counter("grover_serve_journal_legacy_total"),
            journal_compactions: r.counter("grover_serve_journal_compactions_total"),
            persist_failures: r.counter("grover_serve_persist_failures_total"),
            slow_client_drops: r.counter("grover_serve_slow_client_drops_total"),
            request_latency_us: r.histogram("grover_serve_request_latency_us", &LATENCY_BUCKETS_US),
            registry: r,
        }
    }

    /// Record one finished request's latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.request_latency_us.observe(us);
    }

    /// Render the `/metrics` document.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // le=100
        m.observe_latency(Duration::from_micros(5_000)); // le=10000
        m.observe_latency(Duration::from_secs(60)); // +Inf
        let text = m.render();
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"10000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_count 3"),
            "{text}"
        );
        assert_eq!(m.request_latency_us.count(), 3);
    }

    #[test]
    fn counters_render_as_plain_lines() {
        let m = Metrics::new();
        m.cache_hits.inc();
        m.cache_hits.inc();
        m.requests_total.inc();
        let text = m.render();
        assert!(text.contains("grover_serve_cache_hits_total 2"), "{text}");
        assert!(text.contains("grover_serve_requests_total 1"), "{text}");
        assert!(text.contains("grover_serve_in_flight 0"), "{text}");
    }

    #[test]
    fn gauges_go_up_and_down() {
        let m = Metrics::new();
        m.in_flight.inc();
        m.in_flight.inc();
        m.in_flight.dec();
        assert_eq!(m.in_flight.get(), 1);
        m.breaker_state.set(2);
        assert!(m.render().contains("grover_serve_breaker_state 2"));
    }

    #[test]
    fn registry_renders_in_registration_order() {
        let mut r = Registry::default();
        let a = r.counter("zz_first");
        let _b = r.gauge("aa_second");
        a.add(7);
        let text = r.render();
        let first = text.find("zz_first 7").unwrap();
        let second = text.find("aa_second 0").unwrap();
        assert!(first < second, "{text}");
    }
}
