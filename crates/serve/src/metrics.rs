//! Lock-free service counters and the `/metrics` text rendering.
//!
//! Everything is an `AtomicU64` updated with relaxed ordering — the
//! counters are monotonic tallies, not synchronisation points. The text
//! format is Prometheus-flavoured (`name{label="v"} value`) but kept
//! trivially greppable for the CI smoke job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the request-latency histogram buckets; a final
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// All service counters. Shared behind an `Arc` by the acceptor, every
/// worker, and the `/metrics` handler.
#[derive(Default)]
pub struct Metrics {
    /// Requests fully processed (any status).
    pub requests_total: AtomicU64,
    /// `POST /v1/compile` requests.
    pub compile_requests: AtomicU64,
    /// `POST /v1/tune` requests.
    pub tune_requests: AtomicU64,
    /// Tune requests answered from the decision cache.
    pub cache_hits: AtomicU64,
    /// Tune requests that had to run the tuner.
    pub cache_misses: AtomicU64,
    /// LRU evictions in the in-memory cache.
    pub cache_evictions: AtomicU64,
    /// Tuning races actually executed (misses that measured).
    pub tune_races: AtomicU64,
    /// Connections rejected with 429 because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Requests that ended with a 4xx/5xx status.
    pub errors_total: AtomicU64,
    /// Handler panics converted into 500s.
    pub panics_total: AtomicU64,
    /// Tune requests that hit their deadline (504).
    pub deadline_timeouts: AtomicU64,
    /// Requests currently being processed by a worker.
    pub in_flight: AtomicU64,
    /// Tune misses answered by joining another request's in-flight race.
    pub tune_coalesced: AtomicU64,
    /// Coalesced followers that timed out waiting for their leader.
    pub coalesce_timeouts: AtomicU64,
    /// Degraded (circuit-open fallback) tune responses served.
    pub degraded: AtomicU64,
    /// Times the tuner circuit breaker tripped open.
    pub breaker_opens: AtomicU64,
    /// Breaker state gauge: 0 closed, 1 open, 2 half-open.
    pub breaker_state: AtomicU64,
    /// Journal records recovered at warm-start.
    pub journal_recovered: AtomicU64,
    /// Journal records skipped at warm-start: stale pass epoch.
    pub journal_stale_epoch: AtomicU64,
    /// Journal records skipped at warm-start: checksum/length mismatch.
    pub journal_corrupt: AtomicU64,
    /// Journal records skipped at warm-start: torn trailing write.
    pub journal_torn: AtomicU64,
    /// Legacy bare-JSON lines accepted at warm-start.
    pub journal_legacy: AtomicU64,
    /// Journal compactions performed since startup.
    pub journal_compactions: AtomicU64,
    /// Decisions that could not be persisted (answered 500, not cached).
    pub persist_failures: AtomicU64,
    /// Connections dropped by the per-request socket I/O timeout.
    pub slow_client_drops: AtomicU64,
    /// Latency histogram bucket counts (see [`LATENCY_BUCKETS_US`]),
    /// last slot is `+Inf`.
    latency_buckets: [AtomicU64; 7],
    /// Sum of all observed request latencies, µs.
    latency_sum_us: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bump a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one finished request's latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Render the `/metrics` document.
    pub fn render(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        let mut line = |name: &str, v: u64| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        line("grover_serve_requests_total", g(&self.requests_total));
        line(
            "grover_serve_compile_requests_total",
            g(&self.compile_requests),
        );
        line("grover_serve_tune_requests_total", g(&self.tune_requests));
        line("grover_serve_cache_hits_total", g(&self.cache_hits));
        line("grover_serve_cache_misses_total", g(&self.cache_misses));
        line(
            "grover_serve_cache_evictions_total",
            g(&self.cache_evictions),
        );
        line("grover_serve_tune_races_total", g(&self.tune_races));
        line("grover_serve_rejected_busy_total", g(&self.rejected_busy));
        line("grover_serve_errors_total", g(&self.errors_total));
        line("grover_serve_panics_total", g(&self.panics_total));
        line(
            "grover_serve_deadline_timeouts_total",
            g(&self.deadline_timeouts),
        );
        line("grover_serve_in_flight", g(&self.in_flight));
        line("grover_serve_tune_coalesced_total", g(&self.tune_coalesced));
        line(
            "grover_serve_coalesce_timeouts_total",
            g(&self.coalesce_timeouts),
        );
        line("grover_serve_degraded_total", g(&self.degraded));
        line("grover_serve_breaker_opens_total", g(&self.breaker_opens));
        line("grover_serve_breaker_state", g(&self.breaker_state));
        line(
            "grover_serve_journal_recovered_total",
            g(&self.journal_recovered),
        );
        line(
            "grover_serve_journal_stale_epoch_total",
            g(&self.journal_stale_epoch),
        );
        line(
            "grover_serve_journal_corrupt_total",
            g(&self.journal_corrupt),
        );
        line("grover_serve_journal_torn_total", g(&self.journal_torn));
        line("grover_serve_journal_legacy_total", g(&self.journal_legacy));
        line(
            "grover_serve_journal_compactions_total",
            g(&self.journal_compactions),
        );
        line(
            "grover_serve_persist_failures_total",
            g(&self.persist_failures),
        );
        line(
            "grover_serve_slow_client_drops_total",
            g(&self.slow_client_drops),
        );
        // Cumulative histogram in Prometheus style.
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += g(&self.latency_buckets[i]);
            out.push_str(&format!(
                "grover_serve_request_latency_us_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += g(&self.latency_buckets[LATENCY_BUCKETS_US.len()]);
        out.push_str(&format!(
            "grover_serve_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "grover_serve_request_latency_us_sum {}\n",
            g(&self.latency_sum_us)
        ));
        out.push_str(&format!(
            "grover_serve_request_latency_us_count {cumulative}\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // le=100
        m.observe_latency(Duration::from_micros(5_000)); // le=10000
        m.observe_latency(Duration::from_secs(60)); // +Inf
        let text = m.render();
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"10000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("grover_serve_request_latency_us_count 3"),
            "{text}"
        );
    }

    #[test]
    fn counters_render_as_plain_lines() {
        let m = Metrics::new();
        m.inc(&m.cache_hits);
        m.inc(&m.cache_hits);
        m.inc(&m.requests_total);
        let text = m.render();
        assert!(text.contains("grover_serve_cache_hits_total 2"), "{text}");
        assert!(text.contains("grover_serve_requests_total 1"), "{text}");
        assert!(text.contains("grover_serve_in_flight 0"), "{text}");
    }
}
