//! The threaded HTTP server: a bounded accept queue, a fixed worker
//! pool, and the request handlers over the compile → pass → tune
//! pipeline.
//!
//! ## Concurrency model
//!
//! One acceptor thread owns the listening socket. Accepted connections go
//! into a bounded queue; when the queue is full the acceptor answers
//! `429 Too Many Requests` (with `Retry-After`) itself without blocking —
//! backpressure is explicit, not a growing backlog. `--threads` workers
//! pop connections and run the full request lifecycle: parse, route,
//! handle (panics isolated per request via `catch_unwind`), respond.
//! Every connection carries per-request socket read *and* write timeouts,
//! so a stalled client costs one worker at most `--io-timeout-ms`.
//!
//! ## Cache discipline
//!
//! `/v1/tune` looks up the [`grover_core::tune_key`] fingerprint in the
//! in-memory LRU first. A hit is served without *any* measurement — a
//! fresh [`Tuner`] is only constructed on a miss, and
//! [`Tuner::races_run`] is accumulated into the
//! `grover_serve_tune_races_total` metric so "hits never re-measure" is
//! an observable invariant, not a comment. Concurrent misses on the same
//! fingerprint are coalesced through a [`Singleflight`] table: one leader
//! races, followers wait for its published outcome, so N identical misses
//! cost exactly one race. Misses are appended to the persistent journal
//! *before* the response is sent — a decision the client saw is always
//! durable; if the append fails the client gets a `persist_failed` 500
//! and nothing is cached.
//!
//! ## Degradation
//!
//! A [`CircuitBreaker`] guards the tuner: consecutive infrastructure
//! failures trip it open, after which misses are answered with a
//! conservative `degraded: true` original-kernel decision (never cached,
//! never persisted) instead of 500s, while cache hits keep being served
//! normally. A cooldown later, one half-open probe decides whether to
//! close the circuit again.
//!
//! ## Prediction
//!
//! With `--model`, `POST /v1/predict` answers from a trained
//! [`grover_predict::Model`] using only static features of the compiled
//! kernel — zero launches, proven by `grover_serve_launches_total`
//! staying flat. Below the confidence threshold the request falls back
//! to the measured flow (cache → singleflight → race), and the measured
//! decision is journalled *with its feature vector*, so every fallback
//! becomes a training row for the next `grover train` — a closed loop.
//! A model whose feature schema or pass-fingerprint epoch does not match
//! this binary is rejected at startup (observably: an event plus a
//! stderr line) and the server degrades to always-abstain.

use std::cell::Cell;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use grover_core::{
    pass_fingerprint, tune_key_with_sequences, Grover, GroverOptions, GroverReport, Sequence,
};
use grover_devsim::Device;
use grover_frontend::{compile, BuildOptions};
use grover_ir::printer::function_to_string;
use grover_ir::{Function, Scalar, Type};
use grover_obs::json::{self, array, Json, Obj};
use grover_obs::{Recorder, SpanId, TraceId, Value};
use grover_predict::{schema_hash, FeatureVector, Model as PredictModel};
use grover_runtime::{ArgValue, Backend, Context, ExecPolicy, Limits, NdRange};
use grover_tuner::{Choice, FallbackReason, TuneError, Tuner, Workload};

use crate::breaker::{Admit, CircuitBreaker};
use crate::cache::{DecisionCache, DecisionRecord, DecisionStore};
use crate::flight::{FlightRecorder, RequestEntry, RequestLog};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::singleflight::{FlightOutcome, Join, Singleflight};

/// The header a client sets to propagate its trace into the server, and
/// the header every response echoes the request's trace id back on.
pub const TRACE_HEADER: &str = "x-grover-trace-id";

/// Server configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Directory for the persistent decision store.
    pub cache_dir: PathBuf,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted-connection queue bound; beyond it the acceptor answers 429.
    pub queue_depth: usize,
    /// In-memory LRU capacity (entries).
    pub cache_capacity: usize,
    /// Server-side ceiling on per-request tune deadlines. A request may
    /// ask for less, never for more.
    pub max_deadline: Option<Duration>,
    /// Test hook: sleep this long at the start of every handled request,
    /// making queue-overflow (429) tests deterministic.
    pub handler_delay: Option<Duration>,
    /// Test hook: requests to this exact path panic inside the handler
    /// isolation boundary, making the panic → flight-dump path
    /// deterministic to test.
    pub panic_path: Option<String>,
    /// Execution backend cache-miss tunes run on.
    pub backend: Backend,
    /// Consecutive tuner failures that trip the circuit breaker open.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Per-request socket read/write timeout (slow-client protection);
    /// `None` disables it.
    pub io_timeout: Option<Duration>,
    /// Journal dead-record count that triggers an atomic compaction.
    pub compact_threshold: usize,
    /// Capacity of the flight-recorder ring and the `/debug/requests`
    /// log (entries each).
    pub flight_capacity: usize,
    /// Attach per-opcode profiles (`profile` events) to the launch spans
    /// of cache-miss tunes. Bytecode backend only; off by default.
    pub profile_ops: bool,
    /// Path to a trained `model.json` serving `POST /v1/predict`. `None`
    /// (and a stale or unreadable model) means every predict abstains
    /// into the measured fallback.
    pub model_path: Option<PathBuf>,
    /// Confidence below which `/v1/predict` falls back to the measured
    /// race. Requests may override per-call via a `threshold` field.
    pub predict_threshold: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: PathBuf::from("grover-cache"),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 4096,
            max_deadline: Some(Duration::from_secs(30)),
            handler_delay: None,
            panic_path: None,
            backend: Backend::Interp,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
            io_timeout: Some(Duration::from_secs(10)),
            compact_threshold: 512,
            flight_capacity: 512,
            profile_ops: false,
            model_path: None,
            predict_threshold: 0.7,
        }
    }
}

struct Shared {
    addr: SocketAddr,
    config: ServeConfig,
    epoch: String,
    metrics: Arc<Metrics>,
    /// The request-facing recorder: always the [`FlightRecorder`] (so the
    /// crash ring sees everything), wrapping whatever the caller passed.
    recorder: Arc<dyn Recorder>,
    /// The same object as `recorder`, concretely typed for ring access.
    flight: Arc<FlightRecorder>,
    /// Recent finished requests for `GET /debug/requests`.
    requests: RequestLog,
    cache: Mutex<DecisionCache>,
    store: Mutex<DecisionStore>,
    /// The trained predict model, when one loaded cleanly. `None` makes
    /// every `/v1/predict` abstain into the measured fallback.
    predictor: Option<Arc<PredictModel>>,
    singleflight: Arc<Singleflight>,
    breaker: CircuitBreaker,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl Shared {
    /// Idempotent shutdown trigger: raises the stop flag, wakes the
    /// acceptor (blocked in `accept`) with a throwaway self-connection,
    /// and wakes every idle worker.
    fn request_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        self.available.notify_all();
    }

    /// Mirror the breaker's state into the `/metrics` gauges.
    fn sync_breaker_metrics(&self) {
        self.metrics.breaker_state.set(self.breaker.state_code());
        self.metrics.breaker_opens.set(self.breaker.opens());
    }

    /// Dump the flight ring to the cache directory (crash / shutdown
    /// artifact). Best-effort: failures are swallowed — the dump must
    /// never turn a survivable panic into an abort.
    fn dump_flight(&self) {
        let _ = self.flight.ring().dump_to(&self.config.cache_dir);
    }
}

/// A running server instance.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, warm-start the cache from the persistent journal (salvaging
    /// every intact record around damage), and spawn the acceptor and
    /// worker threads.
    pub fn start(config: ServeConfig, recorder: Arc<dyn Recorder>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let epoch = pass_fingerprint();

        // Every span the server records goes through the flight recorder,
        // which tees into the crash ring and forwards to the caller's
        // recorder (possibly the no-op one).
        let flight = Arc::new(FlightRecorder::new(recorder, config.flight_capacity));
        let recorder: Arc<dyn Recorder> = flight.clone();

        let recovery = recorder.span_start("serve.recovery", None);
        let (store, stats) =
            DecisionStore::open(&config.cache_dir, &epoch, config.compact_threshold)?;
        let mut cache = DecisionCache::new(config.cache_capacity);
        for rec in store.live_records() {
            cache.insert(rec.clone());
        }
        let metrics = Arc::new(Metrics::new());
        metrics.journal_recovered.set(stats.loaded as u64);
        metrics.journal_stale_epoch.set(stats.stale_epoch as u64);
        metrics.journal_corrupt.set(stats.corrupt as u64);
        metrics.journal_torn.set(stats.torn as u64);
        metrics.journal_legacy.set(stats.legacy as u64);
        if recorder.enabled() {
            recorder.span_attr(recovery, "loaded", Value::from(stats.loaded));
            recorder.span_attr(recovery, "stale_epoch", Value::from(stats.stale_epoch));
            recorder.span_attr(recovery, "corrupt", Value::from(stats.corrupt));
            recorder.span_attr(recovery, "torn", Value::from(stats.torn));
            recorder.span_attr(recovery, "legacy", Value::from(stats.legacy));
            recorder.span_attr(recovery, "superseded", Value::from(stats.superseded));
            recorder.event(
                "serve.warm_start",
                Some(recovery),
                &[
                    ("loaded", Value::from(stats.loaded)),
                    ("stale_epoch", Value::from(stats.stale_epoch)),
                    ("corrupt", Value::from(stats.corrupt)),
                    ("torn", Value::from(stats.torn)),
                    ("epoch", Value::from(epoch.as_str())),
                ],
            );
        }
        recorder.span_end(recovery);

        // Model loading is observable in both directions: a clean load
        // records the model's epoch, a rejection (stale schema, stale
        // transform revision, unreadable file) records why and degrades
        // to always-abstain rather than serving mispredictions.
        let predictor = config.model_path.as_ref().and_then(|path| {
            let outcome = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| PredictModel::load(&text, &epoch).map_err(|e| e.to_string()));
            match outcome {
                Ok(model) => {
                    recorder.event(
                        "predict.model_loaded",
                        None,
                        &[
                            ("path", Value::from(path.display().to_string())),
                            ("devices", Value::from(model.devices.len())),
                            ("epoch", Value::from(epoch.as_str())),
                        ],
                    );
                    Some(Arc::new(model))
                }
                Err(e) => {
                    recorder.event(
                        "predict.model_rejected",
                        None,
                        &[
                            ("path", Value::from(path.display().to_string())),
                            ("error", Value::from(e.as_str())),
                        ],
                    );
                    eprintln!(
                        "grover-serve: predict model {} rejected ({e}); \
                         /v1/predict will abstain into the measured fallback",
                        path.display()
                    );
                    None
                }
            }
        });

        let shared = Arc::new(Shared {
            addr,
            epoch,
            metrics,
            recorder,
            requests: RequestLog::new(config.flight_capacity),
            flight,
            cache: Mutex::new(cache),
            store: Mutex::new(store),
            predictor,
            singleflight: Arc::new(Singleflight::default()),
            breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            config,
        });

        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for i in 0..shared.config.workers.max(1) {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
            workers.push(handle);
        }
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The actual bound address (resolves `:0` bindings).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live metrics counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// Trigger a graceful shutdown without waiting for it.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until the server has stopped (via [`Server::request_shutdown`]
    /// or `POST /admin/shutdown`), then flush the decision store and the
    /// recorder. Queued requests are drained before workers exit.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Ok(mut store) = self.shared.store.lock() {
            let _ = store.flush();
        }
        // The graceful-shutdown flight dump: the last `flight_capacity`
        // spans/events land next to the journal as `flight-<ts>.jsonl`.
        self.shared.dump_flight();
        self.shared.recorder.flush();
    }

    /// [`Server::request_shutdown`] followed by [`Server::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(shared.config.io_timeout);
        let _ = stream.set_write_timeout(shared.config.io_timeout);
        let mut q = shared.queue.lock().expect("queue poisoned");
        if q.len() >= shared.config.queue_depth {
            drop(q);
            shared.metrics.rejected_busy.inc();
            // Answer on a detached thread: the request must be drained
            // before responding (closing with unread bytes RSTs the
            // socket and the client never sees the 429), and the
            // acceptor must not block on a slow client.
            let shared = shared.clone();
            let _ = std::thread::Builder::new()
                .name("serve-reject".to_string())
                .spawn(move || {
                    let start = Instant::now();
                    // Even a rejected request keeps its trace: the 429
                    // carries (and echoes) the caller's trace id so the
                    // retry can be correlated with the rejection.
                    let req = read_request(&mut stream);
                    let trace = req.as_ref().ok().map(trace_of_request);
                    let mut resp = error_response(429, "backpressure", "request queue is full")
                        .with_header("Retry-After", "1");
                    if let Some(t) = trace {
                        resp = stamp_trace(resp, t);
                    }
                    shared.requests.push(RequestEntry {
                        trace,
                        method: req.as_ref().map(|r| r.method.clone()).unwrap_or_default(),
                        path: req.as_ref().map(|r| r.path.clone()).unwrap_or_default(),
                        status: 429,
                        latency_us: elapsed_us(start),
                        disposition: "rejected",
                    });
                    let _ = write_response(&mut stream, &resp);
                });
        } else {
            q.push_back(stream);
            drop(q);
            shared.available.notify_one();
        }
    }
}

/// The request's trace id: the client's `x-grover-trace-id` header when
/// it parses as 32 hex digits, a freshly minted id otherwise.
fn trace_of_request(req: &Request) -> TraceId {
    req.header(TRACE_HEADER)
        .and_then(TraceId::parse)
        .unwrap_or_else(TraceId::mint)
}

/// Stamp the request's trace onto a response: every response echoes the
/// id in the `x-grover-trace-id` header, and structured 4xx/5xx JSON
/// bodies additionally carry it as a `trace_id` field so an error report
/// pasted into a bug can be joined against the trace without the
/// transport headers.
fn stamp_trace(mut resp: Response, trace: TraceId) -> Response {
    let hex = trace.to_hex();
    if resp.status >= 400 && resp.content_type == "application/json" {
        if let Ok(text) = std::str::from_utf8(&resp.body) {
            if let Some(rest) = text.strip_prefix('{') {
                if !rest.trim_start().starts_with('}') {
                    resp.body = format!("{{\"trace_id\":\"{hex}\",{rest}").into_bytes();
                }
            }
        }
    }
    resp.with_header(TRACE_HEADER, hex)
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                // Drain queued work even after stop: clients already
                // accepted get answers.
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.available.wait(q).expect("queue poisoned");
            }
        };
        match conn {
            Some(stream) => {
                if handle_connection(shared, stream) {
                    shared.request_shutdown();
                }
            }
            None => return,
        }
    }
}

/// Full lifecycle of one connection. Returns `true` when the request was
/// a successful `POST /admin/shutdown` and the caller must stop the
/// server.
fn handle_connection(shared: &Shared, mut stream: TcpStream) -> bool {
    if let Some(d) = shared.config.handler_delay {
        std::thread::sleep(d);
    }
    let start = Instant::now();
    let m = &shared.metrics;
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Io(e)) => {
            // A stalled client tripping the per-request socket timeout is
            // deliberately dropped without a response — writing to a dead
            // peer would just block another worker.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                m.slow_client_drops.inc();
            }
            return false;
        }
        Err(e) => {
            let (status, kind) = match e {
                HttpError::TooLarge => (413, "too_large"),
                _ => (400, "bad_request"),
            };
            m.requests_total.inc();
            m.errors_total.inc();
            m.observe_latency(start.elapsed());
            // The request never parsed, so no trace header was read: the
            // request-log entry has a null trace id.
            shared.requests.push(RequestEntry {
                trace: None,
                method: String::new(),
                path: String::new(),
                status,
                latency_us: elapsed_us(start),
                disposition: "error",
            });
            let _ = write_response(&mut stream, &error_response(status, kind, e.to_string()));
            return false;
        }
    };

    m.in_flight.inc();
    // Mint (or adopt) the request's trace id before any child span
    // starts: trace inheritance is parent → child at span_start, so
    // setting it on the root covers the whole request tree.
    let trace = trace_of_request(&req);
    let rec = &*shared.recorder;
    let span = rec.span_start("serve.request", None);
    rec.set_trace(span, trace);
    rec.span_attr(span, "method", Value::from(req.method.as_str()));
    rec.span_attr(span, "path", Value::from(req.path.as_str()));

    let disposition = Cell::new("-");
    let mut panicked = false;
    let resp = match catch_unwind(AssertUnwindSafe(|| route(shared, &req, span, &disposition))) {
        Ok(r) => r,
        Err(_) => {
            m.panics_total.inc();
            panicked = true;
            disposition.set("error");
            error_response(500, "panic", "handler panicked; request isolated")
        }
    };
    let resp = stamp_trace(resp, trace);

    rec.span_attr(span, "status", Value::from(resp.status as u64));
    if resp.status >= 400 && disposition.get() == "-" {
        disposition.set("error");
    }
    rec.span_attr(span, "disposition", Value::from(disposition.get()));
    rec.span_end(span);
    if panicked {
        // A handler panic is exactly what the flight recorder exists
        // for: persist the ring (which now includes this request's
        // span) before answering.
        shared.dump_flight();
    }
    m.requests_total.inc();
    if resp.status >= 400 {
        m.errors_total.inc();
    }
    m.observe_latency(start.elapsed());
    m.in_flight.dec();
    shared.requests.push(RequestEntry {
        trace: Some(trace),
        method: req.method.clone(),
        path: req.path.clone(),
        status: resp.status,
        latency_us: elapsed_us(start),
        disposition: disposition.get(),
    });
    if write_response(&mut stream, &resp).is_err() {
        // The peer stopped reading (or the write timeout fired) — the
        // response is lost, but the worker is free again.
        m.slow_client_drops.inc();
    }
    req.method == "POST" && req.path == "/admin/shutdown" && resp.status == 200
}

const ROUTES: [&str; 8] = [
    "/healthz",
    "/metrics",
    "/debug/flight",
    "/debug/requests",
    "/admin/shutdown",
    "/v1/compile",
    "/v1/tune",
    "/v1/predict",
];

fn route(shared: &Shared, req: &Request, span: SpanId, disp: &Cell<&'static str>) -> Response {
    if shared.config.panic_path.as_deref() == Some(req.path.as_str()) {
        panic!("test-induced handler panic at {}", req.path);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response::text(200, shared.metrics.render()),
        ("GET", "/debug/flight") => Response::text(200, shared.flight.ring().render()),
        ("GET", "/debug/requests") => Response::json(200, shared.requests.render_json()),
        ("POST", "/admin/shutdown") => {
            Response::json(200, Obj::new().bool("shutting_down", true).finish())
        }
        ("POST", "/v1/compile") => handle_compile(shared, req, span),
        ("POST", "/v1/tune") => handle_tune(shared, req, span, disp),
        ("POST", "/v1/predict") => handle_predict(shared, req, span, disp),
        (_, path) if ROUTES.contains(&path) => {
            error_response(405, "method_not_allowed", "method not allowed")
        }
        _ => error_response(404, "not_found", "no such endpoint"),
    }
}

/// The one JSON error shape every 4xx/5xx response uses:
/// `{"error": <message>, "kind": <machine tag>, "status": <code>}`.
fn error_response(status: u16, kind: &str, msg: impl std::fmt::Display) -> Response {
    Response::json(
        status,
        Obj::new()
            .str("error", &msg.to_string())
            .str("kind", kind)
            .u64("status", u64::from(status))
            .finish(),
    )
}

fn bad_request(msg: impl std::fmt::Display) -> Response {
    error_response(400, "bad_request", msg)
}

/// Parse the request body as a JSON object.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req.body_str().map_err(|e| bad_request(e.to_string()))?;
    match json::parse(text) {
        Ok(v @ Json::Obj(_)) => Ok(v),
        Ok(_) => Err(bad_request("request body must be a JSON object")),
        Err(e) => Err(bad_request(format!("invalid JSON body: {e}"))),
    }
}

fn build_options(body: &Json) -> Result<BuildOptions, Response> {
    let mut opts = BuildOptions::new();
    match body.get("defines") {
        None => {}
        Some(Json::Obj(pairs)) => {
            for (name, v) in pairs {
                let value = match v {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => json::number(*n),
                    other => {
                        return Err(bad_request(format!(
                            "define `{name}` must be a string or number, got {other:?}"
                        )))
                    }
                };
                opts = opts.define(name, &value);
            }
        }
        Some(_) => return Err(bad_request("`defines` must be an object")),
    }
    Ok(opts)
}

/// Compile the body's `source` and select the requested kernel.
fn compiled_kernel(body: &Json) -> Result<(Function, String), Response> {
    let source = body
        .str_of("source")
        .ok_or_else(|| bad_request("missing required field `source`"))?;
    let opts = build_options(body)?;
    let module = compile(source, &opts).map_err(|e| bad_request(format!("compile error: {e}")))?;
    let kernel = match body.str_of("kernel") {
        Some(name) => module
            .kernel(name)
            .ok_or_else(|| bad_request(format!("no kernel named `{name}` in source")))?
            .clone(),
        None => module
            .kernels
            .first()
            .ok_or_else(|| bad_request("source contains no kernels"))?
            .clone(),
    };
    let name = kernel.name.clone();
    Ok((kernel, name))
}

fn report_json(report: &GroverReport) -> String {
    let buffers = array(report.buffers.iter().map(|b| {
        let obj = Obj::new()
            .str("buffer", &b.buffer)
            .str("outcome", b.outcome.kind());
        let obj = match b.outcome.reason() {
            Some(r) => obj.str("reason", &r),
            None => obj.null("reason"),
        };
        let obj = match &b.outcome {
            grover_core::BufferOutcome::NotCandidate(e) => obj.str("candidate_kind", e.kind()),
            _ => obj.null("candidate_kind"),
        };
        obj.raw(
            "solutions",
            &array(b.solutions.iter().map(|s| json::escape(s))),
        )
        .finish()
    }));
    Obj::new()
        .u64("barriers_removed", report.barriers_removed as u64)
        .u64("insts_removed", report.insts_removed as u64)
        .bool("all_removed", report.all_removed())
        .raw("buffers", &buffers)
        .finish()
}

fn handle_compile(shared: &Shared, req: &Request, span: SpanId) -> Response {
    shared.metrics.compile_requests.inc();
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (kernel, name) = match compiled_kernel(&body) {
        Ok(k) => k,
        Err(resp) => return resp,
    };
    let keep_barriers = body.bool_of("keep_barriers").unwrap_or(false);
    let source = body.str_of("source").unwrap_or_default();
    let fingerprint = grover_core::source_fingerprint(source).to_hex();
    let rec = &*shared.recorder;
    rec.span_attr(span, "kernel", Value::from(name.as_str()));
    rec.span_attr(span, "fingerprint", Value::from(fingerprint.as_str()));

    let mut transformed = kernel.clone();
    let grover = Grover::with_options(GroverOptions {
        buffers: None,
        keep_barriers,
    });
    let report = grover.run_on_observed(&mut transformed, rec, Some(span));

    Response::json(
        200,
        Obj::new()
            .str("kernel", &name)
            .str("fingerprint", &fingerprint)
            .str("pass_fingerprint", &shared.epoch)
            .raw("report", &report_json(&report))
            .str("original_ir", &function_to_string(&kernel))
            .str("transformed_ir", &function_to_string(&transformed))
            .finish(),
    )
}

/// One synthesised (or explicitly requested) kernel argument.
#[derive(Clone, Debug)]
enum SynthArg {
    BufF32(usize),
    BufI32(usize),
    I32(i32),
    I64(i64),
    F32(f32),
}

/// Deterministic fill shared with the fuzzer's oracle: varied, non-zero,
/// identical on every instantiation.
fn ramp_f32(len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * 13 + 7) % 61) as f32).collect()
}

fn ramp_i32(len: usize) -> Vec<i32> {
    (0..len).map(|i| ((i * 13 + 7) % 61) as i32).collect()
}

/// Parse an explicit `args` array: `{"i32": N}`, `{"i64": N}`,
/// `{"f32": X}`, `{"buffer_f32": LEN}`, `{"buffer_i32": LEN}`.
fn parse_args(v: &Json) -> Result<Vec<SynthArg>, String> {
    let arr = v.as_arr().ok_or("`args` must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, a) in arr.iter().enumerate() {
        let arg = if let Some(n) = a.f64_of("i32") {
            SynthArg::I32(n as i32)
        } else if let Some(n) = a.f64_of("i64") {
            SynthArg::I64(n as i64)
        } else if let Some(n) = a.f64_of("f32") {
            SynthArg::F32(n as f32)
        } else if let Some(n) = a.u64_of("buffer_f32") {
            SynthArg::BufF32(n as usize)
        } else if let Some(n) = a.u64_of("buffer_i32") {
            SynthArg::BufI32(n as usize)
        } else {
            return Err(format!(
                "args[{i}] must be one of {{\"i32\"|\"i64\"|\"f32\"|\"buffer_f32\"|\"buffer_i32\": value}}"
            ));
        };
        out.push(arg);
    }
    Ok(out)
}

/// Derive an argument list from the kernel signature: pointer parameters
/// become deterministic ramp buffers sized for the launch, integer
/// scalars default to the global width (the dominant "n" convention in
/// the bundled kernels), floats to 1.0.
fn synthesise_args(kernel: &Function, global_elems: u64) -> Result<Vec<SynthArg>, String> {
    let len = (global_elems as usize) * 2 + 64;
    kernel
        .params()
        .iter()
        .map(|p| match p.ty {
            Type::Ptr {
                elem: Scalar::F32,
                lanes,
                ..
            } => Ok(SynthArg::BufF32(len * lanes as usize)),
            Type::Ptr {
                elem: Scalar::I32 | Scalar::Bool,
                lanes,
                ..
            } => Ok(SynthArg::BufI32(len * lanes as usize)),
            Type::Scalar(Scalar::I32) => Ok(SynthArg::I32(global_elems as i32)),
            Type::Scalar(Scalar::I64) => Ok(SynthArg::I64(global_elems as i64)),
            Type::Scalar(Scalar::F32) => Ok(SynthArg::F32(1.0)),
            _ => Err(format!(
                "cannot synthesise a workload for parameter `{}`; pass an explicit `args` array",
                p.name
            )),
        })
        .collect()
}

fn make_workload(specs: Vec<SynthArg>, nd: NdRange) -> Workload {
    Workload::new(move || {
        let mut ctx = Context::new();
        let mut vals = Vec::with_capacity(specs.len());
        for s in &specs {
            let v = match *s {
                SynthArg::BufF32(len) => ArgValue::Buffer(ctx.buffer_f32(&ramp_f32(len))),
                SynthArg::BufI32(len) => ArgValue::Buffer(ctx.buffer_i32(&ramp_i32(len))),
                SynthArg::I32(n) => ArgValue::I32(n),
                SynthArg::I64(n) => ArgValue::I64(n),
                SynthArg::F32(x) => ArgValue::F32(x),
            };
            vals.push(v);
        }
        (ctx, vals, nd)
    })
}

/// Parse a launch-dimension array (1–3 entries, all non-zero).
fn parse_dims(v: Option<&Json>, field: &str) -> Result<Vec<u64>, String> {
    let arr = v
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{field}`"))?;
    if arr.is_empty() || arr.len() > 3 {
        return Err(format!("`{field}` must have 1 to 3 dimensions"));
    }
    let dims: Option<Vec<u64>> = arr.iter().map(Json::as_u64).collect();
    let dims = dims.ok_or_else(|| format!("`{field}` entries must be unsigned integers"))?;
    if dims.contains(&0) {
        return Err(format!("`{field}` dimensions must be non-zero"));
    }
    Ok(dims)
}

fn pad3(dims: &[u64]) -> [u64; 3] {
    let mut out = [1u64; 3];
    out[..dims.len()].copy_from_slice(dims);
    out
}

fn tune_error_response(shared: &Shared, e: &TuneError) -> Response {
    let (status, kind) = match e {
        TuneError::UnknownDevice(_) => (400, "unknown_device"),
        TuneError::InvalidSequence(_) => (400, "invalid_sequence"),
        TuneError::NothingToDisable(_) => (422, "pass_refusal"),
        TuneError::Deadline => {
            shared.metrics.deadline_timeouts.inc();
            (504, "deadline")
        }
        TuneError::Execution(_) => (500, "execution"),
        TuneError::Panicked(_) => (500, "panic"),
        TuneError::Internal(_) => (500, "internal"),
    };
    error_response(status, kind, e)
}

/// How the decision reached this response — reported as the `cached`
/// field (`false` only for the request that actually raced).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Served {
    /// This request ran the tuner.
    Fresh,
    /// Answered from the in-memory LRU / warm-started journal.
    Hit,
    /// Answered by joining another request's in-flight race.
    Coalesced,
}

fn decision_response(rec: &DecisionRecord, served: Served) -> Response {
    let mut obj = Obj::new()
        .str("fingerprint", &rec.fingerprint)
        .str("pass_fingerprint", &rec.epoch)
        .bool("cached", served != Served::Fresh)
        .bool("coalesced", served == Served::Coalesced)
        .bool("degraded", false)
        .str("device", &rec.device)
        .str("kernel", &rec.kernel)
        .str("choice", &rec.choice)
        .str("sequence", &rec.sequence)
        .f64("np", rec.np)
        .u64("cycles_with", rec.cycles_with)
        .u64("cycles_without", rec.cycles_without);
    obj = match (&rec.fallback_kind, &rec.fallback_detail) {
        (Some(k), Some(d)) => obj.raw(
            "fallback",
            &Obj::new().str("kind", k).str("detail", d).finish(),
        ),
        _ => obj.null("fallback"),
    };
    Response::json(200, obj.finish())
}

/// The conservative answer served while the tuner circuit is open: keep
/// the original kernel, tagged `degraded` + `circuit_open`. Never cached,
/// never persisted — once the breaker closes, the same request tunes for
/// real.
fn degraded_response(shared: &Shared, fingerprint: &str, device: &str, kernel: &str) -> Response {
    let reason = FallbackReason::CircuitOpen(
        "tuner unavailable; serving the conservative original-kernel decision".to_string(),
    );
    Response::json(
        200,
        Obj::new()
            .str("fingerprint", fingerprint)
            .str("pass_fingerprint", &shared.epoch)
            .bool("cached", false)
            .bool("coalesced", false)
            .bool("degraded", true)
            .str("device", device)
            .str("kernel", kernel)
            .str("choice", Choice::WithLocalMemory.kind())
            .null("sequence")
            .null("np")
            .null("cycles_with")
            .null("cycles_without")
            .raw(
                "fallback",
                &Obj::new()
                    .str("kind", reason.kind())
                    .str("detail", &reason.to_string())
                    .finish(),
            )
            .finish(),
    )
}

/// The request fields `/v1/tune` and `/v1/predict` share, validated and
/// resolved down to the content-addressed tune fingerprint.
struct TuneParams {
    device: String,
    g3: [u64; 3],
    l3: [u64; 3],
    passes: Option<Sequence>,
    fingerprint: String,
    key_kernel: String,
}

/// Validate the common tune/predict request shape and compute the tune
/// key. Stamps the fingerprint/device/kernel attrs onto the request span
/// so both endpoints trace identically.
fn parse_tune_params(shared: &Shared, body: &Json, span: SpanId) -> Result<TuneParams, Response> {
    let Some(source) = body.str_of("source") else {
        return Err(bad_request("missing required field `source`"));
    };
    let Some(device) = body.str_of("device") else {
        return Err(bad_request("missing required field `device`"));
    };
    if Device::by_name(device).is_none() {
        return Err(bad_request(format!(
            "unknown device `{device}` (known: {})",
            grover_devsim::ALL_DEVICES.join(", ")
        )));
    }
    let global = parse_dims(body.get("global"), "global").map_err(bad_request)?;
    let local = parse_dims(body.get("local"), "local").map_err(bad_request)?;
    if local.len() != global.len() {
        return Err(bad_request(
            "`global` and `local` must have the same dimensionality",
        ));
    }
    let (g3, l3) = (pad3(&global), pad3(&local));
    if g3.iter().zip(&l3).any(|(g, l)| g % l != 0) {
        return Err(bad_request(
            "each `local` dimension must divide its `global` dimension",
        ));
    }

    // Optional `passes`: one explicit pass-sequence spec that replaces the
    // device-seeded candidate race. Validated here so an illegal sequence
    // is a 400 before any cache or tuner work.
    let passes = match body.str_of("passes") {
        Some(raw) => match Sequence::parse(raw) {
            Ok(seq) => Some(seq),
            Err(e) => {
                return Err(error_response(
                    400,
                    "invalid_sequence",
                    format!("invalid `passes`: {e}"),
                ))
            }
        },
        None => None,
    };
    // The sequence-set identity is part of the tune key: an explicit
    // sequence keys by its revision-carrying token, the default search
    // keys by the device's seeded candidate set — so decisions for
    // different sequence sets can never collide, and reseeding the
    // candidates invalidates exactly the affected device's entries.
    let sequences_id = match &passes {
        Some(seq) => seq.token(),
        None => {
            let tokens: Vec<String> = grover_devsim::candidate_sequences(device)
                .iter()
                .map(|s| {
                    Sequence::parse(s)
                        .expect("seeded candidate sequences are legal")
                        .token()
                })
                .collect();
            format!("auto:{}", tokens.join(";"))
        }
    };

    // Resolve the kernel name for the fingerprint: explicit, or the
    // first kernel of the (not yet compiled) source. Compilation is
    // deferred to the miss path, but the name must be part of the key —
    // so a missing `kernel` field costs a cheap parse on hits too.
    let rec = &*shared.recorder;
    let kernel_field = body.str_of("kernel").map(str::to_string);
    let fingerprint;
    let key_kernel;
    if let Some(name) = &kernel_field {
        key_kernel = name.clone();
        fingerprint =
            tune_key_with_sequences(source, name, device, &g3, &l3, &sequences_id).to_hex();
    } else {
        let (_, name) = compiled_kernel(body)?;
        key_kernel = name;
        fingerprint =
            tune_key_with_sequences(source, &key_kernel, device, &g3, &l3, &sequences_id).to_hex();
    }
    rec.span_attr(span, "fingerprint", Value::from(fingerprint.as_str()));
    rec.span_attr(span, "device", Value::from(device));
    rec.span_attr(span, "kernel", Value::from(key_kernel.as_str()));
    Ok(TuneParams {
        device: device.to_string(),
        g3,
        l3,
        passes,
        fingerprint,
        key_kernel,
    })
}

fn handle_tune(
    shared: &Shared,
    req: &Request,
    span: SpanId,
    disp: &Cell<&'static str>,
) -> Response {
    shared.metrics.tune_requests.inc();
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let params = match parse_tune_params(shared, &body, span) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    measured_flow(shared, &body, span, disp, &params)
}

/// The measured decision flow: LRU → breaker → singleflight → race.
/// `/v1/tune` always lands here; `/v1/predict` lands here when the model
/// abstains (its fallback path).
fn measured_flow(
    shared: &Shared,
    body: &Json,
    span: SpanId,
    disp: &Cell<&'static str>,
    p: &TuneParams,
) -> Response {
    let m = &shared.metrics;
    let rec = &*shared.recorder;
    let (fingerprint, device, key_kernel) = (&p.fingerprint, &p.device, &p.key_kernel);
    let (g3, l3) = (p.g3, p.l3);
    let passes = p.passes.as_ref();

    // Cache hit: answer without constructing a tuner at all.
    if let Some(hit) = shared
        .cache
        .lock()
        .expect("cache poisoned")
        .get(fingerprint)
    {
        m.cache_hits.inc();
        disp.set("hit");
        rec.span_attr(span, "cache", Value::from("hit"));
        return decision_response(&hit, Served::Hit);
    }
    m.cache_misses.inc();

    // The effective deadline is needed up front: it bounds the tuner on
    // the leader path and the wait on the follower path.
    let requested = body.u64_of("deadline_ms").map(Duration::from_millis);
    let effective_deadline = match (requested, shared.config.max_deadline) {
        (Some(r), Some(cap)) => Some(r.min(cap)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    };

    // Circuit breaker: while the tuner is known-broken, misses get the
    // conservative degraded answer instead of a 500 (hits were already
    // served above — degradation never touches them).
    let admit = shared.breaker.admit();
    shared.sync_breaker_metrics();
    if admit == Admit::Degrade {
        m.degraded.inc();
        disp.set("degraded");
        rec.span_attr(span, "cache", Value::from("degraded"));
        return degraded_response(shared, fingerprint, device, key_kernel);
    }

    // Singleflight: identical concurrent misses share one race. The
    // joiner's trace id rides along so followers can link to the trace
    // that actually did the work.
    match shared.singleflight.join(fingerprint, rec.trace_of(span)) {
        Join::Follower(follower) => {
            m.tune_coalesced.inc();
            disp.set("coalesced");
            rec.span_attr(span, "cache", Value::from("coalesced"));
            // Cross-trace link: this request's answer was computed under
            // the leader's trace, not its own.
            if let Some(leader_trace) = follower.leader_trace() {
                let hex = leader_trace.to_hex();
                rec.event(
                    "coalesce.link",
                    Some(span),
                    &[("leader_trace_id", Value::from(hex.as_str()))],
                );
            }
            // The leader is bounded by the tune deadline; the margin
            // covers its compile + persist overhead.
            let wait =
                effective_deadline.unwrap_or(Duration::from_secs(60)) + Duration::from_secs(10);
            match follower.wait(wait) {
                Some(FlightOutcome::Decision(record)) => {
                    decision_response(&record, Served::Coalesced)
                }
                Some(FlightOutcome::Fail { status, body }) => Response::json(status, body),
                None => {
                    m.coalesce_timeouts.inc();
                    error_response(
                        504,
                        "coalesce_timeout",
                        "timed out waiting for the in-flight tune of this kernel",
                    )
                }
            }
        }
        Join::Leader(leader) => {
            // Double-check the cache with leadership held: the previous
            // leader may have published between our miss and our join —
            // without this, back-to-back misses would re-race the key.
            if let Some(hit) = shared
                .cache
                .lock()
                .expect("cache poisoned")
                .get(fingerprint)
            {
                // This request still shared another's race — count it as
                // coalesced so hits + misses stays one-per-request.
                m.tune_coalesced.inc();
                disp.set("coalesced");
                rec.span_attr(span, "cache", Value::from("coalesced"));
                let resp = decision_response(&hit, Served::Coalesced);
                leader.publish(FlightOutcome::Decision(Box::new(hit)));
                return resp;
            }
            disp.set("miss");
            rec.span_attr(span, "cache", Value::from("miss"));
            let (resp, record) = run_miss(
                shared,
                body,
                span,
                fingerprint,
                key_kernel,
                device,
                g3,
                l3,
                effective_deadline,
                passes,
            );
            match record {
                Some(r) => leader.publish(FlightOutcome::Decision(Box::new(r))),
                None => leader.publish(FlightOutcome::Fail {
                    status: resp.status,
                    body: String::from_utf8_lossy(&resp.body).into_owned(),
                }),
            }
            resp
        }
    }
}

/// Inject `predicted:false` plus the abstained confidence into a
/// measured fallback's 200 decision body, the same prefix trick
/// `stamp_trace` uses — the fallback response stays byte-compatible with
/// `/v1/tune` apart from the two leading fields.
fn annotate_abstain(mut resp: Response, confidence: Option<f64>) -> Response {
    if resp.status == 200 && resp.content_type == "application/json" {
        if let Ok(text) = std::str::from_utf8(&resp.body) {
            if let Some(rest) = text.strip_prefix('{') {
                if !rest.trim_start().starts_with('}') {
                    let conf = match confidence {
                        Some(c) => json::number(c),
                        None => "null".to_string(),
                    };
                    resp.body =
                        format!("{{\"predicted\":false,\"confidence\":{conf},{rest}").into_bytes();
                }
            }
        }
    }
    resp
}

/// `POST /v1/predict`: answer the tuning question from the trained model
/// with zero launches, or abstain below the confidence threshold and
/// fall back to the measured flow. Either way the request's `predict`
/// span carries the feature vector, the confidence and the outcome.
fn handle_predict(
    shared: &Shared,
    req: &Request,
    span: SpanId,
    disp: &Cell<&'static str>,
) -> Response {
    let m = &shared.metrics;
    m.predict_requests.inc();
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let p = match parse_tune_params(shared, &body, span) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // The model scores static features of the *original* kernel, so the
    // compile happens up front on both the hit and the abstain path.
    // Compilation is host work — still zero launches.
    let (kernel, _) = match compiled_kernel(&body) {
        Ok(k) => k,
        Err(resp) => return resp,
    };
    if kernel.name != p.key_kernel {
        return bad_request(format!("no kernel named `{}` in source", p.key_kernel));
    }
    let features = FeatureVector::extract(&kernel, p.g3, p.l3);
    let threshold = body
        .f64_of("threshold")
        .map(|t| t.clamp(0.0, 1.0))
        .unwrap_or(shared.config.predict_threshold);

    let rec = &*shared.recorder;
    let pspan = rec.span_start("predict", Some(span));
    if rec.enabled() {
        rec.span_attr(pspan, "kernel", Value::from(p.key_kernel.as_str()));
        rec.span_attr(pspan, "device", Value::from(p.device.as_str()));
        rec.span_attr(pspan, "threshold", Value::from(threshold));
        rec.span_attr(pspan, "features", Value::from(features.values_json()));
    }
    let prediction = shared
        .predictor
        .as_deref()
        .and_then(|mdl| mdl.predict(&p.device, &features));

    match prediction {
        Some(pred) if pred.confidence >= threshold => {
            m.predict_hits.inc();
            disp.set("predicted");
            rec.event(
                "outcome",
                Some(pspan),
                &[
                    ("outcome", Value::from("hit")),
                    ("verdict", Value::from(pred.verdict.kind())),
                    ("confidence", Value::from(pred.confidence)),
                    ("np_est", Value::from(pred.np_est)),
                    ("exact_match", Value::from(pred.exact_match)),
                ],
            );
            // Grade against a measured decision when the cache already
            // holds one for this exact fingerprint: a disagreement is an
            // observable misprediction even though the hit is served.
            if let Some(measured) = shared
                .cache
                .lock()
                .expect("cache poisoned")
                .get(&p.fingerprint)
            {
                if measured.choice != pred.verdict.kind() {
                    m.predict_wrong.inc();
                    rec.event(
                        "predict.wrong",
                        Some(pspan),
                        &[
                            ("predicted", Value::from(pred.verdict.kind())),
                            ("measured", Value::from(measured.choice.as_str())),
                            ("confidence", Value::from(pred.confidence)),
                        ],
                    );
                }
            }
            rec.span_end(pspan);
            Response::json(
                200,
                Obj::new()
                    .bool("predicted", true)
                    .f64("confidence", pred.confidence)
                    .str("fingerprint", &p.fingerprint)
                    .str("pass_fingerprint", &shared.epoch)
                    .str("device", &p.device)
                    .str("kernel", &p.key_kernel)
                    .str("choice", pred.verdict.kind())
                    .f64("np_est", pred.np_est)
                    .bool("exact_match", pred.exact_match)
                    .str("neighbor", &pred.neighbor_kernel)
                    .u64("launches", 0)
                    .finish(),
            )
        }
        other => {
            m.predict_abstains.inc();
            let confidence = other.as_ref().map(|pr| pr.confidence);
            let mut attrs: Vec<(&str, Value)> = vec![("outcome", Value::from("abstain"))];
            match &other {
                Some(pr) => {
                    attrs.push(("verdict", Value::from(pr.verdict.kind())));
                    attrs.push(("confidence", Value::from(pr.confidence)));
                }
                None => attrs.push(("reason", Value::from("no model for device"))),
            }
            rec.event("outcome", Some(pspan), &attrs);
            rec.span_end(pspan);
            // Fallback: the measured flow. Its journal row carries the
            // feature vector, feeding the next training round — the
            // closed loop that makes abstains self-correcting.
            let resp = measured_flow(shared, &body, span, disp, &p);
            if let (Some(pr), 200) = (&other, resp.status) {
                if let Ok(Ok(decided)) = std::str::from_utf8(&resp.body).map(json::parse) {
                    if let Some(choice) = decided.str_of("choice") {
                        if choice != pr.verdict.kind() {
                            m.predict_wrong.inc();
                            rec.event(
                                "predict.wrong",
                                Some(span),
                                &[
                                    ("predicted", Value::from(pr.verdict.kind())),
                                    ("measured", Value::from(choice)),
                                    ("confidence", Value::from(pr.confidence)),
                                ],
                            );
                        }
                    }
                }
            }
            annotate_abstain(resp, confidence)
        }
    }
}

/// The leader's miss path: compile, transform, race, persist, cache.
/// Returns the response plus the decision record when one was produced
/// *and made durable* — that record is what followers are served.
#[allow(clippy::too_many_arguments)]
fn run_miss(
    shared: &Shared,
    body: &Json,
    span: SpanId,
    fingerprint: &str,
    key_kernel: &str,
    device: &str,
    g3: [u64; 3],
    l3: [u64; 3],
    effective_deadline: Option<Duration>,
    passes: Option<&Sequence>,
) -> (Response, Option<DecisionRecord>) {
    let m = &shared.metrics;
    let rec = &*shared.recorder;
    let (kernel, _) = match compiled_kernel(body) {
        Ok(k) => k,
        Err(resp) => return (resp, None),
    };
    if kernel.name != *key_kernel {
        return (
            bad_request(format!("no kernel named `{key_kernel}` in source")),
            None,
        );
    }
    // Refusal pre-check: local removal is the root of every legal
    // sequence, so if it declines here it declines for all candidates —
    // answer 422 with the full report before spinning up a race.
    let mut probe = kernel.clone();
    let grover = Grover::with_options(GroverOptions {
        buffers: None,
        keep_barriers: false,
    });
    let tune_span = rec.span_start("serve.tune", Some(span));
    let report = grover.run_on_observed(&mut probe, rec, Some(tune_span));
    if !report.buffers.iter().any(|b| b.outcome.is_removed()) {
        rec.span_end(tune_span);
        let resp = Response::json(
            422,
            Obj::new()
                .str(
                    "error",
                    "the pass removed no __local buffer; nothing to tune",
                )
                .str("kind", "pass_refusal")
                .u64("status", 422)
                .raw("report", &report_json(&report))
                .finish(),
        );
        return (resp, None);
    }

    let global_elems: u64 = g3.iter().product();
    let specs = match body.get("args") {
        Some(v) => match parse_args(v) {
            Ok(s) => s,
            Err(e) => {
                rec.span_end(tune_span);
                return (bad_request(e), None);
            }
        },
        None => match synthesise_args(&kernel, global_elems) {
            Ok(s) => s,
            Err(e) => {
                rec.span_end(tune_span);
                return (bad_request(e), None);
            }
        },
    };
    let workload = make_workload(specs, NdRange::d3(g3, l3));

    let mut tuner = Tuner::new();
    tuner.recorder = shared.recorder.clone();
    tuner.backend = shared.config.backend;
    // Nest the tuner's spans under this request's tune span so every
    // span down to the launches carries the request's trace id.
    tuner.parent = Some(tune_span);
    tuner.profile_ops = shared.config.profile_ops;
    if let Some(threads) = body.u64_of("threads") {
        tuner.policy = ExecPolicy::Parallel {
            threads: threads as usize,
        };
    }
    tuner.limits = Limits {
        deadline: effective_deadline,
        ..Limits::default()
    };
    // An explicit `passes` spec collapses the race to that one candidate;
    // otherwise the tuner draws the device-seeded set from devsim.
    if let Some(seq) = passes {
        tuner.sequences = Some(vec![seq.spec()]);
    }

    let outcome = tuner.tune(&kernel, device, &workload);
    m.tune_races.add(tuner.races_run());
    m.launches.add(tuner.launches_run());
    rec.span_end(tune_span);
    let decision = match outcome {
        Ok(d) => {
            shared.breaker.record_success();
            shared.sync_breaker_metrics();
            d
        }
        Err(e) => {
            // Infrastructure failures feed the breaker; client errors
            // (unknown device, nothing to disable) do not.
            if matches!(
                e,
                TuneError::Execution(_)
                    | TuneError::Panicked(_)
                    | TuneError::Internal(_)
                    | TuneError::Deadline
            ) {
                shared.breaker.record_failure();
            }
            shared.sync_breaker_metrics();
            return (tune_error_response(shared, &e), None);
        }
    };

    // Journal the decision *with* the original kernel's static features:
    // every measured row is then a ready-made training example, and
    // `grover corpus export` is a join-free dump. This is the closed
    // loop — predict fallbacks land here and improve the next model.
    let features = FeatureVector::extract(&kernel, g3, l3);
    let record = DecisionRecord::from_decision(fingerprint, &shared.epoch, key_kernel, &decision)
        .with_features(&schema_hash(), features.values());
    // Persist before publishing: a decision a client saw is durable. A
    // failed append means the client gets a 500 and nothing is cached —
    // better a retryable error than an acknowledged-then-lost decision.
    let persisted = {
        let mut store = shared.store.lock().expect("store poisoned");
        let r = store.append(&record);
        m.journal_compactions.set(store.compactions());
        r
    };
    if let Err(e) = persisted {
        m.persist_failures.inc();
        return (
            error_response(
                500,
                "persist_failed",
                format!("decision could not be made durable: {e}"),
            ),
            None,
        );
    }
    {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        cache.insert(record.clone());
        let evictions = cache.evictions();
        drop(cache);
        m.cache_evictions.set(evictions);
    }
    (decision_response(&record, Served::Fresh), Some(record))
}
