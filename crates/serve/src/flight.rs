//! The crash flight recorder: a bounded in-memory ring of the most
//! recent spans and events, kept *always on* in the serving layer and
//! dumped to `flight-<ts>.jsonl` when a handler panics or the server
//! shuts down — so a crash report carries the traffic that led up to it
//! even when JSONL tracing was never enabled.
//!
//! [`FlightRecorder`] wraps the configured [`Recorder`] (possibly the
//! no-op one) and forwards every call, while independently rendering
//! finished spans and events — via [`grover_obs::span_line`] /
//! [`grover_obs::event_line`], so the dump is byte-compatible with the
//! `--trace-out` JSONL format — into a [`FlightRing`]. It allocates its
//! own span ids: the inner recorder may be `NoopRecorder` (which returns
//! id 0 for every span), so inner ids cannot key the in-flight table.
//!
//! A sibling [`RequestLog`] ring keeps one summary line per finished
//! request (trace id, method, path, status, latency, cache disposition)
//! behind `GET /debug/requests`; the span ring itself is live at
//! `GET /debug/flight`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use grover_obs::{event_line, span_line, Recorder, SpanId, TraceId, Value};

/// A bounded ring of rendered JSONL lines: pushing past capacity drops
/// the oldest line. Cheap enough to stay on for every request.
pub struct FlightRing {
    cap: usize,
    lines: Mutex<VecDeque<String>>,
}

impl FlightRing {
    /// An empty ring holding at most `cap` lines.
    pub fn new(cap: usize) -> FlightRing {
        FlightRing {
            cap: cap.max(1),
            lines: Mutex::new(VecDeque::new()),
        }
    }

    /// Append one line, evicting the oldest when full.
    pub fn push(&self, line: String) {
        let mut lines = self.lines.lock().expect("flight ring poisoned");
        while lines.len() >= self.cap {
            lines.pop_front();
        }
        lines.push_back(line);
    }

    /// Lines currently held, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.lines
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of lines currently held.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render as a JSONL document (one line per entry, trailing newline).
    pub fn render(&self) -> String {
        let lines = self.lines.lock().expect("flight ring poisoned");
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Dump the ring to `dir/flight-<unix-secs>.jsonl` and return the
    /// path. A best-effort crash artifact: the caller ignores errors on
    /// the panic path.
    pub fn dump_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        // Suffix with a counter when the second collides (two dumps in
        // one second must not clobber each other).
        let mut path = dir.join(format!("flight-{ts}.jsonl"));
        let mut n = 1;
        while path.exists() {
            path = dir.join(format!("flight-{ts}-{n}.jsonl"));
            n += 1;
        }
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.render().as_bytes())?;
        f.sync_all()?;
        Ok(path)
    }
}

/// One finished (or rejected) request, as shown by `GET /debug/requests`.
#[derive(Clone, Debug)]
pub struct RequestEntry {
    /// The request's trace id (none when the request died before one was
    /// minted — e.g. a malformed request line).
    pub trace: Option<TraceId>,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Wall time from first byte read to response written, µs.
    pub latency_us: u64,
    /// How the tune cache answered: `hit`, `miss`, `coalesced`,
    /// `degraded`, `rejected`, `error`, or `-` for non-tune routes.
    pub disposition: &'static str,
}

impl RequestEntry {
    fn to_json(&self) -> String {
        let obj = grover_obs::json::Obj::new();
        let obj = match self.trace {
            Some(t) => obj.str("trace_id", &t.to_hex()),
            None => obj.null("trace_id"),
        };
        obj.str("method", &self.method)
            .str("path", &self.path)
            .u64("status", u64::from(self.status))
            .u64("latency_us", self.latency_us)
            .str("disposition", self.disposition)
            .finish()
    }
}

/// A bounded ring of recent [`RequestEntry`]s.
pub struct RequestLog {
    cap: usize,
    entries: Mutex<VecDeque<RequestEntry>>,
}

impl RequestLog {
    /// An empty log holding at most `cap` requests.
    pub fn new(cap: usize) -> RequestLog {
        RequestLog {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one finished request, evicting the oldest when full.
    pub fn push(&self, entry: RequestEntry) {
        let mut entries = self.entries.lock().expect("request log poisoned");
        while entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Render as `{"requests": [...]}`, oldest first.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().expect("request log poisoned");
        let items = grover_obs::json::array(entries.iter().map(|e| e.to_json()));
        grover_obs::json::Obj::new()
            .raw("requests", &items)
            .finish()
    }

    /// Number of requests currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("request log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Book-keeping for one span that is still open.
struct OpenSpan {
    name: String,
    parent: Option<SpanId>,
    trace: Option<TraceId>,
    started: Instant,
    start_us: u64,
    attrs: Vec<(String, Value)>,
    /// The wrapped recorder's id for this span, used when forwarding.
    inner_id: SpanId,
}

/// A [`Recorder`] that tees everything into a [`FlightRing`] while
/// forwarding to the wrapped recorder. Always enabled — the ring is the
/// point — so observed code paths record spans even when the inner
/// recorder is the no-op one.
pub struct FlightRecorder {
    inner: Arc<dyn Recorder>,
    ring: FlightRing,
    /// Our own id source; never hands out 0 so ids stay distinguishable
    /// from the no-op recorder's constant.
    next_id: AtomicU64,
    open: Mutex<HashMap<SpanId, OpenSpan>>,
    epoch: Instant,
}

impl FlightRecorder {
    /// Wrap `inner`, keeping the most recent `cap` rendered lines.
    pub fn new(inner: Arc<dyn Recorder>, cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner,
            ring: FlightRing::new(cap),
            next_id: AtomicU64::new(1),
            open: Mutex::new(HashMap::new()),
            epoch: Instant::now(),
        }
    }

    /// The ring of rendered lines.
    pub fn ring(&self) -> &FlightRing {
        &self.ring
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut open = self.open.lock().expect("flight recorder poisoned");
        let (trace, inner_parent) = match parent.and_then(|p| open.get(&p)) {
            Some(p) => (p.trace, Some(p.inner_id)),
            None => (None, None),
        };
        let inner_id = self.inner.span_start(name, inner_parent);
        open.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                parent,
                trace,
                started: Instant::now(),
                start_us: self.now_us(),
                attrs: Vec::new(),
                inner_id,
            },
        );
        id
    }

    fn span_attr(&self, span: SpanId, key: &str, value: Value) {
        let mut open = self.open.lock().expect("flight recorder poisoned");
        if let Some(s) = open.get_mut(&span) {
            s.attrs.push((key.to_string(), value.clone()));
            let inner_id = s.inner_id;
            drop(open);
            self.inner.span_attr(inner_id, key, value);
        }
    }

    fn span_end(&self, span: SpanId) {
        let Some(s) = self
            .open
            .lock()
            .expect("flight recorder poisoned")
            .remove(&span)
        else {
            return;
        };
        let dur_us = s.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.ring.push(span_line(
            span, &s.name, s.parent, s.trace, s.start_us, dur_us, &s.attrs,
        ));
        self.inner.span_end(s.inner_id);
    }

    fn event(&self, name: &str, span: Option<SpanId>, attrs: &[(&str, Value)]) {
        let (trace, inner_span) = {
            let open = self.open.lock().expect("flight recorder poisoned");
            match span.and_then(|p| open.get(&p)) {
                Some(s) => (s.trace, Some(s.inner_id)),
                None => (None, None),
            }
        };
        let owned: Vec<(String, Value)> = attrs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        self.ring.push(event_line(name, span, trace, &owned));
        self.inner.event(name, inner_span, attrs);
    }

    fn set_trace(&self, span: SpanId, trace: TraceId) {
        let inner_id = {
            let mut open = self.open.lock().expect("flight recorder poisoned");
            match open.get_mut(&span) {
                Some(s) => {
                    s.trace = Some(trace);
                    Some(s.inner_id)
                }
                None => None,
            }
        };
        if let Some(id) = inner_id {
            self.inner.set_trace(id, trace);
        }
    }

    fn trace_of(&self, span: SpanId) -> Option<TraceId> {
        self.open
            .lock()
            .expect("flight recorder poisoned")
            .get(&span)
            .and_then(|s| s.trace)
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_obs::{MemoryRecorder, NoopRecorder};

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let ring = FlightRing::new(3);
        for i in 0..5 {
            ring.push(format!("line-{i}"));
        }
        assert_eq!(ring.snapshot(), vec!["line-2", "line-3", "line-4"]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.render(), "line-2\nline-3\nline-4\n");
    }

    #[test]
    fn records_spans_with_trace_ids_over_a_noop_inner() {
        let fr = FlightRecorder::new(Arc::new(NoopRecorder), 16);
        let trace = TraceId::mint();
        let root = fr.span_start("serve.request", None);
        fr.set_trace(root, trace);
        let child = fr.span_start("serve.tune", Some(root));
        fr.event(
            "decision",
            Some(child),
            &[("choice", Value::from("similar"))],
        );
        fr.span_end(child);
        fr.span_end(root);

        let lines = fr.ring().snapshot();
        assert_eq!(lines.len(), 3, "{lines:?}");
        let hex = trace.to_hex();
        for line in &lines {
            assert!(
                line.contains(&format!("\"trace_id\":\"{hex}\"")),
                "trace id missing from {line}"
            );
        }
        // Distinct wrapper ids even though the no-op inner returns 0.
        assert!(lines[1].contains("\"name\":\"serve.tune\""), "{lines:?}");
        assert!(lines[2].contains("\"name\":\"serve.request\""), "{lines:?}");
        assert_ne!(root, child);
        assert_ne!(root, 0);
    }

    #[test]
    fn forwards_everything_to_the_inner_recorder() {
        let inner = Arc::new(MemoryRecorder::new());
        let fr = FlightRecorder::new(inner.clone(), 16);
        let trace = TraceId::mint();
        let root = fr.span_start("serve.request", None);
        fr.set_trace(root, trace);
        let child = fr.span_start("serve.tune", Some(root));
        fr.span_end(child);
        fr.span_end(root);

        let snap = inner.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let tune = snap.span("serve.tune").unwrap();
        assert_eq!(tune.trace, Some(trace), "trace must reach the inner spans");
        assert!(tune.parent.is_some(), "parent link must be forwarded");
    }

    #[test]
    fn dump_writes_a_jsonl_file() {
        let dir = std::env::temp_dir().join(format!(
            "grover-flight-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ring = FlightRing::new(8);
        ring.push("{\"type\":\"span\"}".to_string());
        ring.push("{\"type\":\"event\"}".to_string());
        let path = ring.dump_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        // A second dump in the same second gets a distinct name.
        let path2 = ring.dump_to(&dir).unwrap();
        assert_ne!(path, path2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_log_renders_and_evicts() {
        let log = RequestLog::new(2);
        for (i, disp) in ["hit", "miss", "coalesced"].iter().enumerate() {
            log.push(RequestEntry {
                trace: Some(TraceId(i as u128 + 1)),
                method: "POST".to_string(),
                path: "/v1/tune".to_string(),
                status: 200,
                latency_us: 42,
                disposition: disp,
            });
        }
        assert_eq!(log.len(), 2);
        let doc = log.render_json();
        assert!(!doc.contains("\"disposition\":\"hit\""), "{doc}");
        assert!(doc.contains("\"disposition\":\"miss\""), "{doc}");
        assert!(doc.contains("\"disposition\":\"coalesced\""), "{doc}");
        assert!(doc.contains("\"latency_us\":42"), "{doc}");
    }
}
