//! Per-key coalescing of identical in-flight tune requests.
//!
//! Concurrent cache misses on the same `tune_key` share one tuner race:
//! the first joiner becomes the *leader* and runs the work; the rest are
//! *followers* that block (with a deadline) on the leader's published
//! outcome. Outcomes — success or structured failure — are propagated
//! verbatim, so N identical misses cost exactly one race and produce N
//! consistent responses.
//!
//! Failure discipline: the key is removed from the in-flight table at
//! publish time, *before* followers wake, so an error never poisons the
//! key — the next request for it starts a fresh flight. If the leader
//! unwinds without publishing (a panic escaping its `catch_unwind`), the
//! [`LeaderGuard`]'s drop publishes a structured 500 on its behalf;
//! followers never hang on a dead leader.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use grover_obs::TraceId;

/// What a flight resolved to; cloned to every follower.
#[derive(Clone, Debug)]
pub enum FlightOutcome {
    /// The leader produced (and persisted) a decision — followers serve
    /// the serialised record as a cache hit. Boxed: a record (with its
    /// feature vector) dwarfs the `Fail` variant.
    Decision(Box<crate::cache::DecisionRecord>),
    /// The leader failed; followers repeat the same structured error
    /// body. Never cached.
    Fail {
        /// HTTP status the leader answered with.
        status: u16,
        /// The leader's full JSON error body.
        body: String,
    },
}

struct Flight {
    /// Trace id of the leader's request, so coalesced followers can record
    /// a link from their own trace to the one that did the work.
    leader_trace: Option<TraceId>,
    outcome: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

impl Flight {
    /// Block until the leader publishes, or `deadline` elapses (`None`).
    fn wait(&self, deadline: Duration) -> Option<FlightOutcome> {
        let start = Instant::now();
        let mut slot = self.outcome.lock().expect("flight poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return None;
            }
            let (next, timeout) = self
                .done
                .wait_timeout(slot, deadline - elapsed)
                .expect("flight poisoned");
            slot = next;
            if timeout.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

/// The caller's role for one key.
pub enum Join {
    /// First joiner: run the work, then [`LeaderGuard::publish`].
    Leader(LeaderGuard),
    /// A flight is already running: wait on it.
    Follower(FollowerHandle),
}

/// A follower's handle onto the leader's flight.
pub struct FollowerHandle {
    flight: Arc<Flight>,
}

impl FollowerHandle {
    /// Wait for the leader's outcome; `None` when `deadline` elapses
    /// first (the flight keeps running — later followers may still be
    /// served).
    pub fn wait(&self, deadline: Duration) -> Option<FlightOutcome> {
        self.flight.wait(deadline)
    }

    /// The leader's trace id, if its request was traced — the follower
    /// records it as a cross-trace link.
    pub fn leader_trace(&self) -> Option<TraceId> {
        self.flight.leader_trace
    }
}

/// Leadership of one in-flight key. Publishing resolves every follower;
/// dropping without publishing resolves them with a structured 500 (the
/// leader panicked past its own isolation) and frees the key either way.
pub struct LeaderGuard {
    sf: Arc<Singleflight>,
    key: String,
    flight: Arc<Flight>,
    published: bool,
}

/// The per-key in-flight table. Held in an `Arc` so a [`LeaderGuard`]
/// can free its key without borrowing the server's shared state.
#[derive(Default)]
pub struct Singleflight {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl LeaderGuard {
    /// Publish the outcome: free the key (new requests start fresh — no
    /// poisoning), then wake every follower.
    pub fn publish(mut self, outcome: FlightOutcome) {
        self.publish_inner(outcome);
    }

    fn publish_inner(&mut self, outcome: FlightOutcome) {
        if self.published {
            return;
        }
        self.published = true;
        self.sf
            .flights
            .lock()
            .expect("singleflight poisoned")
            .remove(&self.key);
        *self.flight.outcome.lock().expect("flight poisoned") = Some(outcome);
        self.flight.done.notify_all();
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.published {
            self.publish_inner(FlightOutcome::Fail {
                status: 500,
                body: grover_obs::json::Obj::new()
                    .str("error", "coalesced leader terminated without a result")
                    .str("kind", "leader_lost")
                    .u64("status", 500)
                    .finish(),
            });
        }
    }
}

impl Singleflight {
    /// Join the flight for `key`: the first joiner leads, the rest follow.
    /// `trace` is the joiner's trace id; the leader's is published to
    /// followers via [`FollowerHandle::leader_trace`].
    pub fn join(self: &Arc<Self>, key: &str, trace: Option<TraceId>) -> Join {
        let mut flights = self.flights.lock().expect("singleflight poisoned");
        if let Some(flight) = flights.get(key) {
            return Join::Follower(FollowerHandle {
                flight: flight.clone(),
            });
        }
        let flight = Arc::new(Flight {
            leader_trace: trace,
            outcome: Mutex::new(None),
            done: Condvar::new(),
        });
        flights.insert(key.to_string(), flight.clone());
        Join::Leader(LeaderGuard {
            sf: self.clone(),
            key: key.to_string(),
            flight,
            published: false,
        })
    }

    /// Keys currently in flight (test observability).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("singleflight poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DecisionRecord;

    fn record(fp: &str) -> DecisionRecord {
        DecisionRecord {
            fingerprint: fp.to_string(),
            epoch: "e".to_string(),
            device: "SNB".to_string(),
            kernel: "k".to_string(),
            choice: "similar".to_string(),
            sequence: "local-removal,barrier-elim,index-simplify".to_string(),
            np: 1.0,
            cycles_with: 1,
            cycles_without: 1,
            fallback_kind: None,
            fallback_detail: None,
            feature_schema_hash: None,
            features: None,
        }
    }

    #[test]
    fn followers_receive_the_leaders_outcome() {
        let sf = Arc::new(Singleflight::default());
        let Join::Leader(leader) = sf.join("k1", None) else {
            panic!("first joiner must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let Join::Follower(f) = sf.join("k1", None) else {
                    panic!("later joiners must follow");
                };
                std::thread::spawn(move || f.wait(Duration::from_secs(5)))
            })
            .collect();
        leader.publish(FlightOutcome::Decision(Box::new(record("k1"))));
        for f in followers {
            match f.join().unwrap() {
                Some(FlightOutcome::Decision(r)) => assert_eq!(r.fingerprint, "k1"),
                other => panic!("expected the decision, got {other:?}"),
            }
        }
        assert_eq!(sf.in_flight(), 0, "publish frees the key");
    }

    #[test]
    fn failure_does_not_poison_the_key() {
        let sf = Arc::new(Singleflight::default());
        let Join::Leader(leader) = sf.join("k", None) else {
            panic!()
        };
        let Join::Follower(follower) = sf.join("k", None) else {
            panic!()
        };
        leader.publish(FlightOutcome::Fail {
            status: 500,
            body: "{\"kind\":\"panic\"}".to_string(),
        });
        match follower.wait(Duration::from_secs(1)) {
            Some(FlightOutcome::Fail { status, .. }) => assert_eq!(status, 500),
            other => panic!("expected the failure, got {other:?}"),
        }
        // The very next join leads a fresh flight.
        assert!(matches!(sf.join("k", None), Join::Leader(_)));
        // (Dropping that leader unpublished resolves as leader_lost.)
    }

    #[test]
    fn dropped_leader_resolves_followers_with_a_structured_500() {
        let sf = Arc::new(Singleflight::default());
        let leader = match sf.join("k", None) {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!(),
        };
        let Join::Follower(follower) = sf.join("k", None) else {
            panic!()
        };
        drop(leader); // simulates a panic unwinding through the leader
        match follower.wait(Duration::from_secs(1)) {
            Some(FlightOutcome::Fail { status, body }) => {
                assert_eq!(status, 500);
                assert!(body.contains("leader_lost"), "{body}");
            }
            other => panic!("expected leader_lost, got {other:?}"),
        }
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn follower_wait_times_out_without_an_outcome() {
        let sf = Arc::new(Singleflight::default());
        let _leader = match sf.join("k", None) {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!(),
        };
        let Join::Follower(follower) = sf.join("k", None) else {
            panic!()
        };
        assert!(follower.wait(Duration::from_millis(50)).is_none());
    }
}
