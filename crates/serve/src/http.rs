//! A deliberately small HTTP/1.1 implementation over `std::net` — just
//! enough protocol for the service's JSON API: request-line + headers +
//! `Content-Length` bodies in, fixed-length `Connection: close` responses
//! out. No chunked encoding, no keep-alive, no TLS; clients reconnect per
//! request (the load generator measures that path end to end).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted request body (4 MiB — kernels are small text).
pub const MAX_BODY: usize = 4 << 20;

/// Maximum accepted header block.
const MAX_HEAD: usize = 64 << 10;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Headers as `(lowercased-name, trimmed-value)` pairs, in arrival
    /// order — the tracing layer reads `x-grover-trace-id` from here.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("body is not valid UTF-8".into()))
    }

    /// First value of header `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served at the protocol level.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers or body.
    BadRequest(String),
    /// Body exceeded [`MAX_BODY`].
    TooLarge,
    /// The socket failed or closed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::TooLarge => f.write_str("request body too large"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Read one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    // Read until the end of the header block.
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 4096];
    let header_end;
    loop {
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-header".into()));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_header_end(&head) {
            header_end = pos;
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::BadRequest("header block too large".into()));
        }
    }
    let header_text = std::str::from_utf8(&head[..header_end])
        .map_err(|_| HttpError::BadRequest("headers are not valid UTF-8".into()))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("invalid Content-Length".into()))?;
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }

    // The body may have been partially read with the headers.
    let mut body = head[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialise.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on 429s.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Attach one extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialise and send a response; the connection is then closed by the
/// caller dropping the stream (`Connection: close` is always sent).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).ok();
            // Hold the socket open until the server side has parsed.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        drop(conn);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /v1/tune?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/tune");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("Content-Length"), Some("5"));
        assert_eq!(req.header("x-grover-trace-id"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /v1/compile HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            roundtrip(raw.as_bytes()),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn rejects_truncated_request() {
        assert!(matches!(
            roundtrip(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi"),
            Err(HttpError::BadRequest(_))
        ));
    }
}
