//! The content-addressed decision cache.
//!
//! A tuning decision is a pure function of `(canonicalised kernel source,
//! kernel name, device profile, launch geometry)` — the
//! [`grover_core::tune_key`] fingerprint — *at one pass revision*. The
//! cache therefore has two layers:
//!
//! * [`DecisionCache`]: an in-memory LRU serving hot keys without locks
//!   held across measurements;
//! * [`DecisionStore`]: an append-only checksummed journal under
//!   `--cache-dir` (see [`crate::journal`] for the framing), flushed per
//!   write (kill-safe) and replayed on boot to warm-start the LRU. Replay
//!   never fails: torn or corrupt records are skipped and counted, and
//!   every intact record is salvaged. Entries carry the pass-version
//!   *epoch* ([`grover_core::pass_fingerprint`]); entries from another
//!   epoch are skipped at load, so bumping
//!   [`grover_core::TRANSFORM_REVISION`] invalidates every persisted
//!   decision without deleting history. When the journal accumulates
//!   enough dead weight (superseded, stale-epoch, damaged or legacy
//!   lines), it is compacted atomically: live records are rewritten to a
//!   temp file, fsynced, and renamed over the journal.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

use grover_obs::json::{self, Json, Obj};
use grover_tuner::Decision;

use crate::journal;

/// The serialisable form of one cached tuning decision.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// The [`grover_core::tune_key`] fingerprint, 32 hex digits.
    pub fingerprint: String,
    /// Pass-version epoch the decision was produced under.
    pub epoch: String,
    /// Device profile name.
    pub device: String,
    /// Kernel name.
    pub kernel: String,
    /// `Choice::kind()` tag.
    pub choice: String,
    /// The winning pass sequence (spec form, [`Decision::sequence`]).
    /// Empty on records persisted before sequence search existed.
    pub sequence: String,
    /// Normalised performance `t_with / t_without`.
    pub np: f64,
    /// Simulated cycles with local memory.
    pub cycles_with: u64,
    /// Simulated cycles without local memory.
    pub cycles_without: u64,
    /// `FallbackReason::kind()` tag, when demoted.
    pub fallback_kind: Option<String>,
    /// Human-readable fallback detail, when demoted.
    pub fallback_detail: Option<String>,
    /// Hash of the feature schema `features` was extracted under.
    /// `None` on records persisted before predictive tuning existed.
    pub feature_schema_hash: Option<String>,
    /// The static feature vector of the tuned kernel + geometry, in
    /// `grover_predict::FEATURE_NAMES` order. Persisting it alongside
    /// the measured decision makes every journal line a training row —
    /// `grover corpus export` joins on these fields.
    pub features: Option<Vec<f64>>,
}

impl DecisionRecord {
    /// Build a record from a tuner [`Decision`].
    pub fn from_decision(
        fingerprint: &str,
        epoch: &str,
        kernel: &str,
        d: &Decision,
    ) -> DecisionRecord {
        DecisionRecord {
            fingerprint: fingerprint.to_string(),
            epoch: epoch.to_string(),
            device: d.device.clone(),
            kernel: kernel.to_string(),
            choice: d.choice.kind().to_string(),
            sequence: d.sequence.clone(),
            np: d.np,
            cycles_with: d.cycles_with,
            cycles_without: d.cycles_without,
            fallback_kind: d.fallback.as_ref().map(|f| f.kind().to_string()),
            fallback_detail: d.fallback.as_ref().map(|f| f.to_string()),
            feature_schema_hash: None,
            features: None,
        }
    }

    /// Attach the static feature vector (and its schema hash), turning
    /// this record into a corpus training row.
    pub fn with_features(mut self, schema_hash: &str, values: &[f64]) -> DecisionRecord {
        self.feature_schema_hash = Some(schema_hash.to_string());
        self.features = Some(values.to_vec());
        self
    }

    /// Render as one JSON object (one store line).
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .str("fingerprint", &self.fingerprint)
            .str("epoch", &self.epoch)
            .str("device", &self.device)
            .str("kernel", &self.kernel)
            .str("choice", &self.choice)
            .str("sequence", &self.sequence)
            .f64("np", self.np)
            .u64("cycles_with", self.cycles_with)
            .u64("cycles_without", self.cycles_without);
        obj = match (&self.fallback_kind, &self.fallback_detail) {
            (Some(k), Some(d)) => obj.raw(
                "fallback",
                &Obj::new().str("kind", k).str("detail", d).finish(),
            ),
            _ => obj.null("fallback"),
        };
        if let (Some(h), Some(f)) = (&self.feature_schema_hash, &self.features) {
            obj = obj
                .str("feature_schema_hash", h)
                .raw("features", &json::array(f.iter().map(|v| json::number(*v))));
        }
        obj.finish()
    }

    /// Parse one store line.
    pub fn from_json(v: &Json) -> Result<DecisionRecord, String> {
        let field = |k: &str| {
            v.str_of(k)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let (fallback_kind, fallback_detail) = match v.get("fallback") {
            Some(Json::Obj(_)) => {
                let f = v.get("fallback").unwrap();
                (
                    f.str_of("kind").map(str::to_string),
                    f.str_of("detail").map(str::to_string),
                )
            }
            _ => (None, None),
        };
        Ok(DecisionRecord {
            fingerprint: field("fingerprint")?,
            epoch: field("epoch")?,
            device: field("device")?,
            kernel: field("kernel")?,
            choice: field("choice")?,
            // Tolerant: records from before sequence search have no field.
            sequence: v.str_of("sequence").unwrap_or("").to_string(),
            np: v.f64_of("np").ok_or("missing field `np`")?,
            cycles_with: v
                .u64_of("cycles_with")
                .ok_or("missing field `cycles_with`")?,
            cycles_without: v
                .u64_of("cycles_without")
                .ok_or("missing field `cycles_without`")?,
            fallback_kind,
            fallback_detail,
            // Tolerant: records from before predictive tuning have none.
            feature_schema_hash: v.str_of("feature_schema_hash").map(str::to_string),
            features: v
                .get("features")
                .and_then(Json::as_arr)
                .and_then(|a| a.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>()),
        })
    }
}

/// In-memory LRU over [`DecisionRecord`]s, keyed by fingerprint.
pub struct DecisionCache {
    capacity: usize,
    map: HashMap<String, (DecisionRecord, u64)>,
    order: BTreeMap<u64, String>,
    tick: u64,
    evictions: u64,
}

impl DecisionCache {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> DecisionCache {
        DecisionCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up a fingerprint, marking the entry most-recently used.
    pub fn get(&mut self, fingerprint: &str) -> Option<DecisionRecord> {
        self.tick += 1;
        let tick = self.tick;
        let (rec, used) = self.map.get_mut(fingerprint)?;
        self.order.remove(used);
        *used = tick;
        self.order.insert(tick, fingerprint.to_string());
        Some(rec.clone())
    }

    /// Insert (or refresh) a record, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, rec: DecisionRecord) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, used)) = self.map.get(&rec.fingerprint) {
            self.order.remove(used);
        } else if self.map.len() >= self.capacity {
            // Evict the coldest entry (smallest tick).
            if let Some((&cold, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&cold) {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.order.insert(tick, rec.fingerprint.clone());
        self.map.insert(rec.fingerprint.clone(), (rec, tick));
    }
}

/// What a store load found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Records loaded live (current epoch, latest per fingerprint).
    pub loaded: usize,
    /// Records skipped because their epoch differs from the current pass
    /// fingerprint (invalidated by a pass-version bump).
    pub stale_epoch: usize,
    /// Records whose length or CRC-32 did not match their payload (bit
    /// flips, manual edits, mid-file damage).
    pub corrupt: usize,
    /// Trailing records cut short by a crash mid-write.
    pub torn: usize,
    /// Bare-JSON lines accepted from the pre-journal format.
    pub legacy: usize,
    /// Records superseded by a later record for the same fingerprint.
    pub superseded: usize,
}

/// The persistent checksummed journal behind the in-memory LRU.
///
/// Besides the append handle, the store keeps an index of *live* records
/// (latest per fingerprint, current epoch) so it can compact the journal
/// without consulting the LRU — the LRU is capacity-bounded, the store's
/// retention is not.
pub struct DecisionStore {
    path: PathBuf,
    out: File,
    /// Live records in first-seen order (stable warm-start order).
    order: Vec<String>,
    /// Latest record per fingerprint, with whether that copy is a framed
    /// journal line (legacy copies must be rewritten by a compaction).
    live: HashMap<String, (DecisionRecord, bool)>,
    /// Physical lines across the legacy segment, the journal, and appends.
    total_lines: usize,
    /// Live records whose latest copy is already a framed journal line.
    framed_live: usize,
    /// Compact once the dead weight exceeds this (and outnumbers the live).
    compact_threshold: usize,
    compactions: u64,
    epoch: String,
}

/// File name of the checksummed journal inside `--cache-dir`.
pub const JOURNAL_FILE: &str = "decisions.journal";

/// File name of the pre-journal raw-JSONL segment, replayed (read-only)
/// for warm-start when present so an upgrade loses no decisions.
pub const LEGACY_SEGMENT_FILE: &str = "decisions.jsonl";

impl DecisionStore {
    /// Open (creating if needed) the store under `dir`, replaying the
    /// journal — and any legacy segment — into the live index. Replay is
    /// infallible by design: damaged records are counted, never fatal.
    pub fn open(
        dir: &Path,
        epoch: &str,
        compact_threshold: usize,
    ) -> std::io::Result<(DecisionStore, LoadStats)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut store = DecisionStore {
            path: path.clone(),
            out: OpenOptions::new().create(true).append(true).open(&path)?,
            order: Vec::new(),
            live: HashMap::new(),
            total_lines: 0,
            framed_live: 0,
            compact_threshold: compact_threshold.max(1),
            compactions: 0,
            epoch: epoch.to_string(),
        };
        let mut stats = LoadStats::default();
        // Legacy first: anything the journal re-recorded wins as a later
        // line. A compaction migrates legacy content into checksummed
        // frames, so legacy copies always count as dead weight.
        if let Ok(text) = std::fs::read_to_string(dir.join(LEGACY_SEGMENT_FILE)) {
            for (line, terminated) in journal::lines(&text) {
                stats.legacy += 1;
                store.total_lines += 1;
                match journal::classify(line, terminated) {
                    journal::Line::Record(p) | journal::Line::Legacy(p) => {
                        store.replay_payload(p, false, &mut stats);
                    }
                    journal::Line::Torn => stats.torn += 1,
                    journal::Line::Corrupt => stats.corrupt += 1,
                }
            }
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            for (line, terminated) in journal::lines(&text) {
                store.total_lines += 1;
                match journal::classify(line, terminated) {
                    journal::Line::Record(p) => store.replay_payload(p, true, &mut stats),
                    journal::Line::Legacy(p) => {
                        stats.legacy += 1;
                        store.replay_payload(p, false, &mut stats);
                    }
                    journal::Line::Torn => stats.torn += 1,
                    journal::Line::Corrupt => stats.corrupt += 1,
                }
            }
            // Repair a torn tail: truncate back to the last terminated
            // line, otherwise the next append would glue onto the torn
            // bytes and damage the *new* record too.
            if !text.is_empty() && !text.ends_with('\n') {
                let keep = text.rfind('\n').map(|p| p + 1).unwrap_or(0);
                store.out.set_len(keep as u64)?;
                store.total_lines -= 1; // the torn line is physically gone
            }
        }
        stats.loaded = store.live.len();
        Ok((store, stats))
    }

    /// Feed one parsed-payload line into the live index.
    fn replay_payload(&mut self, payload: &str, framed: bool, stats: &mut LoadStats) {
        match json::parse(payload).and_then(|v| DecisionRecord::from_json(&v)) {
            Ok(rec) if rec.epoch == self.epoch => {
                if self.index(rec, framed) {
                    stats.superseded += 1;
                }
            }
            Ok(_) => stats.stale_epoch += 1,
            Err(_) => stats.corrupt += 1,
        }
    }

    /// Record `rec` as live (later lines win). Returns whether a previous
    /// record for the same fingerprint was superseded.
    fn index(&mut self, rec: DecisionRecord, framed: bool) -> bool {
        let fp = rec.fingerprint.clone();
        let old = self.live.insert(fp.clone(), (rec, framed));
        match old {
            Some((_, old_framed)) => {
                if old_framed {
                    self.framed_live -= 1;
                }
                if framed {
                    self.framed_live += 1;
                }
                true
            }
            None => {
                if framed {
                    self.framed_live += 1;
                }
                self.order.push(fp);
                false
            }
        }
    }

    /// Path of the underlying journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Live records in first-seen order, for warm-starting the LRU.
    pub fn live_records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.order
            .iter()
            .filter_map(|fp| self.live.get(fp).map(|(r, _)| r))
    }

    /// Live record count.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Journal + legacy lines a compaction would drop (superseded, stale
    /// epoch, damaged, or unframed).
    pub fn dead_len(&self) -> usize {
        self.total_lines - self.framed_live
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Append one record (framed + checksummed) and flush it to disk
    /// (kill-safe persistence: every published decision survives an
    /// abrupt exit). May trigger an atomic compaction afterwards.
    ///
    /// On error the record must be treated as NOT persisted — the caller
    /// must not acknowledge the decision to a client.
    pub fn append(&mut self, rec: &DecisionRecord) -> std::io::Result<()> {
        journal::append_framed(&mut self.out, &rec.to_json())?;
        self.total_lines += 1;
        self.index(rec.clone(), true);
        self.maybe_compact();
        Ok(())
    }

    /// Compact when the dead weight crosses the threshold. Compaction
    /// failures are swallowed: the journal stays append-correct, just
    /// bigger than it needs to be.
    fn maybe_compact(&mut self) {
        if self.dead_len() >= self.compact_threshold && self.dead_len() >= self.live.len() {
            let _ = self.compact();
        }
    }

    /// Rewrite the journal to live records only — write-new + fsync +
    /// rename, so a crash leaves either the old or the new journal.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let payloads: Vec<String> = self.live_records().map(DecisionRecord::to_json).collect();
        journal::rewrite_atomic(&self.path, &payloads)?;
        self.out = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.total_lines = self.live.len();
        self.framed_live = self.live.len();
        for entry in self.live.values_mut() {
            entry.1 = true;
        }
        self.compactions += 1;
        // The legacy segment's content now lives in the journal as framed
        // records; move it aside so future boots neither re-replay it nor
        // re-count it as dead weight. (Renaming keeps the bytes around.)
        if let Some(dir) = self.path.parent() {
            let legacy = dir.join(LEGACY_SEGMENT_FILE);
            if legacy.exists() {
                let _ = std::fs::rename(&legacy, dir.join("decisions.jsonl.migrated"));
            }
        }
        Ok(())
    }

    /// Flush buffered writes (a no-op after `append`, kept for the
    /// graceful-shutdown path's explicit contract).
    pub fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: &str, epoch: &str) -> DecisionRecord {
        DecisionRecord {
            fingerprint: fp.to_string(),
            epoch: epoch.to_string(),
            device: "SNB".to_string(),
            kernel: "k".to_string(),
            choice: "without_local_memory".to_string(),
            sequence: "local-removal,barrier-elim,index-simplify".to_string(),
            np: 1.25,
            cycles_with: 100,
            cycles_without: 80,
            fallback_kind: None,
            fallback_detail: None,
            feature_schema_hash: None,
            features: None,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = rec("ab", "e1");
        r.fallback_kind = Some("deadline".into());
        r.fallback_detail = Some("took too long".into());
        let parsed = DecisionRecord::from_json(&json::parse(&r.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = DecisionCache::new(2);
        c.insert(rec("a", "e"));
        c.insert(rec("b", "e"));
        assert!(c.get("a").is_some()); // a is now hottest
        c.insert(rec("c", "e")); // evicts b
        assert_eq!(c.evictions(), 1);
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = DecisionCache::new(2);
        c.insert(rec("a", "e"));
        c.insert(rec("a", "e"));
        c.insert(rec("b", "e"));
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("grover-serve-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn open(dir: &Path, epoch: &str) -> (DecisionStore, LoadStats) {
        DecisionStore::open(dir, epoch, 1024).unwrap()
    }

    #[test]
    fn store_roundtrips_and_filters_epochs() {
        let dir = scratch("epochs");
        {
            let (mut store, _) = open(&dir, "new");
            store.append(&rec("a", "new")).unwrap();
            store.append(&rec("b", "old")).unwrap();
            store.append(&rec("c", "new")).unwrap();
        }
        // Simulate a record truncated by a killed process mid-write.
        {
            use std::io::Write;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(JOURNAL_FILE))
                .unwrap();
            let full = journal::frame(&rec("t", "new").to_json());
            f.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
        }
        let (store, stats) = open(&dir, "new");
        assert_eq!(
            stats,
            LoadStats {
                loaded: 2,
                stale_epoch: 1,
                corrupt: 0,
                torn: 1,
                legacy: 0,
                superseded: 0,
            }
        );
        let fps: Vec<&str> = store
            .live_records()
            .map(|r| r.fingerprint.as_str())
            .collect();
        assert_eq!(fps, ["a", "c"], "stale epoch must be invalidated");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_lines_win_on_replay() {
        let dir = scratch("laterwins");
        {
            let (mut store, _) = open(&dir, "e");
            let mut first = rec("a", "e");
            first.np = 1.0;
            store.append(&first).unwrap();
            let mut second = rec("a", "e");
            second.np = 2.0;
            store.append(&second).unwrap();
        }
        let (store, stats) = open(&dir, "e");
        assert_eq!(stats.loaded, 1);
        assert_eq!(stats.superseded, 1);
        assert_eq!(store.live_records().next().unwrap().np, 2.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The satellite fixture test: a bit-flipped record mid-file and a
    /// torn record at the tail are both skipped and counted, and every
    /// intact record — before and after the damage — is salvaged.
    #[test]
    fn replay_salvages_every_intact_record_around_damage() {
        let dir = scratch("salvage");
        {
            let (mut store, _) = open(&dir, "e");
            for fp in ["a", "b", "c", "d"] {
                store.append(&rec(fp, "e")).unwrap();
            }
        }
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        // Bit-flip record "b"'s payload (CRC now mismatches) and tear the
        // tail by appending half a record with no newline.
        let mut damaged = text.replace("\"b\"", "\"B\"");
        assert_ne!(damaged, text);
        let half = journal::frame(&rec("t", "e").to_json());
        damaged.push_str(&half[..half.len() / 3]);
        std::fs::write(&path, &damaged).unwrap();

        let (store, stats) = open(&dir, "e");
        assert_eq!(stats.corrupt, 1, "{stats:?}");
        assert_eq!(stats.torn, 1, "{stats:?}");
        assert_eq!(stats.loaded, 3, "{stats:?}");
        let fps: Vec<&str> = store
            .live_records()
            .map(|r| r.fingerprint.as_str())
            .collect();
        assert_eq!(fps, ["a", "c", "d"], "intact records around damage survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn tail must be truncated away on open — otherwise the next
    /// append glues onto the torn bytes and the *new* (acknowledged!)
    /// record is lost on the following restart.
    #[test]
    fn append_after_torn_tail_survives_the_next_restart() {
        let dir = scratch("tornappend");
        {
            let (mut store, _) = open(&dir, "e");
            store.append(&rec("a", "e")).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let torn = journal::frame(&rec("t", "e").to_json());
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        }
        {
            let (mut store, stats) = open(&dir, "e");
            assert_eq!(stats.torn, 1);
            store.append(&rec("fresh", "e")).unwrap();
        }
        let (store, stats) = open(&dir, "e");
        assert_eq!(stats.torn, 0, "torn tail repaired by the previous open");
        assert_eq!(stats.loaded, 2, "{stats:?}");
        let fps: Vec<&str> = store
            .live_records()
            .map(|r| r.fingerprint.as_str())
            .collect();
        assert_eq!(fps, ["a", "fresh"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_raw_jsonl_is_replayed_and_migrated_by_compaction() {
        let dir = scratch("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-journal segment written by an older server.
        std::fs::write(
            dir.join(LEGACY_SEGMENT_FILE),
            format!("{}\n{}\n", rec("a", "e").to_json(), rec("b", "e").to_json()),
        )
        .unwrap();
        let (mut store, stats) = open(&dir, "e");
        assert_eq!(stats.legacy, 2);
        assert_eq!(stats.loaded, 2);
        // The journal supersedes one legacy record...
        let mut newer = rec("a", "e");
        newer.np = 9.0;
        store.append(&newer).unwrap();
        // ...and an explicit compaction migrates everything into frames.
        store.compact().unwrap();
        assert!(!dir.join(LEGACY_SEGMENT_FILE).exists());
        drop(store);

        let (store, stats) = open(&dir, "e");
        assert_eq!(
            stats.legacy, 0,
            "legacy file renamed aside after compaction"
        );
        assert_eq!(stats.loaded, 2);
        let a = store.live_records().find(|r| r.fingerprint == "a").unwrap();
        assert_eq!(a.np, 9.0, "journal copy wins over legacy copy");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_triggers_past_dead_threshold_and_shrinks_the_journal() {
        let dir = scratch("compact");
        let (mut store, _) = DecisionStore::open(&dir, "e", 4).unwrap();
        // Re-append the same fingerprint: each append supersedes the last.
        for i in 0..6 {
            let mut r = rec("hot", "e");
            r.np = f64::from(i);
            store.append(&r).unwrap();
        }
        assert!(store.compactions() >= 1, "threshold crossed at 4 dead");
        assert_eq!(store.live_len(), 1);
        let text = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(
            text.lines().count() <= 2,
            "journal rewritten to live records: {text}"
        );
        drop(store);
        let (store, stats) = open(&dir, "e");
        assert_eq!(stats.loaded, 1);
        assert_eq!(store.live_records().next().unwrap().np, 5.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
