//! The content-addressed decision cache.
//!
//! A tuning decision is a pure function of `(canonicalised kernel source,
//! kernel name, device profile, launch geometry)` — the
//! [`grover_core::tune_key`] fingerprint — *at one pass revision*. The
//! cache therefore has two layers:
//!
//! * [`DecisionCache`]: an in-memory LRU serving hot keys without locks
//!   held across measurements;
//! * [`DecisionStore`]: an append-only JSONL segment under `--cache-dir`,
//!   flushed per write (kill-safe) and replayed on boot to warm-start the
//!   LRU. Entries carry the pass-version *epoch*
//!   ([`grover_core::pass_fingerprint`]); entries from another epoch are
//!   skipped at load, so bumping [`grover_core::TRANSFORM_REVISION`]
//!   invalidates every persisted decision without deleting history.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use grover_obs::json::{self, Json, Obj};
use grover_tuner::Decision;

/// The serialisable form of one cached tuning decision.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// The [`grover_core::tune_key`] fingerprint, 32 hex digits.
    pub fingerprint: String,
    /// Pass-version epoch the decision was produced under.
    pub epoch: String,
    /// Device profile name.
    pub device: String,
    /// Kernel name.
    pub kernel: String,
    /// `Choice::kind()` tag.
    pub choice: String,
    /// Normalised performance `t_with / t_without`.
    pub np: f64,
    /// Simulated cycles with local memory.
    pub cycles_with: u64,
    /// Simulated cycles without local memory.
    pub cycles_without: u64,
    /// `FallbackReason::kind()` tag, when demoted.
    pub fallback_kind: Option<String>,
    /// Human-readable fallback detail, when demoted.
    pub fallback_detail: Option<String>,
}

impl DecisionRecord {
    /// Build a record from a tuner [`Decision`].
    pub fn from_decision(
        fingerprint: &str,
        epoch: &str,
        kernel: &str,
        d: &Decision,
    ) -> DecisionRecord {
        DecisionRecord {
            fingerprint: fingerprint.to_string(),
            epoch: epoch.to_string(),
            device: d.device.clone(),
            kernel: kernel.to_string(),
            choice: d.choice.kind().to_string(),
            np: d.np,
            cycles_with: d.cycles_with,
            cycles_without: d.cycles_without,
            fallback_kind: d.fallback.as_ref().map(|f| f.kind().to_string()),
            fallback_detail: d.fallback.as_ref().map(|f| f.to_string()),
        }
    }

    /// Render as one JSON object (one store line).
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .str("fingerprint", &self.fingerprint)
            .str("epoch", &self.epoch)
            .str("device", &self.device)
            .str("kernel", &self.kernel)
            .str("choice", &self.choice)
            .f64("np", self.np)
            .u64("cycles_with", self.cycles_with)
            .u64("cycles_without", self.cycles_without);
        obj = match (&self.fallback_kind, &self.fallback_detail) {
            (Some(k), Some(d)) => obj.raw(
                "fallback",
                &Obj::new().str("kind", k).str("detail", d).finish(),
            ),
            _ => obj.null("fallback"),
        };
        obj.finish()
    }

    /// Parse one store line.
    pub fn from_json(v: &Json) -> Result<DecisionRecord, String> {
        let field = |k: &str| {
            v.str_of(k)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field `{k}`"))
        };
        let (fallback_kind, fallback_detail) = match v.get("fallback") {
            Some(Json::Obj(_)) => {
                let f = v.get("fallback").unwrap();
                (
                    f.str_of("kind").map(str::to_string),
                    f.str_of("detail").map(str::to_string),
                )
            }
            _ => (None, None),
        };
        Ok(DecisionRecord {
            fingerprint: field("fingerprint")?,
            epoch: field("epoch")?,
            device: field("device")?,
            kernel: field("kernel")?,
            choice: field("choice")?,
            np: v.f64_of("np").ok_or("missing field `np`")?,
            cycles_with: v
                .u64_of("cycles_with")
                .ok_or("missing field `cycles_with`")?,
            cycles_without: v
                .u64_of("cycles_without")
                .ok_or("missing field `cycles_without`")?,
            fallback_kind,
            fallback_detail,
        })
    }
}

/// In-memory LRU over [`DecisionRecord`]s, keyed by fingerprint.
pub struct DecisionCache {
    capacity: usize,
    map: HashMap<String, (DecisionRecord, u64)>,
    order: BTreeMap<u64, String>,
    tick: u64,
    evictions: u64,
}

impl DecisionCache {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> DecisionCache {
        DecisionCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up a fingerprint, marking the entry most-recently used.
    pub fn get(&mut self, fingerprint: &str) -> Option<DecisionRecord> {
        self.tick += 1;
        let tick = self.tick;
        let (rec, used) = self.map.get_mut(fingerprint)?;
        self.order.remove(used);
        *used = tick;
        self.order.insert(tick, fingerprint.to_string());
        Some(rec.clone())
    }

    /// Insert (or refresh) a record, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, rec: DecisionRecord) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, used)) = self.map.get(&rec.fingerprint) {
            self.order.remove(used);
        } else if self.map.len() >= self.capacity {
            // Evict the coldest entry (smallest tick).
            if let Some((&cold, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&cold) {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.order.insert(tick, rec.fingerprint.clone());
        self.map.insert(rec.fingerprint.clone(), (rec, tick));
    }
}

/// What a store load found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Records loaded into the cache.
    pub loaded: usize,
    /// Records skipped because their epoch differs from the current pass
    /// fingerprint (invalidated by a pass-version bump).
    pub stale_epoch: usize,
    /// Lines that failed to parse (truncated writes from a killed
    /// process, manual edits).
    pub corrupt: usize,
}

/// The persistent JSONL segment behind the in-memory LRU.
pub struct DecisionStore {
    path: PathBuf,
    out: BufWriter<File>,
}

/// File name of the decision segment inside `--cache-dir`.
pub const SEGMENT_FILE: &str = "decisions.jsonl";

impl DecisionStore {
    /// Open (creating if needed) the store under `dir`.
    pub fn open(dir: &Path) -> std::io::Result<DecisionStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(SEGMENT_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(DecisionStore {
            path,
            out: BufWriter::new(file),
        })
    }

    /// Path of the underlying segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay the segment into `cache`, keeping only entries of the given
    /// epoch. Later lines win over earlier ones (the segment is append-only,
    /// so re-tuned keys appear multiple times).
    pub fn load_into(dir: &Path, epoch: &str, cache: &mut DecisionCache) -> LoadStats {
        let mut stats = LoadStats::default();
        let Ok(text) = std::fs::read_to_string(dir.join(SEGMENT_FILE)) else {
            return stats;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(line).and_then(|v| DecisionRecord::from_json(&v)) {
                Ok(rec) if rec.epoch == epoch => {
                    cache.insert(rec);
                    stats.loaded += 1;
                }
                Ok(_) => stats.stale_epoch += 1,
                Err(_) => stats.corrupt += 1,
            }
        }
        stats
    }

    /// Append one record and flush it to disk (kill-safe persistence:
    /// every published decision survives an abrupt exit).
    pub fn append(&mut self, rec: &DecisionRecord) -> std::io::Result<()> {
        writeln!(self.out, "{}", rec.to_json())?;
        self.out.flush()
    }

    /// Flush buffered writes (a no-op after `append`, kept for the
    /// graceful-shutdown path's explicit contract).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: &str, epoch: &str) -> DecisionRecord {
        DecisionRecord {
            fingerprint: fp.to_string(),
            epoch: epoch.to_string(),
            device: "SNB".to_string(),
            kernel: "k".to_string(),
            choice: "without_local_memory".to_string(),
            np: 1.25,
            cycles_with: 100,
            cycles_without: 80,
            fallback_kind: None,
            fallback_detail: None,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = rec("ab", "e1");
        r.fallback_kind = Some("deadline".into());
        r.fallback_detail = Some("took too long".into());
        let parsed = DecisionRecord::from_json(&json::parse(&r.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut c = DecisionCache::new(2);
        c.insert(rec("a", "e"));
        c.insert(rec("b", "e"));
        assert!(c.get("a").is_some()); // a is now hottest
        c.insert(rec("c", "e")); // evicts b
        assert_eq!(c.evictions(), 1);
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = DecisionCache::new(2);
        c.insert(rec("a", "e"));
        c.insert(rec("a", "e"));
        c.insert(rec("b", "e"));
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn store_roundtrips_and_filters_epochs() {
        let dir = std::env::temp_dir().join(format!("grover-serve-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut store = DecisionStore::open(&dir).unwrap();
            store.append(&rec("a", "new")).unwrap();
            store.append(&rec("b", "old")).unwrap();
            store.append(&rec("c", "new")).unwrap();
        }
        // Simulate a truncated line from a killed process.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(SEGMENT_FILE))
                .unwrap();
            write!(f, "{{\"fingerprint\":\"tr").unwrap();
        }
        let mut cache = DecisionCache::new(16);
        let stats = DecisionStore::load_into(&dir, "new", &mut cache);
        assert_eq!(
            stats,
            LoadStats {
                loaded: 2,
                stale_epoch: 1,
                corrupt: 1
            }
        );
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "stale epoch must be invalidated");
        assert!(cache.get("c").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_lines_win_on_replay() {
        let dir = std::env::temp_dir().join(format!("grover-serve-store2-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut store = DecisionStore::open(&dir).unwrap();
            let mut first = rec("a", "e");
            first.np = 1.0;
            store.append(&first).unwrap();
            let mut second = rec("a", "e");
            second.np = 2.0;
            store.append(&second).unwrap();
        }
        let mut cache = DecisionCache::new(16);
        DecisionStore::load_into(&dir, "e", &mut cache);
        assert_eq!(cache.get("a").unwrap().np, 2.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
