//! Checksummed, length-prefixed journal framing for the decision store.
//!
//! Every record is one line:
//!
//! ```text
//! J1 <payload-len> <crc32-hex> <json-payload>\n
//! ```
//!
//! The length prefix detects *torn* records (a crash mid-`write` leaves a
//! short tail), the CRC-32 detects *corrupt* ones (bit flips, manual
//! edits). Replay classifies every line instead of failing: intact records
//! load, damaged ones are skipped and counted, and — crucially — damage is
//! contained to the damaged line, so every intact record before *and*
//! after it is salvaged. Lines that are not `J1`-framed but parse as bare
//! JSON are accepted as *legacy* records (the pre-journal
//! `decisions.jsonl` format), giving a seamless warm-start upgrade path.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Frame marker for version 1 of the journal record format.
pub const FRAME_TAG: &str = "J1";

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise form —
/// the journal appends are I/O-bound, not checksum-bound.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// Frame one JSON payload as a journal line (including the trailing
/// newline). The payload must not contain raw newlines — the JSON writer
/// escapes control characters, so serialised records never do.
pub fn frame(payload: &str) -> String {
    format!(
        "{FRAME_TAG} {} {:08x} {payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// How replay classified one journal line.
#[derive(Debug, PartialEq, Eq)]
pub enum Line<'a> {
    /// An intact `J1` record; the JSON payload, checksum-verified.
    Record(&'a str),
    /// A bare JSON line from the pre-journal format.
    Legacy(&'a str),
    /// A record cut short by a crash mid-write (only possible as the
    /// file's unterminated tail).
    Torn,
    /// A record whose length or checksum does not match its payload, or
    /// that is unparseable mid-file.
    Corrupt,
}

/// Classify one line of the journal. `terminated` is whether the line was
/// followed by a newline in the file — an undersized record with no
/// terminator is *torn* (crash mid-write), with one it is *corrupt*
/// (something rewrote history).
pub fn classify(line: &str, terminated: bool) -> Line<'_> {
    let Some(rest) = line.strip_prefix("J1 ") else {
        // Not framed: a legacy bare-JSON line, or garbage.
        if looks_like_json(line) {
            return Line::Legacy(line);
        }
        return if terminated {
            Line::Corrupt
        } else {
            Line::Torn
        };
    };
    let Some((len_s, rest)) = rest.split_once(' ') else {
        return if terminated {
            Line::Corrupt
        } else {
            Line::Torn
        };
    };
    let Some((crc_s, payload)) = rest.split_once(' ') else {
        return if terminated {
            Line::Corrupt
        } else {
            Line::Torn
        };
    };
    let (Ok(len), Ok(crc)) = (len_s.parse::<usize>(), u32::from_str_radix(crc_s, 16)) else {
        return if terminated {
            Line::Corrupt
        } else {
            Line::Torn
        };
    };
    if payload.len() < len && !terminated {
        return Line::Torn;
    }
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return Line::Corrupt;
    }
    Line::Record(payload)
}

fn looks_like_json(line: &str) -> bool {
    line.trim_start().starts_with('{')
}

/// Split raw journal bytes into `(line, terminated)` pairs. Records never
/// contain raw newlines (the JSON writer escapes them), so the journal is
/// strictly line-oriented even though it is not plain JSONL.
pub fn lines(text: &str) -> impl Iterator<Item = (&str, bool)> {
    let unterminated_tail = !text.is_empty() && !text.ends_with('\n');
    let count = text.split('\n').count();
    text.split('\n').enumerate().filter_map(move |(i, line)| {
        if line.is_empty() {
            return None;
        }
        let is_last = i + 1 == count;
        Some((line, !(is_last && unterminated_tail)))
    })
}

/// Fault-injection shim: consult the named I/O fault site when the
/// feature is on, otherwise a no-op.
#[cfg(feature = "fault-injection")]
pub(crate) fn io_fault(site: &str) -> Result<Option<usize>, std::io::Error> {
    grover_runtime::fault::io_fault(site)
}

#[cfg(not(feature = "fault-injection"))]
pub(crate) fn io_fault(_site: &str) -> Result<Option<usize>, std::io::Error> {
    Ok(None)
}

/// Append one framed record to `out`, honouring the `journal.append`
/// fault site (short-circuit or torn write), and flush.
pub(crate) fn append_framed(out: &mut File, payload: &str) -> std::io::Result<()> {
    let framed = frame(payload);
    match io_fault("journal.append")? {
        Some(torn_at) => {
            // A torn write: part of the record reaches the file, then the
            // "crash". The caller must treat this as a failed append.
            let n = torn_at.min(framed.len());
            out.write_all(&framed.as_bytes()[..n])?;
            out.flush()?;
            Err(std::io::Error::other("fault-injection: torn journal write"))
        }
        None => {
            out.write_all(framed.as_bytes())?;
            out.flush()
        }
    }
}

/// Atomically replace the journal at `path` with `records` (already
/// serialised payloads): write a sibling temp file, fsync it, rename over
/// the original. A crash at any point leaves either the old or the new
/// journal, never a mix. Honours the `journal.fsync` fault site.
pub(crate) fn rewrite_atomic(path: &Path, records: &[String]) -> std::io::Result<()> {
    let tmp = path.with_extension("journal.tmp");
    {
        let mut out = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        for payload in records {
            out.write_all(frame(payload).as_bytes())?;
        }
        if let Err(e) = io_fault("journal.fsync") {
            drop(out);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        out.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself where the platform allows it; failure to
    // fsync the directory only weakens power-loss guarantees, not
    // kill-safety, so it is non-fatal.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips() {
        let payload = r#"{"k":"v"}"#;
        let line = frame(payload);
        assert!(line.ends_with('\n'));
        assert_eq!(
            classify(line.trim_end_matches('\n'), true),
            Line::Record(payload)
        );
    }

    #[test]
    fn short_unterminated_tail_is_torn() {
        let line = frame(r#"{"k":"v"}"#);
        let cut = &line[..line.len() - 4]; // lose the tail + newline
        assert_eq!(classify(cut, false), Line::Torn);
    }

    #[test]
    fn short_terminated_record_is_corrupt() {
        let line = frame(r#"{"k":"v"}"#);
        let cut = &line[..line.len() - 4];
        assert_eq!(classify(cut, true), Line::Corrupt);
    }

    #[test]
    fn bit_flip_is_corrupt_even_at_full_length() {
        let line = frame(r#"{"k":"value"}"#);
        let flipped = line.trim_end_matches('\n').replace("value", "vblue");
        assert_eq!(classify(&flipped, true), Line::Corrupt);
    }

    #[test]
    fn bare_json_is_legacy() {
        assert_eq!(
            classify(r#"{"fingerprint":"ab"}"#, true),
            Line::Legacy(r#"{"fingerprint":"ab"}"#)
        );
    }

    #[test]
    fn lines_marks_unterminated_tail() {
        let text = "a\nb\nc";
        let got: Vec<_> = lines(text).collect();
        assert_eq!(got, vec![("a", true), ("b", true), ("c", false)]);
        let got: Vec<_> = lines("a\nb\n").collect();
        assert_eq!(got, vec![("a", true), ("b", true)]);
    }
}
