//! A circuit breaker around the tuner.
//!
//! Consecutive tuner infrastructure failures (panics, execution errors,
//! deadline blowouts — *not* client errors like unknown devices) trip the
//! breaker open. While open, tune misses are served a conservative
//! degraded decision ("keep the original kernel") instead of a 500 — the
//! service stays useful for cache hits and keeps answering misses with
//! the safe default rather than hammering a failing tuner. After a
//! cooldown, one *probe* request is let through (half-open); success
//! closes the breaker, failure re-opens it for another cooldown.
//!
//! State machine:
//!
//! ```text
//! Closed --(threshold consecutive failures)--> Open
//! Open   --(cooldown elapsed, next admit)----> HalfOpen (that admit probes)
//! HalfOpen --(probe success)--> Closed
//! HalfOpen --(probe failure)--> Open
//! HalfOpen --(probe stuck > cooldown)--> another probe is admitted
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the breaker decided for one tune miss.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: run the tuner normally.
    Allow,
    /// Breaker half-open: run the tuner; this request is the probe whose
    /// outcome closes or re-opens the circuit.
    AllowProbe,
    /// Breaker open: do not run the tuner; serve the degraded decision.
    Degrade,
}

#[derive(Debug)]
enum State {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Tripped; no tuner work until `until`.
    Open { until: Instant },
    /// One probe in flight since `started`.
    HalfOpen { started: Instant },
}

/// The breaker itself. All transitions happen under one small mutex —
/// contention is negligible next to a tuner race.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
    opens: std::sync::atomic::AtomicU64,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// cooling down for `cooldown` before probing.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(State::Closed { failures: 0 }),
            opens: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Decide the fate of one tune miss.
    pub fn admit(&self) -> Admit {
        let mut state = self.state.lock().expect("breaker poisoned");
        let now = Instant::now();
        match *state {
            State::Closed { .. } => Admit::Allow,
            State::Open { until } => {
                if now >= until {
                    *state = State::HalfOpen { started: now };
                    Admit::AllowProbe
                } else {
                    Admit::Degrade
                }
            }
            State::HalfOpen { started } => {
                // Self-heal a stuck probe (its worker died without
                // reporting): past one cooldown, admit another.
                if now.duration_since(started) > self.cooldown {
                    *state = State::HalfOpen { started: now };
                    Admit::AllowProbe
                } else {
                    Admit::Degrade
                }
            }
        }
    }

    /// Report a tuner success (including a probe's).
    pub fn record_success(&self) {
        let mut state = self.state.lock().expect("breaker poisoned");
        *state = State::Closed { failures: 0 };
    }

    /// Report a tuner infrastructure failure (including a probe's).
    pub fn record_failure(&self) {
        let mut state = self.state.lock().expect("breaker poisoned");
        let now = Instant::now();
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    *state = State::Open {
                        until: now + self.cooldown,
                    };
                    self.opens
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    *state = State::Closed { failures };
                }
            }
            State::HalfOpen { .. } => {
                *state = State::Open {
                    until: now + self.cooldown,
                };
                self.opens
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            State::Open { .. } => {}
        }
    }

    /// 0 = closed, 1 = open, 2 = half-open (the `/metrics` gauge).
    pub fn state_code(&self) -> u64 {
        match *self.state.lock().expect("breaker poisoned") {
            State::Closed { .. } => 0,
            State::Open { .. } => 1,
            State::HalfOpen { .. } => 2,
        }
    }

    /// How many times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_open_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(b.admit(), Admit::Allow);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admit::Allow, "below threshold stays closed");
        b.record_failure();
        assert_eq!(b.admit(), Admit::Degrade);
        assert_eq!(b.state_code(), 1);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.admit(), Admit::Allow, "non-consecutive failures ignored");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure();
        assert_eq!(b.admit(), Admit::Degrade);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admit::AllowProbe);
        assert_eq!(b.state_code(), 2);
        // Others during the probe still degrade.
        assert_eq!(b.admit(), Admit::Degrade);
        b.record_failure();
        assert_eq!(b.admit(), Admit::Degrade, "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admit::AllowProbe);
        b.record_success();
        assert_eq!(b.admit(), Admit::Allow, "successful probe closes");
        assert_eq!(b.state_code(), 0);
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn stuck_probe_self_heals_after_a_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admit::AllowProbe);
        // The probe never reports back; after another cooldown a new
        // probe is admitted instead of degrading forever.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit(), Admit::AllowProbe);
    }
}
