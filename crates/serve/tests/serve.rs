//! End-to-end tests of the tuning-cache service: real sockets, real
//! worker threads, real persistence — only the clock-sensitive bits
//! (queue overflow) use the injected handler delay.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use grover_obs::json::{self, Json};
use grover_obs::{MemoryRecorder, NoopRecorder};
use grover_serve::{http_request, ServeConfig, Server};

/// A kernel the pass fully transforms (the staging pattern).
const STAGE: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

/// Same program, different formatting/comments — same fingerprint.
const STAGE_REFORMATTED: &str = "__kernel void stage(__global float* in,   __global float* out) {
    __local float lm[64]; // staging buffer
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx]; /* stage */
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

/// A kernel the pass refuses: the local buffer is never written.
const NEVER_WRITTEN: &str = "__kernel void nw(__global float* out) {
    __local float lm[16];
    out[get_global_id(0)] = lm[0];
}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grover-serve-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        cache_dir: temp_dir(tag),
        ..ServeConfig::default()
    }
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg, Arc::new(NoopRecorder)).expect("server starts")
}

fn tune_body(source: &str, device: &str, global: u64, local: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"{device}\", \"global\": [{global}], \"local\": [{local}]}}",
        json::escape(source)
    )
}

/// Raw request keeping the full response text (headers included) — the
/// typed client strips headers, and some tests assert on them.
fn raw_request(addr: std::net::SocketAddr, method: &str, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(
        format!("{method} {path} HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    text
}

fn post(server: &Server, path: &str, body: &str) -> (u16, Json) {
    let (status, text) =
        http_request(server.addr(), "POST", path, Some(body)).expect("request succeeds");
    let parsed = json::parse(&text).unwrap_or(Json::Null);
    (status, parsed)
}

#[test]
fn healthz_metrics_and_routing() {
    let server = start(config("routing"));
    let (status, body) = http_request(server.addr(), "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = http_request(server.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("grover_serve_requests_total"), "{body}");
    assert!(
        body.contains("grover_serve_request_latency_us_bucket"),
        "{body}"
    );

    let (status, _) = http_request(server.addr(), "GET", "/no/such/route", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(server.addr(), "GET", "/v1/tune", None).unwrap();
    assert_eq!(status, 405);
    std::fs::remove_dir_all(temp_dir("routing")).ok();
    server.shutdown();
}

#[test]
fn tune_caches_and_never_races_twice() {
    let rec = Arc::new(MemoryRecorder::new());
    let server = Server::start(
        ServeConfig {
            cache_dir: temp_dir("noseconderace"),
            ..ServeConfig::default()
        },
        rec.clone(),
    )
    .unwrap();
    let body = tune_body(STAGE, "SNB", 256, 64);

    let (status, first) = post(&server, "/v1/tune", &body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.bool_of("cached"), Some(false));
    assert!(first.str_of("choice").is_some());
    assert_eq!(
        first.str_of("pass_fingerprint"),
        Some(grover_core::pass_fingerprint().as_str())
    );

    // Identical request: served from cache, decision unchanged.
    let (status, second) = post(&server, "/v1/tune", &body);
    assert_eq!(status, 200);
    assert_eq!(second.bool_of("cached"), Some(true));
    assert_eq!(second.str_of("choice"), first.str_of("choice"));
    assert_eq!(second.u64_of("cycles_with"), first.u64_of("cycles_with"));
    assert_eq!(second.str_of("fingerprint"), first.str_of("fingerprint"));

    // Reformatted source canonicalises to the same fingerprint: hit.
    let (status, third) = post(
        &server,
        "/v1/tune",
        &tune_body(STAGE_REFORMATTED, "SNB", 256, 64),
    );
    assert_eq!(status, 200);
    assert_eq!(third.bool_of("cached"), Some(true), "{third:?}");

    // Different launch geometry: a different key, a fresh race.
    let (_, fourth) = post(&server, "/v1/tune", &tune_body(STAGE, "SNB", 512, 64));
    assert_eq!(fourth.bool_of("cached"), Some(false));

    let m = server.metrics();
    assert_eq!(m.cache_hits.get(), 2);
    assert_eq!(m.cache_misses.get(), 2);
    assert_eq!(
        m.tune_races.get(),
        2,
        "exactly one race per distinct key — hits never re-measure"
    );

    // The spans agree with the counters: one serve.tune per miss, and
    // the request spans carry the hit/miss attribute.
    let snap = rec.snapshot();
    assert_eq!(snap.spans_named("serve.tune").len(), 2);
    let cache_attrs: Vec<&str> = snap
        .spans_named("serve.request")
        .iter()
        .filter_map(|s| s.attr_str("cache"))
        .collect();
    assert_eq!(
        cache_attrs.iter().filter(|a| **a == "hit").count(),
        2,
        "{cache_attrs:?}"
    );
    assert_eq!(cache_attrs.iter().filter(|a| **a == "miss").count(), 2);
    std::fs::remove_dir_all(temp_dir("noseconderace")).ok();
    server.shutdown();
}

#[test]
fn compile_endpoint_returns_report_and_ir() {
    let server = start(config("compile"));
    let body = format!("{{\"source\": {}}}", json::escape(STAGE));
    let (status, resp) = post(&server, "/v1/compile", &body);
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.str_of("kernel"), Some("stage"));
    assert_eq!(resp.str_of("fingerprint").map(str::len), Some(32));
    assert_eq!(
        resp.str_of("pass_fingerprint"),
        Some(grover_core::pass_fingerprint().as_str())
    );
    let report = resp.get("report").expect("report present");
    assert_eq!(report.bool_of("all_removed"), Some(true), "{report:?}");
    assert!(resp.str_of("original_ir").unwrap().contains("local"));
    assert!(!resp.str_of("transformed_ir").unwrap().is_empty());
    std::fs::remove_dir_all(temp_dir("compile")).ok();
    server.shutdown();
}

#[test]
fn cache_warm_starts_across_restart() {
    let dir = temp_dir("warmstart");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let body = tune_body(STAGE, "Fermi", 256, 64);

    let first_run = start(cfg.clone());
    let (status, first) = post(&first_run, "/v1/tune", &body);
    assert_eq!(status, 200);
    assert_eq!(first.bool_of("cached"), Some(false));
    first_run.shutdown();

    // "Process restart": a fresh server over the same cache dir.
    let second_run = start(cfg);
    let (status, second) = post(&second_run, "/v1/tune", &body);
    assert_eq!(status, 200);
    assert_eq!(second.bool_of("cached"), Some(true), "{second:?}");
    assert_eq!(second.str_of("choice"), first.str_of("choice"));
    let m = second_run.metrics();
    assert_eq!(
        m.tune_races.get(),
        0,
        "warm-started entry must not re-measure"
    );
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn epoch_bump_invalidates_persisted_decisions() {
    let dir = temp_dir("epochbump");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let body = tune_body(STAGE, "SNB", 128, 64);

    let first_run = start(cfg.clone());
    let (_, first) = post(&first_run, "/v1/tune", &body);
    assert_eq!(first.bool_of("cached"), Some(false));
    first_run.shutdown();

    // Simulate a pass-version bump: rewrite the stored epoch (re-framing
    // each record so the checksum still matches — this tests the epoch
    // comparison, not corruption detection). A real bump changes
    // `pass_fingerprint()`; editing the store to a stale epoch exercises
    // the same comparison.
    let segment = dir.join("decisions.journal");
    let text = std::fs::read_to_string(&segment).unwrap();
    let mut stale = String::new();
    for line in text.lines() {
        let grover_serve::journal::Line::Record(payload) =
            grover_serve::journal::classify(line, true)
        else {
            panic!("journal line must be intact: {line}");
        };
        let edited = payload.replace(&grover_core::pass_fingerprint(), "grover-0.0.0+rev0");
        assert_ne!(payload, edited, "epoch must appear in the persisted record");
        stale.push_str(&grover_serve::journal::frame(&edited));
    }
    std::fs::write(&segment, stale).unwrap();

    let second_run = start(cfg);
    let (status, second) = post(&second_run, "/v1/tune", &body);
    assert_eq!(status, 200);
    assert_eq!(
        second.bool_of("cached"),
        Some(false),
        "stale-epoch entries must be invalidated on load"
    );
    assert_eq!(second_run.metrics().tune_races.get(), 1);
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression (sequence-aware tune keys): a pass-revision bump changes
/// only the `+pp` suffix of the epoch — persisted decisions from the old
/// per-pass revisions must be invalidated exactly like a whole-transform
/// bump.
#[test]
fn pass_revision_bump_invalidates_persisted_decisions() {
    let dir = temp_dir("ppbump");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let body = tune_body(STAGE, "SNB", 128, 64);

    let first_run = start(cfg.clone());
    let (_, first) = post(&first_run, "/v1/tune", &body);
    assert_eq!(first.bool_of("cached"), Some(false));
    first_run.shutdown();

    // Rewrite the stored epoch so only one per-pass revision digit
    // differs — the stale side of a single pass's revision bump.
    let current = grover_core::pass_fingerprint();
    let pp = current
        .find("+pp")
        .expect("epoch carries per-pass revisions");
    // Bump the last per-pass revision digit: "…+pp1.1.1.1" → "…+pp1.1.1.9".
    let stale_epoch = format!("{}9", &current[..current.len() - 1]);
    assert_ne!(stale_epoch, current);
    assert!(pp < current.len());
    let segment = dir.join("decisions.journal");
    let text = std::fs::read_to_string(&segment).unwrap();
    let mut stale = String::new();
    for line in text.lines() {
        let grover_serve::journal::Line::Record(payload) =
            grover_serve::journal::classify(line, true)
        else {
            panic!("journal line must be intact: {line}");
        };
        let edited = payload.replace(&current, &stale_epoch);
        assert_ne!(payload, edited, "epoch must appear in the persisted record");
        stale.push_str(&grover_serve::journal::frame(&edited));
    }
    std::fs::write(&segment, stale).unwrap();

    let second_run = start(cfg);
    let (status, second) = post(&second_run, "/v1/tune", &body);
    assert_eq!(status, 200);
    assert_eq!(
        second.bool_of("cached"),
        Some(false),
        "a per-pass revision bump must invalidate old decisions"
    );
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression (sequence-aware tune keys): two explicit `passes` values for
/// the same source/device/geometry must key separately — each gets its own
/// race, its own cache entry, and neither ever answers for the other.
#[test]
fn two_sequences_for_the_same_source_never_collide() {
    let server = start(config("seqkeys"));
    let with_passes = |spec: &str| {
        format!(
            "{{\"source\": {}, \"device\": \"SNB\", \"global\": [256], \"local\": [64], \"passes\": \"{spec}\"}}",
            json::escape(STAGE)
        )
    };
    let a = with_passes("local-removal,barrier-elim,index-simplify");
    let b = with_passes("local-removal,barrier-elim,index-simplify,remap");

    let (status, ra) = post(&server, "/v1/tune", &a);
    assert_eq!(status, 200, "{ra:?}");
    assert_eq!(ra.bool_of("cached"), Some(false));
    assert_eq!(
        ra.str_of("sequence"),
        Some("local-removal,barrier-elim,index-simplify")
    );
    let (status, rb) = post(&server, "/v1/tune", &b);
    assert_eq!(status, 200, "{rb:?}");
    assert_eq!(
        rb.bool_of("cached"),
        Some(false),
        "b must not hit a's entry"
    );
    assert_eq!(
        rb.str_of("sequence"),
        Some("local-removal,barrier-elim,index-simplify,remap")
    );
    assert_ne!(
        ra.str_of("fingerprint"),
        rb.str_of("fingerprint"),
        "sequence identity must be part of the tune key"
    );

    // The default (auto-search) key is a third identity: the candidate-set
    // race is not interchangeable with any single explicit sequence.
    let auto = tune_body(STAGE, "SNB", 256, 64);
    let (_, rauto) = post(&server, "/v1/tune", &auto);
    assert_eq!(rauto.bool_of("cached"), Some(false));
    assert_ne!(rauto.str_of("fingerprint"), ra.str_of("fingerprint"));
    assert_ne!(rauto.str_of("fingerprint"), rb.str_of("fingerprint"));

    // Each entry answers only its own key.
    assert_eq!(
        post(&server, "/v1/tune", &a).1.bool_of("cached"),
        Some(true)
    );
    assert_eq!(
        post(&server, "/v1/tune", &b).1.bool_of("cached"),
        Some(true)
    );
    assert_eq!(
        post(&server, "/v1/tune", &auto).1.bool_of("cached"),
        Some(true)
    );
    let m = server.metrics();
    assert_eq!(m.cache_misses.get(), 3);
    assert_eq!(m.cache_hits.get(), 3);

    // An illegal sequence is a 400 before any tuner work.
    let (status, resp) = post(
        &server,
        "/v1/tune",
        &with_passes("barrier-elim,local-removal"),
    );
    assert_eq!(status, 400, "{resp:?}");
    assert_eq!(resp.str_of("kind"), Some("invalid_sequence"));

    std::fs::remove_dir_all(temp_dir("seqkeys")).ok();
    server.shutdown();
}

/// The winning sequence is part of the decision: reported on the fresh
/// response, on cache hits, and after a restart from the journal.
#[test]
fn winning_sequence_is_reported_and_survives_restart() {
    let dir = temp_dir("seqrestart");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let body = tune_body(STAGE, "SNB", 256, 64);

    let first_run = start(cfg.clone());
    let (_, fresh) = post(&first_run, "/v1/tune", &body);
    let winner = fresh
        .str_of("sequence")
        .expect("sequence present")
        .to_string();
    assert!(
        winner.starts_with("local-removal"),
        "winner must be a legal sequence: {winner}"
    );
    let (_, hit) = post(&first_run, "/v1/tune", &body);
    assert_eq!(hit.str_of("sequence"), Some(winner.as_str()));
    first_run.shutdown();

    let second_run = start(cfg);
    let (_, warm) = post(&second_run, "/v1/tune", &body);
    assert_eq!(warm.bool_of("cached"), Some(true));
    assert_eq!(
        warm.str_of("sequence"),
        Some(winner.as_str()),
        "the winning sequence must survive the journal round-trip"
    );
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lru_eviction_is_counted_and_survives_in_store() {
    let dir = temp_dir("eviction");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            cache_capacity: 1,
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let a = tune_body(STAGE, "SNB", 256, 64);
    let b = tune_body(STAGE, "Fermi", 256, 64);
    assert_eq!(
        post(&server, "/v1/tune", &a).1.bool_of("cached"),
        Some(false)
    );
    assert_eq!(
        post(&server, "/v1/tune", &b).1.bool_of("cached"),
        Some(false)
    );
    // `a` was evicted by `b` (capacity 1): tuning it again is a miss.
    assert_eq!(
        post(&server, "/v1/tune", &a).1.bool_of("cached"),
        Some(false)
    );
    let m = server.metrics();
    assert!(m.cache_evictions.get() >= 1);
    assert_eq!(m.cache_misses.get(), 3);
    server.shutdown();

    // The store kept every decision; a restart with default capacity
    // warm-starts both keys (later lines win).
    let revived = start(ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    });
    assert_eq!(
        post(&revived, "/v1/tune", &a).1.bool_of("cached"),
        Some(true)
    );
    assert_eq!(
        post(&revived, "/v1/tune", &b).1.bool_of("cached"),
        Some(true)
    );
    revived.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_400_on_malformed_requests() {
    let server = start(config("err400"));
    // Unparseable JSON.
    let (status, resp) = post(&server, "/v1/tune", "{not json");
    assert_eq!(status, 400);
    assert_eq!(resp.str_of("kind"), Some("bad_request"));
    // Missing required fields.
    let (status, _) = post(&server, "/v1/tune", "{\"source\": \"x\"}");
    assert_eq!(status, 400);
    // Unknown device.
    let (status, resp) = post(
        &server,
        "/v1/tune",
        &tune_body(STAGE, "NoSuchDevice", 256, 64),
    );
    assert_eq!(status, 400);
    assert!(resp.str_of("error").unwrap().contains("unknown device"));
    // Launch geometry that does not divide.
    let (status, _) = post(&server, "/v1/tune", &tune_body(STAGE, "SNB", 100, 64));
    assert_eq!(status, 400);
    // Compile error.
    let (status, resp) = post(
        &server,
        "/v1/tune",
        &tune_body("__kernel void broken(", "SNB", 64, 64),
    );
    assert_eq!(status, 400);
    assert!(resp.str_of("error").unwrap().contains("compile error"));
    assert_eq!(server.metrics().errors_total.get(), 5);
    std::fs::remove_dir_all(temp_dir("err400")).ok();
    server.shutdown();
}

#[test]
fn error_422_pass_refusal_names_the_candidate_kind() {
    let server = start(config("err422"));
    let (status, resp) = post(
        &server,
        "/v1/tune",
        &tune_body(NEVER_WRITTEN, "SNB", 64, 16),
    );
    assert_eq!(status, 422, "{resp:?}");
    assert_eq!(resp.str_of("kind"), Some("pass_refusal"));
    let buffers = resp
        .get("report")
        .and_then(|r| r.get("buffers"))
        .and_then(Json::as_arr)
        .expect("report.buffers present");
    assert_eq!(buffers.len(), 1);
    assert_eq!(buffers[0].str_of("outcome"), Some("not_candidate"));
    assert_eq!(
        buffers[0].str_of("candidate_kind"),
        Some("never_written"),
        "{buffers:?}"
    );
    std::fs::remove_dir_all(temp_dir("err422")).ok();
    server.shutdown();
}

#[test]
fn error_429_when_the_queue_is_full() {
    let server = Server::start(
        ServeConfig {
            cache_dir: temp_dir("err429"),
            workers: 1,
            queue_depth: 1,
            handler_delay: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || raw_request(addr, "GET", "/healthz")))
        .collect();
    let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let rejected: Vec<&String> = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 429"))
        .collect();
    let served = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 200"))
        .count();
    assert!(!rejected.is_empty(), "{responses:?}");
    assert!(served >= 1, "{responses:?}");
    assert_eq!(rejected.len() + served, 6, "{responses:?}");
    for r in &rejected {
        assert!(r.contains("Retry-After: 1"), "429 carries Retry-After: {r}");
        assert!(r.contains("\"kind\":\"backpressure\""), "{r}");
        assert!(r.contains("\"status\":429"), "{r}");
    }
    assert_eq!(server.metrics().rejected_busy.get(), rejected.len() as u64);
    std::fs::remove_dir_all(temp_dir("err429")).ok();
    server.shutdown();
}

#[test]
fn error_504_when_the_deadline_expires() {
    let server = start(config("err504"));
    let body = format!(
        "{{\"source\": {}, \"device\": \"SNB\", \"global\": [256], \"local\": [64], \"deadline_ms\": 0}}",
        json::escape(STAGE)
    );
    let (status, resp) = post(&server, "/v1/tune", &body);
    assert_eq!(status, 504, "{resp:?}");
    assert_eq!(resp.str_of("kind"), Some("deadline"));
    assert_eq!(server.metrics().deadline_timeouts.get(), 1);
    std::fs::remove_dir_all(temp_dir("err504")).ok();
    server.shutdown();
}

#[test]
fn concurrent_clients_get_deterministic_decisions() {
    let server = Server::start(
        ServeConfig {
            cache_dir: temp_dir("stress"),
            workers: 2,
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let addr = server.addr();
    let bodies = [
        Arc::new(tune_body(STAGE, "SNB", 256, 64)),
        Arc::new(tune_body(STAGE, "Fermi", 256, 64)),
    ];
    let per_thread = 5usize;
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let body = bodies[t % bodies.len()].clone();
            std::thread::spawn(move || {
                (0..per_thread)
                    .map(|_| {
                        let (status, text) =
                            http_request(addr, "POST", "/v1/tune", Some(&body)).unwrap();
                        assert_eq!(status, 200, "{text}");
                        let v = json::parse(&text).unwrap();
                        (
                            v.str_of("fingerprint").unwrap().to_string(),
                            v.str_of("choice").unwrap().to_string(),
                            v.u64_of("cycles_with").unwrap(),
                        )
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut by_key = std::collections::HashMap::new();
    let mut total = 0usize;
    for h in handles {
        for (fp, choice, cycles) in h.join().unwrap() {
            total += 1;
            let entry = by_key.entry(fp).or_insert_with(|| (choice.clone(), cycles));
            assert_eq!(
                (&entry.0, entry.1),
                (&choice, cycles),
                "same key must always yield the same decision"
            );
        }
    }
    assert_eq!(total, 40);
    assert_eq!(by_key.len(), 2, "two distinct tune keys");
    let m = server.metrics();
    assert_eq!(m.cache_hits.get() + m.cache_misses.get(), 40);
    // Singleflight coalescing: concurrent identical misses share one
    // race, so the race count equals the number of unique keys exactly.
    assert_eq!(
        m.tune_races.get(),
        2,
        "races-per-unique-key must be exactly 1"
    );
    std::fs::remove_dir_all(temp_dir("stress")).ok();
    server.shutdown();
}

#[test]
fn identical_misses_coalesce_to_one_race_per_key() {
    // The sharpest form of the coalescing invariant: N clients fire the
    // SAME cold key simultaneously; a handler delay widens the window so
    // all of them are in flight together. Exactly one race may run.
    let server = Server::start(
        ServeConfig {
            cache_dir: temp_dir("coalesce"),
            workers: 8,
            handler_delay: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let addr = server.addr();
    let body = Arc::new(tune_body(STAGE, "SNB", 256, 64));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let (status, text) = http_request(addr, "POST", "/v1/tune", Some(&body)).unwrap();
                assert_eq!(status, 200, "{text}");
                let v = json::parse(&text).unwrap();
                (
                    v.str_of("choice").unwrap().to_string(),
                    v.u64_of("cycles_with").unwrap(),
                )
            })
        })
        .collect();
    let decisions: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "all coalesced clients see the same decision: {decisions:?}"
    );
    let m = server.metrics();
    assert_eq!(
        m.tune_races.get(),
        1,
        "8 identical concurrent misses must run exactly 1 race"
    );
    assert_eq!(m.cache_hits.get() + m.cache_misses.get(), 8);
    assert_eq!(m.coalesce_timeouts.get(), 0);
    // At least the requests that arrived while the leader raced were
    // coalesced (some may arrive after it finished and hit the cache).
    let coalesced = m.tune_coalesced.get();
    let hits = m.cache_hits.get();
    assert_eq!(
        coalesced + hits,
        7,
        "everyone but the leader shared its race or hit"
    );
    std::fs::remove_dir_all(temp_dir("coalesce")).ok();
    server.shutdown();
}

#[test]
fn damaged_journal_salvages_every_intact_record_on_restart() {
    // Serve-level version of the store salvage test: tune three distinct
    // keys, then bit-flip the middle journal record and tear the file
    // mid-append. A restart must recover the two intact decisions and
    // count (not fail on) the damage.
    let dir = temp_dir("salvage");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let bodies = [
        tune_body(STAGE, "SNB", 256, 64),
        tune_body(STAGE, "Fermi", 256, 64),
        tune_body(STAGE, "SNB", 512, 64),
    ];
    let first_run = start(cfg.clone());
    for b in &bodies {
        assert_eq!(post(&first_run, "/v1/tune", b).0, 200);
    }
    first_run.shutdown();

    let journal = dir.join("decisions.journal");
    let text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    // Flip one byte inside the middle record's payload and append a torn
    // half-record (no trailing newline), as a crash mid-write would.
    let mut damaged = String::new();
    damaged.push_str(lines[0]);
    damaged.push('\n');
    let (head, tail) = lines[1].split_at(lines[1].len() / 2);
    let victim = tail.chars().find(|c| c.is_ascii_alphanumeric()).unwrap();
    damaged.push_str(&format!("{head}{}", tail.replacen(victim, "~", 1)));
    damaged.push('\n');
    damaged.push_str(lines[2]);
    damaged.push('\n');
    damaged.push_str(&lines[0][..lines[0].len() / 3]); // torn tail
    std::fs::write(&journal, damaged).unwrap();

    let second_run = start(cfg);
    let m = second_run.metrics();
    assert_eq!(m.journal_recovered.get(), 2);
    assert_eq!(m.journal_corrupt.get(), 1);
    assert_eq!(m.journal_torn.get(), 1);
    // Records 0 and 2 warm-started; record 1 must re-tune.
    assert_eq!(
        post(&second_run, "/v1/tune", &bodies[0])
            .1
            .bool_of("cached"),
        Some(true)
    );
    assert_eq!(
        post(&second_run, "/v1/tune", &bodies[2])
            .1
            .bool_of("cached"),
        Some(true)
    );
    assert_eq!(
        post(&second_run, "/v1/tune", &bodies[1])
            .1
            .bool_of("cached"),
        Some(false),
        "the corrupted record must not be served"
    );
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admin_shutdown_stops_the_server_and_flushes() {
    let dir = temp_dir("adminshutdown");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let addr = server.addr();
    let (_, resp) = post(&server, "/v1/tune", &tune_body(STAGE, "SNB", 256, 64));
    assert_eq!(resp.bool_of("cached"), Some(false));
    let (status, body) = http_request(addr, "POST", "/admin/shutdown", Some("")).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"));
    server.wait(); // returns because the endpoint triggered the stop

    // The listener is gone and the decision survived in the journal as
    // one intact checksummed frame.
    assert!(http_request(addr, "GET", "/healthz", None).is_err());
    let text = std::fs::read_to_string(dir.join("decisions.journal")).unwrap();
    assert_eq!(text.lines().count(), 1);
    let grover_serve::journal::Line::Record(payload) =
        grover_serve::journal::classify(text.lines().next().unwrap(), true)
    else {
        panic!("persisted line must be an intact framed record: {text}");
    };
    json::parse(payload).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bytecode_backend_misses_tune_to_the_same_decision() {
    // A server configured for the bytecode backend must serve cache misses
    // through it and reach the exact decision an interpreter server does.
    let interp = start(config("bcinterp"));
    let (status, a) = post(&interp, "/v1/tune", &tune_body(STAGE, "SNB", 256, 64));
    assert_eq!(status, 200, "{a:?}");

    let bytecode = start(ServeConfig {
        cache_dir: temp_dir("bcbytecode"),
        backend: grover_serve::Backend::Bytecode,
        ..ServeConfig::default()
    });
    let (status, b) = post(&bytecode, "/v1/tune", &tune_body(STAGE, "SNB", 256, 64));
    assert_eq!(status, 200, "{b:?}");
    assert_eq!(b.bool_of("cached"), Some(false));
    assert_eq!(b.str_of("choice"), a.str_of("choice"));
    assert_eq!(b.u64_of("cycles_with"), a.u64_of("cycles_with"));
    assert_eq!(b.u64_of("cycles_without"), a.u64_of("cycles_without"));
    assert_eq!(
        bytecode.metrics().tune_races.get(),
        1,
        "miss raced exactly once on the bytecode backend"
    );

    std::fs::remove_dir_all(temp_dir("bcinterp")).ok();
    std::fs::remove_dir_all(temp_dir("bcbytecode")).ok();
    interp.shutdown();
    bytecode.shutdown();
}
