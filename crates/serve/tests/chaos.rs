//! Chaos suite: the serve crate under injected faults (enabled through
//! the crate's `fault-injection` self-dev-dependency).
//!
//! Each scenario proves one leg of the crash-safety contract:
//!
//! - a failed or torn journal append is answered `persist_failed` and the
//!   decision is NOT acknowledged, cached, or resurrected by a restart —
//!   clients never see an acknowledged-then-lost decision;
//! - repeated tuner failures trip the circuit breaker, which serves
//!   `degraded: true` original-kernel answers (never bare 500s, never
//!   persisted) until a half-open probe heals it;
//! - a slowloris client is dropped by the socket timeout without taking
//!   a worker hostage.
//!
//! The fault guards hold global locks, so scenarios serialise themselves.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use grover_obs::json::{self, Json};
use grover_obs::NoopRecorder;
use grover_runtime::fault::{
    self, FaultKind, FaultPlan, FaultSite, FaultTarget, IoFaultKind, IoFaultPlan,
};
use grover_serve::{http_request, ServeConfig, Server};

const STAGE: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grover-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg, Arc::new(NoopRecorder)).expect("server starts")
}

fn tune_body(source: &str, device: &str, global: u64, local: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"{device}\", \"global\": [{global}], \"local\": [{local}]}}",
        json::escape(source)
    )
}

fn post(server: &Server, body: &str) -> (u16, Json) {
    let (status, text) =
        http_request(server.addr(), "POST", "/v1/tune", Some(body)).expect("request succeeds");
    (status, json::parse(&text).unwrap_or(Json::Null))
}

#[test]
fn failed_journal_append_is_a_500_and_the_decision_is_not_acknowledged() {
    let dir = temp_dir("appendfail");
    let server = start(ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    });
    let body = tune_body(STAGE, "SNB", 256, 64);

    {
        let _guard = fault::inject_io(IoFaultPlan {
            site: "journal.append".to_string(),
            kind: IoFaultKind::Error("injected: disk full".to_string()),
            max_fires: 1,
        });
        let (status, resp) = post(&server, &body);
        assert_eq!(status, 500, "{resp:?}");
        assert_eq!(resp.str_of("kind"), Some("persist_failed"));
    }
    let m = server.metrics();
    assert_eq!(m.persist_failures.get(), 1);

    // The un-persisted decision must not have been cached: the retry is
    // a fresh miss that races again and succeeds.
    let (status, resp) = post(&server, &body);
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.bool_of("cached"), Some(false), "{resp:?}");
    assert_eq!(m.tune_races.get(), 2);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_append_is_not_acknowledged_and_a_restart_repairs_the_tail() {
    let dir = temp_dir("tornappend");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let body = tune_body(STAGE, "SNB", 256, 64);

    let first_run = start(cfg.clone());
    {
        // The write "crashes" after 20 bytes of the frame hit the disk.
        let _guard = fault::inject_io(IoFaultPlan {
            site: "journal.append".to_string(),
            kind: IoFaultKind::Torn(20),
            max_fires: 1,
        });
        let (status, resp) = post(&first_run, &body);
        assert_eq!(status, 500, "{resp:?}");
        assert_eq!(resp.str_of("kind"), Some("persist_failed"));
    }
    first_run.shutdown();
    let text = std::fs::read_to_string(dir.join("decisions.journal")).unwrap();
    assert!(!text.is_empty() && !text.ends_with('\n'), "tail is torn");

    // Restart: the torn tail is counted, repaired, and the key re-tunes
    // (the 500-answered decision must NOT reappear as a cache hit).
    let second_run = start(cfg);
    let m = second_run.metrics();
    assert_eq!(m.journal_torn.get(), 1);
    assert_eq!(m.journal_recovered.get(), 0);
    let (status, resp) = post(&second_run, &body);
    assert_eq!(status, 200);
    assert_eq!(
        resp.bool_of("cached"),
        Some(false),
        "an unacknowledged decision must not warm-start: {resp:?}"
    );
    second_run.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsync_failure_during_compaction_is_contained() {
    // Compaction is an optimisation: when its fsync fails the journal
    // must stay append-correct (just bigger), and no decision is lost.
    let dir = temp_dir("fsyncfail");
    let cfg = ServeConfig {
        cache_dir: dir.clone(),
        compact_threshold: 1,
        ..ServeConfig::default()
    };
    let server = start(cfg.clone());
    let bodies = [
        tune_body(STAGE, "SNB", 256, 64),
        tune_body(STAGE, "Fermi", 256, 64),
    ];
    {
        let _guard = fault::inject_io(IoFaultPlan {
            site: "journal.fsync".to_string(),
            kind: IoFaultKind::Error("injected: fsync failed".to_string()),
            max_fires: 0,
        });
        for b in &bodies {
            let (status, resp) = post(&server, b);
            assert_eq!(status, 200, "appends must succeed regardless: {resp:?}");
        }
    }
    let m = server.metrics();
    assert_eq!(
        m.journal_compactions.get(),
        0,
        "failed compactions must not be counted as performed"
    );
    server.shutdown();

    let revived = start(cfg);
    assert_eq!(revived.metrics().journal_recovered.get(), 2);
    for b in &bodies {
        let (_, resp) = post(&revived, b);
        assert_eq!(resp.bool_of("cached"), Some(true), "{resp:?}");
    }
    revived.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breaker_degrades_after_repeated_tuner_panics_and_probe_heals_it() {
    let dir = temp_dir("breaker");
    let server = start(ServeConfig {
        cache_dir: dir.clone(),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let body = tune_body(STAGE, "SNB", 256, 64);
    let m = server.metrics();

    {
        // Every launch of the original kernel panics — the tuner's race
        // isolation converts it to TuneError::Panicked each time.
        let _guard = fault::inject(FaultPlan {
            target: FaultTarget::original("stage"),
            site: FaultSite::LaunchStart,
            kind: FaultKind::Panic,
            max_fires: 0,
        });
        for i in 0..2 {
            let (status, resp) = post(&server, &body);
            assert_eq!(status, 500, "failure {i} is a structured 500: {resp:?}");
            assert_eq!(resp.str_of("kind"), Some("panic"));
        }
        // Threshold reached: the circuit is open; misses degrade to 200s
        // with the conservative original-kernel answer — never a 500.
        for _ in 0..3 {
            let (status, resp) = post(&server, &body);
            assert_eq!(status, 200, "{resp:?}");
            assert_eq!(resp.bool_of("degraded"), Some(true), "{resp:?}");
            assert_eq!(resp.str_of("choice"), Some("with_local_memory"));
            assert_eq!(
                resp.get("fallback").and_then(|f| f.str_of("kind")),
                Some("circuit_open"),
                "{resp:?}"
            );
        }
        assert_eq!(m.breaker_state.get(), 1, "open");
        assert_eq!(m.breaker_opens.get(), 1);
        assert_eq!(m.degraded.get(), 3);
    }
    // Degraded answers are placeholders: nothing was cached or persisted.
    assert!(
        std::fs::read_to_string(dir.join("decisions.journal"))
            .map(|t| t.is_empty())
            .unwrap_or(true),
        "degraded decisions must never be persisted"
    );

    // Fault gone + cooldown elapsed: the next miss is the half-open
    // probe; it tunes for real and closes the circuit.
    std::thread::sleep(Duration::from_millis(400));
    let (status, resp) = post(&server, &body);
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.bool_of("degraded"), Some(false), "{resp:?}");
    assert_eq!(resp.bool_of("cached"), Some(false));
    assert_eq!(m.breaker_state.get(), 0, "closed again");

    // And the healed decision is a normal cache hit afterwards.
    let (_, resp) = post(&server, &body);
    assert_eq!(resp.bool_of("cached"), Some(true));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_probe_reopens_the_circuit() {
    let dir = temp_dir("probefail");
    let server = start(ServeConfig {
        cache_dir: dir.clone(),
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let body = tune_body(STAGE, "SNB", 256, 64);
    let m = server.metrics();
    {
        let _guard = fault::inject(FaultPlan {
            target: FaultTarget::original("stage"),
            site: FaultSite::LaunchStart,
            kind: FaultKind::Panic,
            max_fires: 0,
        });
        assert_eq!(post(&server, &body).0, 500);
        assert_eq!(m.breaker_state.get(), 1);
        std::thread::sleep(Duration::from_millis(300));
        // The probe runs against the still-failing tuner: structured 500,
        // circuit re-opens.
        let (status, resp) = post(&server, &body);
        assert_eq!(status, 500, "{resp:?}");
        assert_eq!(m.breaker_state.get(), 1, "re-opened");
        assert_eq!(m.breaker_opens.get(), 2);
        // Back to degrading, not 500ing.
        let (status, resp) = post(&server, &body);
        assert_eq!((status, resp.bool_of("degraded")), (200, Some(true)));
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slowloris_client_is_dropped_and_the_server_stays_responsive() {
    use std::io::Write;
    let dir = temp_dir("slowloris");
    let server = start(ServeConfig {
        cache_dir: dir.clone(),
        workers: 1, // one hostage would block everything
        io_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // A client that sends half a request line and stalls.
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(b"POST /v1/tune HT").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // With only one worker, this request is served only once the stalled
    // client has been timed out and dropped.
    let (status, text) = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, text.as_str()), (200, "ok\n"));
    assert_eq!(
        server.metrics().slow_client_drops.get(),
        1,
        "the stalled connection was dropped by the io timeout"
    );
    drop(stalled);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
