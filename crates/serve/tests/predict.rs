//! End-to-end tests of `POST /v1/predict`: a confident model answer is
//! served with provably zero launches (the `grover_serve_launches_total`
//! and `tune_races` counters stay flat), a below-threshold answer falls
//! back to the measured race, and the fallback's journal row carries the
//! feature vector — the closed training loop.

use std::path::PathBuf;
use std::sync::Arc;

use grover_frontend::{compile, BuildOptions};
use grover_obs::json::{self, Json};
use grover_obs::NoopRecorder;
use grover_predict::{schema_hash, FeatureVector, Model, TrainConfig, TrainRow, Verdict};
use grover_serve::{http_request, DecisionStore, ServeConfig, Server};
use grover_tuner::{Tuner, Workload};

/// The staging kernel every serve test tunes.
const STAGE: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("grover-serve-predict-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn post(server: &Server, path: &str, body: &str) -> (u16, Json) {
    let (status, text) =
        http_request(server.addr(), "POST", path, Some(body)).expect("request succeeds");
    (status, json::parse(&text).unwrap_or(Json::Null))
}

/// Race STAGE once in-process and train a model on the outcome, exactly
/// as `grover corpus export` + `grover train` would.
fn train_model() -> Model {
    let module = compile(STAGE, &BuildOptions::new()).expect("compiles");
    let kernel = module.kernel("stage").expect("kernel present").clone();
    let workload = Workload::new(|| {
        use grover_runtime::{ArgValue, Context, NdRange};
        let mut ctx = Context::new();
        let input: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let a = ctx.buffer_f32(&input);
        let b = ctx.zeros_f32(256);
        (
            ctx,
            vec![ArgValue::Buffer(a), ArgValue::Buffer(b)],
            NdRange::d3([256, 1, 1], [64, 1, 1]),
        )
    });
    let mut tuner = Tuner::new();
    let d = tuner
        .tune(&kernel, "SNB", &workload)
        .expect("measured tune");
    let rows = [TrainRow {
        device: "SNB".to_string(),
        kernel: kernel.name.clone(),
        features: FeatureVector::extract(&kernel, [256, 1, 1], [64, 1, 1]),
        choice: Verdict::parse(d.choice.kind()).expect("tags coincide"),
        np: d.np,
    }];
    Model::train(
        &rows,
        &grover_core::pass_fingerprint(),
        &TrainConfig::default(),
    )
}

fn body(extra: &str) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"SNB\", \"global\": [256], \"local\": [64]{extra}}}",
        json::escape(STAGE)
    )
}

#[test]
fn predict_hits_serve_zero_launches_and_abstains_close_the_loop() {
    let dir = temp_dir("e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    std::fs::write(&model_path, train_model().to_json()).unwrap();

    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            model_path: Some(model_path),
            predict_threshold: 0.9,
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .expect("server starts");
    let m = server.metrics();

    // --- Hit: the exact training row, confidence clears 0.9. ---
    let (status, hit) = post(&server, "/v1/predict", &body(""));
    assert_eq!(status, 200, "{hit:?}");
    assert_eq!(hit.bool_of("predicted"), Some(true));
    assert!(hit.f64_of("confidence").expect("confidence recorded") >= 0.9);
    assert!(hit.str_of("choice").is_some());
    assert_eq!(hit.u64_of("launches"), Some(0));
    assert_eq!(
        hit.str_of("pass_fingerprint"),
        Some(grover_core::pass_fingerprint().as_str())
    );
    // Zero launches is proven by the counters, not claimed by the body.
    assert_eq!(m.launches.get(), 0, "a predict hit must not launch");
    assert_eq!(m.tune_races.get(), 0, "a predict hit must not race");
    assert_eq!(m.predict_hits.get(), 1);
    assert_eq!(m.predict_abstains.get(), 0);

    // --- Abstain: a per-request threshold above the exact-match
    // confidence forces the measured fallback. ---
    let (status, fb) = post(&server, "/v1/predict", &body(", \"threshold\": 0.999"));
    assert_eq!(status, 200, "{fb:?}");
    assert_eq!(fb.bool_of("predicted"), Some(false));
    assert!(
        fb.f64_of("confidence").is_some(),
        "the abstained confidence is still recorded: {fb:?}"
    );
    let measured_choice = fb.str_of("choice").expect("measured decision").to_string();
    assert_eq!(fb.bool_of("cached"), Some(false));
    assert_eq!(m.predict_abstains.get(), 1);
    assert!(m.launches.get() > 0, "the fallback race launches");
    assert_eq!(m.tune_races.get(), 1);
    // The model was trained on this very measurement, so the graded
    // abstain agrees and the error counter stays flat.
    assert_eq!(m.predict_wrong.get(), 0);

    // The hit's verdict matches what the race measures.
    assert_eq!(hit.str_of("choice"), Some(measured_choice.as_str()));

    // A subsequent /v1/tune of the same key is served from the cache the
    // fallback populated.
    let (status, tuned) = post(&server, "/v1/tune", &body(""));
    assert_eq!(status, 200);
    assert_eq!(tuned.bool_of("cached"), Some(true));
    assert_eq!(m.tune_races.get(), 1, "no second race");

    server.shutdown();

    // --- Closed loop: the fallback's journal row carries the feature
    // vector under the current schema hash, ready for `corpus export`. ---
    let (store, _) = DecisionStore::open(&dir, &grover_core::pass_fingerprint(), usize::MAX)
        .expect("journal reopens");
    let with_features: Vec<_> = store
        .live_records()
        .filter(|r| r.feature_schema_hash.as_deref() == Some(schema_hash().as_str()))
        .collect();
    assert_eq!(with_features.len(), 1, "fallback decision journaled");
    let rec = with_features[0];
    assert_eq!(rec.choice, measured_choice);
    let features = rec.features.as_ref().expect("features stored");
    assert_eq!(features.len(), grover_predict::FEATURE_NAMES.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_model_degrades_to_measured_serving() {
    let dir = temp_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    // A model from another pass epoch: observably rejected at startup,
    // the server still comes up and /v1/predict abstains into the race.
    let stale = Model::train(
        &[TrainRow {
            device: "SNB".to_string(),
            kernel: "stage".to_string(),
            features: FeatureVector::from_values(vec![0.0; 14]).unwrap(),
            choice: Verdict::Similar,
            np: 1.0,
        }],
        "some-ancient-epoch",
        &TrainConfig::default(),
    );
    std::fs::write(&model_path, stale.to_json()).unwrap();

    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            model_path: Some(model_path),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .expect("server starts despite the stale model");
    let m = server.metrics();

    let (status, resp) = post(&server, "/v1/predict", &body(""));
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.bool_of("predicted"), Some(false));
    assert!(
        resp.str_of("choice").is_some(),
        "measured fallback: {resp:?}"
    );
    assert_eq!(m.predict_abstains.get(), 1);
    assert!(m.launches.get() > 0);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
