//! End-to-end tracing tests: one trace id minted (or adopted) at the
//! serve edge must be present on every span down to the launches, echoed
//! back to the client, injected into structured errors, linked across
//! coalesced requests, and captured by the flight recorder — including
//! the dump written when a handler panics.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use grover_obs::json::{self, Json};
use grover_obs::{MemoryRecorder, NoopRecorder, TraceId, Value};
use grover_serve::{request_full, ClientConfig, ServeConfig, Server, TRACE_HEADER};

const STAGE: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grover-trace-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tune_body(source: &str, device: &str, global: u64, local: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"{device}\", \"global\": [{global}], \"local\": [{local}]}}",
        json::escape(source)
    )
}

/// POST with a trace header; returns (status, echoed trace id, body).
fn traced_post(
    server: &Server,
    path: &str,
    body: &str,
    trace_hex: &str,
) -> (u16, Option<String>, Json) {
    let (status, headers, text) = request_full(
        server.addr(),
        "POST",
        path,
        Some(body),
        &[(TRACE_HEADER, trace_hex)],
        &ClientConfig::default(),
    )
    .expect("request succeeds");
    let echoed = headers
        .iter()
        .find(|(n, _)| n == TRACE_HEADER)
        .map(|(_, v)| v.clone());
    (status, echoed, json::parse(&text).unwrap_or(Json::Null))
}

fn hex_of(i: u64) -> String {
    format!("{:032x}", 0xabc0_0000_u128 + u128::from(i))
}

#[test]
fn one_trace_id_covers_every_span_down_to_the_launches() {
    let rec = Arc::new(MemoryRecorder::new());
    let dir = temp_dir("e2e");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            ..ServeConfig::default()
        },
        rec.clone(),
    )
    .unwrap();

    let trace_hex = "0123456789abcdef0123456789abcdef";
    let (status, echoed, resp) = traced_post(
        &server,
        "/v1/tune",
        &tune_body(STAGE, "SNB", 256, 64),
        trace_hex,
    );
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(
        echoed.as_deref(),
        Some(trace_hex),
        "the response must echo the client's trace id"
    );
    server.shutdown();

    let trace = TraceId::parse(trace_hex).unwrap();
    let snap = rec.snapshot();
    // The whole request tree — edge, tune orchestration, the tuner's own
    // span, and every kernel launch — shares the one inbound trace id.
    for name in ["serve.request", "serve.tune", "tune", "launch"] {
        let spans = snap.spans_named(name);
        assert!(!spans.is_empty(), "no `{name}` span recorded");
        for s in &spans {
            assert_eq!(
                s.trace,
                Some(trace),
                "`{name}` span lost the request trace: {s:?}"
            );
        }
    }
    // A miss runs at least two launches (with/without local memory).
    assert!(snap.spans_named("launch").len() >= 2);
    // Events under the trace inherit it too.
    let decisions = snap.events_named("decision");
    assert!(!decisions.is_empty(), "tuner must record a decision event");
    for e in &decisions {
        assert_eq!(e.trace, Some(trace), "{e:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_mints_a_trace_when_the_client_sends_none() {
    let dir = temp_dir("mint");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let (_, headers, _) = request_full(
        server.addr(),
        "GET",
        "/healthz",
        None,
        &[],
        &ClientConfig::default(),
    )
    .unwrap();
    let echoed = headers
        .iter()
        .find(|(n, _)| n == TRACE_HEADER)
        .map(|(_, v)| v.as_str())
        .expect("every response carries a trace id");
    assert!(
        TraceId::parse(echoed).is_some(),
        "minted id is 32 hex: {echoed}"
    );
    assert_ne!(echoed, "00000000000000000000000000000000");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn structured_errors_carry_the_request_trace_id() {
    let dir = temp_dir("errtrace");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let trace_hex = "feedfacefeedfacefeedfacefeedface";

    // A 400 (missing required field) carries the id in body and header.
    let (status, echoed, body) = traced_post(&server, "/v1/tune", "{}", trace_hex);
    assert_eq!(status, 400);
    assert_eq!(echoed.as_deref(), Some(trace_hex));
    assert_eq!(body.str_of("trace_id"), Some(trace_hex), "{body:?}");
    assert_eq!(body.str_of("kind"), Some("bad_request"));

    // So does a 404.
    let (status, echoed, body) = traced_post(&server, "/no/such", "{}", trace_hex);
    assert_eq!(status, 404);
    assert_eq!(echoed.as_deref(), Some(trace_hex));
    assert_eq!(body.str_of("trace_id"), Some(trace_hex), "{body:?}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coalesced_followers_link_to_the_leaders_trace() {
    let rec = Arc::new(MemoryRecorder::new());
    let dir = temp_dir("link");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            workers: 8,
            handler_delay: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
        rec.clone(),
    )
    .unwrap();
    let addr = server.addr();
    let body = Arc::new(tune_body(STAGE, "SNB", 256, 64));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let body = body.clone();
            let trace_hex = hex_of(i);
            std::thread::spawn(move || {
                let (status, headers, _) = request_full(
                    addr,
                    "POST",
                    "/v1/tune",
                    Some(&body),
                    &[(TRACE_HEADER, &trace_hex)],
                    &ClientConfig::default(),
                )
                .unwrap();
                assert_eq!(status, 200);
                // Each client gets its OWN trace echoed, even when its
                // answer was computed under the leader's.
                let echoed = headers
                    .iter()
                    .find(|(n, _)| n == TRACE_HEADER)
                    .map(|(_, v)| v.clone());
                assert_eq!(echoed.as_deref(), Some(trace_hex.as_str()));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let m = server.metrics();
    assert_eq!(m.tune_races.get(), 1, "identical misses share one race");
    server.shutdown();

    let snap = rec.snapshot();
    let links = snap.events_named("coalesce.link");
    assert!(
        !links.is_empty(),
        "followers must record a link to the leader's trace"
    );
    for link in &links {
        let leader_hex = link
            .attr("leader_trace_id")
            .and_then(Value::as_str)
            .expect("link event carries leader_trace_id");
        assert!(TraceId::parse(leader_hex).is_some(), "{leader_hex}");
        // The follower's own trace differs from the leader's — that is
        // the point of the link.
        let own = link.trace.expect("link event is traced");
        assert_ne!(own.to_hex(), leader_hex, "{link:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_ring_is_live_and_dumped_on_shutdown() {
    let dir = temp_dir("flightring");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let body = tune_body(STAGE, "SNB", 256, 64);
    let trace_hex = "deadbeefdeadbeefdeadbeefdeadbeef";
    let (s1, _, _) = traced_post(&server, "/v1/tune", &body, trace_hex); // miss
    let (s2, _, _) = traced_post(&server, "/v1/tune", &body, trace_hex); // hit
    assert_eq!((s1, s2), (200, 200));

    // The ring is live even though the inner recorder is the no-op one.
    let (status, _, flight) = request_full(
        server.addr(),
        "GET",
        "/debug/flight",
        None,
        &[],
        &ClientConfig::default(),
    )
    .unwrap();
    assert_eq!(status, 200);
    let lines: Vec<&str> = flight.lines().collect();
    assert!(!lines.is_empty(), "flight ring must hold entries");
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"name\":\"serve.request\"")
                && l.contains(&format!("\"trace_id\":\"{trace_hex}\""))),
        "request spans with trace ids must be in the ring: {flight}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"name\":\"launch\"")),
        "the miss's launches must be in the ring"
    );

    // /debug/requests summarises both requests with their dispositions.
    let (status, _, reqs) = request_full(
        server.addr(),
        "GET",
        "/debug/requests",
        None,
        &[],
        &ClientConfig::default(),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(reqs.contains("\"disposition\":\"miss\""), "{reqs}");
    assert!(reqs.contains("\"disposition\":\"hit\""), "{reqs}");
    assert!(
        reqs.contains(&format!("\"trace_id\":\"{trace_hex}\"")),
        "{reqs}"
    );

    // Graceful shutdown writes the flight dump next to the journal.
    server.shutdown();
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.starts_with("flight-") && n.ends_with(".jsonl")
        })
        .collect();
    assert!(!dumps.is_empty(), "shutdown must dump the flight ring");
    let text = std::fs::read_to_string(dumps[0].path()).unwrap();
    assert!(
        text.lines().any(|l| l.contains("serve.request")),
        "dump holds the recent request spans: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn handler_panic_dumps_the_flight_ring() {
    let dir = temp_dir("panicdump");
    let server = Server::start(
        ServeConfig {
            cache_dir: dir.clone(),
            panic_path: Some("/boom".to_string()),
            ..ServeConfig::default()
        },
        Arc::new(NoopRecorder),
    )
    .unwrap();
    let trace_hex = "0000000000000000000000000000beef";
    let (status, echoed, body) = traced_post(&server, "/boom", "{}", trace_hex);
    assert_eq!(status, 500);
    assert_eq!(body.str_of("kind"), Some("panic"), "{body:?}");
    assert_eq!(
        body.str_of("trace_id"),
        Some(trace_hex),
        "panic 500s are traced too: {body:?}"
    );
    assert_eq!(echoed.as_deref(), Some(trace_hex));
    assert_eq!(server.metrics().panics_total.get(), 1);

    // The dump exists immediately — before shutdown — and contains the
    // panicked request's span under its trace id.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump for one panic");
    let text = std::fs::read_to_string(dumps[0].path()).unwrap();
    assert!(
        text.lines().any(|l| {
            l.contains("\"name\":\"serve.request\"")
                && l.contains(&format!("\"trace_id\":\"{trace_hex}\""))
        }),
        "the panicked request's span is in the dump: {text}"
    );
    // The server keeps serving after the isolated panic.
    let (status, _, _) = request_full(
        server.addr(),
        "GET",
        "/healthz",
        None,
        &[],
        &ClientConfig::default(),
    )
    .unwrap();
    assert_eq!(status, 200);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
