//! Acceptance tests for the hardened tuning pipeline: deterministic faults
//! injected into real tuning runs must be isolated, retried when transient,
//! and — for the transformed kernel — demoted to a graceful fallback, never
//! a broken recommendation or a process abort.
//!
//! Every test compiles a uniquely-named kernel so an installed [`FaultPlan`]
//! can never match a launch belonging to another test.

use std::time::Duration;

use grover_frontend::{compile, BuildOptions};
use grover_ir::Function;
use grover_runtime::fault::{self, FaultKind, FaultPlan, FaultSite, FaultTarget};
use grover_runtime::{ArgValue, Context, ExecError, Limits, NdRange};
use grover_tuner::{Choice, FallbackReason, RetryPolicy, TuneError, Tuner, Workload};

/// A staging kernel (16-element local reversal) under a per-test name.
fn staged_kernel(name: &str) -> Function {
    let src = format!(
        "__kernel void {name}(__global float* in, __global float* out) {{
             __local float lm[16];
             int lx = get_local_id(0);
             int wx = get_group_id(0);
             lm[lx] = in[wx * 16 + lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[wx * 16 + lx] = lm[15 - lx];
         }}"
    );
    compile(&src, &BuildOptions::new())
        .unwrap()
        .kernels
        .remove(0)
}

fn workload() -> Workload {
    Workload::new(|| {
        let mut ctx = Context::new();
        let a = ctx.buffer_f32(&vec![1.0; 256]);
        let b = ctx.zeros_f32(256);
        (
            ctx,
            vec![ArgValue::Buffer(a), ArgValue::Buffer(b)],
            NdRange::d1(256, 16),
        )
    })
}

/// Acceptance: a panic inside the tuner race thread measuring the
/// transformed kernel is isolated (no process abort), the decision is
/// demoted with `FallbackReason::Panicked`, and `best_kernel` returns the
/// original kernel.
#[test]
fn race_thread_panic_demotes_to_original() {
    let k = staged_kernel("hrd_panic");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_panic"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::Panic,
        max_fires: 0, // every attempt, so the retry cannot mask it
    });
    let mut t = Tuner::new();
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert_eq!(d.choice, Choice::WithLocalMemory);
    assert!(
        matches!(d.fallback, Some(FallbackReason::Panicked(_))),
        "expected Panicked fallback, got {:?}",
        d.fallback
    );
    assert_eq!(d.cycles_without, 0);
    assert_eq!(d.np, 0.0);
    let best = t.best_kernel(&k, "SNB", &w).unwrap();
    assert_eq!(best.local_mem_bytes(), k.local_mem_bytes());
}

/// Acceptance: corrupted global stores in the transformed kernel are caught
/// by the differential-output guard and demote with
/// `FallbackReason::OutputMismatch`; `best_kernel` returns the original.
#[test]
fn corrupted_transformed_output_demotes_to_original() {
    let k = staged_kernel("hrd_corrupt");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_corrupt"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::CorruptStores,
        max_fires: 0,
    });
    let mut t = Tuner::new();
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert_eq!(d.choice, Choice::WithLocalMemory);
    assert!(
        matches!(d.fallback, Some(FallbackReason::OutputMismatch { .. })),
        "expected OutputMismatch fallback, got {:?}",
        d.fallback
    );
    // Both versions measured fine — only the guard demoted.
    assert!(d.cycles_with > 0 && d.cycles_without > 0);
    let best = t.best_kernel(&k, "SNB", &w).unwrap();
    assert_eq!(best.local_mem_bytes(), k.local_mem_bytes());
}

/// A single transient panic is absorbed by the retry loop: the decision
/// carries no fallback and both measurements completed.
#[test]
fn transient_panic_survived_by_retry() {
    let k = staged_kernel("hrd_transient");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_transient"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::Panic,
        max_fires: 1, // first attempt dies, the retry runs clean
    });
    let mut t = Tuner::new();
    t.retry = RetryPolicy {
        max_attempts: 2,
        backoff: Duration::ZERO,
    };
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert!(d.fallback.is_none(), "retry should absorb the single panic");
    assert!(d.cycles_with > 0 && d.cycles_without > 0);
}

/// With retries disabled, the same single panic demotes.
#[test]
fn single_panic_demotes_without_retry() {
    let k = staged_kernel("hrd_noretry");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_noretry"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::Panic,
        max_fires: 1,
    });
    let mut t = Tuner::new();
    // A single-fire fault must hit the only transformed measurement, so
    // restrict the race to one candidate sequence — with the full seeded
    // set, the surviving candidates would (correctly) absorb the fault.
    t.sequences = Some(vec![
        "local-removal,barrier-elim,index-simplify,remap".into()
    ]);
    t.retry = RetryPolicy {
        max_attempts: 1,
        backoff: Duration::ZERO,
    };
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert!(matches!(d.fallback, Some(FallbackReason::Panicked(_))));
    assert_eq!(d.choice, Choice::WithLocalMemory);
}

/// An injected slowdown trips the wall-clock watchdog; the transformed
/// measurement reports `DeadlineExceeded` and the decision demotes.
#[test]
fn watchdog_deadline_demotes_slow_transformed() {
    let k = staged_kernel("hrd_slow");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_slow"),
        site: FaultSite::Group(0),
        kind: FaultKind::Sleep(Duration::from_millis(80)),
        max_fires: 0, // every attempt stalls
    });
    let mut t = Tuner::new();
    t.limits = Limits {
        deadline: Some(Duration::from_millis(15)),
        ..Limits::default()
    };
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert_eq!(d.choice, Choice::WithLocalMemory);
    assert_eq!(d.fallback, Some(FallbackReason::DeadlineExceeded));
    let best = t.best_kernel(&k, "SNB", &w).unwrap();
    assert_eq!(best.local_mem_bytes(), k.local_mem_bytes());
}

/// An injected `ExecError` in the transformed kernel demotes with
/// `FallbackReason::ExecFailed` (deterministic errors are not retried).
#[test]
fn injected_exec_error_demotes_with_reason() {
    let k = staged_kernel("hrd_err");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_err"),
        site: FaultSite::Group(1),
        kind: FaultKind::Error(ExecError::Unsupported("injected".into())),
        max_fires: 1, // would be masked by a retry if errors were retried
    });
    let mut t = Tuner::new();
    // Single-fire fault: pin the race to one transformed candidate (see
    // single_panic_demotes_without_retry).
    t.sequences = Some(vec![
        "local-removal,barrier-elim,index-simplify,remap".into()
    ]);
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert_eq!(d.choice, Choice::WithLocalMemory);
    match &d.fallback {
        Some(FallbackReason::ExecFailed(msg)) => assert!(msg.contains("injected")),
        other => panic!("expected ExecFailed fallback, got {other:?}"),
    }
}

/// A persistent panic while measuring the *original* kernel is fatal — there
/// is no correct version left to fall back to — but still isolated: the
/// tuner returns `TuneError::Panicked` instead of aborting.
#[test]
fn original_kernel_panic_is_fatal_but_isolated() {
    let k = staged_kernel("hrd_orig");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::original("hrd_orig"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::Panic,
        max_fires: 0,
    });
    let mut t = Tuner::new();
    match t.tune(&k, "SNB", &w) {
        Err(TuneError::Panicked(_)) => {}
        other => panic!("expected TuneError::Panicked, got {other:?}"),
    }
}

/// Disabling the guard skips output verification: the corrupted transformed
/// kernel is then judged on cycles alone (documents what `--no-verify`
/// trades away).
#[test]
fn guard_can_be_disabled() {
    let k = staged_kernel("hrd_noverify");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_noverify"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::CorruptStores,
        max_fires: 0,
    });
    let mut t = Tuner::new();
    t.verify_outputs = false;
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert!(d.fallback.is_none());
    assert!(d.cycles_with > 0 && d.cycles_without > 0);
}

/// Instruction-site faults fire mid-group: the demotion reason carries the
/// injected error and the fallback path still yields the original kernel.
#[test]
fn instruction_site_fault_demotes() {
    let k = staged_kernel("hrd_inst");
    let w = workload();
    let _guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("hrd_inst"),
        site: FaultSite::Instruction(10),
        kind: FaultKind::Error(ExecError::Internal("injected mid-group".into())),
        max_fires: 0,
    });
    let mut t = Tuner::new();
    let d = t.tune(&k, "SNB", &w).unwrap();
    assert_eq!(d.choice, Choice::WithLocalMemory);
    match &d.fallback {
        Some(FallbackReason::ExecFailed(msg)) => assert!(msg.contains("injected mid-group")),
        other => panic!("expected ExecFailed fallback, got {other:?}"),
    }
    let best = t.best_kernel(&k, "SNB", &w).unwrap();
    assert_eq!(best.local_mem_bytes(), k.local_mem_bytes());
}

/// Fallback decisions are cached like any other: the second `tune` call
/// returns the demoted decision without re-measuring (the fault plan is
/// long gone by then).
#[test]
fn fallback_decisions_are_cached() {
    let k = staged_kernel("hrd_cache");
    let w = workload();
    let mut t = Tuner::new();
    {
        let _guard = fault::inject(FaultPlan {
            target: FaultTarget::transformed("hrd_cache"),
            site: FaultSite::LaunchStart,
            kind: FaultKind::Panic,
            max_fires: 0,
        });
        let d = t.tune(&k, "SNB", &w).unwrap();
        assert!(d.fallback.is_some());
    }
    // Plan uninstalled — a fresh tune would now succeed, but the cache wins.
    let d2 = t.tune(&k, "SNB", &w).unwrap();
    assert!(matches!(d2.fallback, Some(FallbackReason::Panicked(_))));
    assert_eq!(d2.choice, Choice::WithLocalMemory);
}
