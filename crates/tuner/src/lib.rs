#![warn(missing_docs)]
//! # grover-tuner
//!
//! The auto-tuning framework the paper sketches as future work (§VIII):
//! *"Ultimately, we aim to incorporate Grover into a high-level auto-tuning
//! framework for OpenCL kernels, where code specialization is automated for
//! different classes of platforms."*
//!
//! Given a kernel and a representative workload, the [`Tuner`]:
//!
//! 1. runs the Grover pass to obtain the local-memory-free version,
//! 2. races both versions on the target device model,
//! 3. returns the winning kernel — and caches the decision per
//!    `(kernel, device)` so later launches pay nothing.
//!
//! ```
//! use grover_frontend::{compile, BuildOptions};
//! use grover_runtime::{ArgValue, Context, NdRange};
//! use grover_tuner::{Tuner, Workload};
//!
//! let module = compile(
//!     "__kernel void rev(__global float* in, __global float* out) {
//!          __local float lm[16];
//!          int lx = get_local_id(0);
//!          int wx = get_group_id(0);
//!          lm[lx] = in[wx * 16 + lx];
//!          barrier(CLK_LOCAL_MEM_FENCE);
//!          out[wx * 16 + lx] = lm[15 - lx];
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//! let kernel = module.kernel("rev").unwrap();
//!
//! let mut tuner = Tuner::new();
//! let workload = Workload::new(|| {
//!     let mut ctx = Context::new();
//!     let a = ctx.buffer_f32(&[0.0; 64]);
//!     let b = ctx.zeros_f32(64);
//!     (ctx, vec![ArgValue::Buffer(a), ArgValue::Buffer(b)], NdRange::d1(64, 16))
//! });
//! let decision = tuner.tune(kernel, "SNB", &workload).unwrap();
//! assert!(decision.np > 0.0);
//! let _best = tuner.best_kernel(kernel, "SNB", &workload).unwrap();
//! ```

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use grover_core::{apply_sequence, GroverOptions, GroverReport, Sequence};
use grover_devsim::Device;
use grover_ir::Function;
use grover_obs::{NoopRecorder, Recorder, SpanId, Value};
use grover_predict::{FeatureVector, Model as PredictModel, Prediction, Verdict};
use grover_runtime::{
    enqueue_observed_profiled, enqueue_with_backend, ArgValue, Backend, BufferData, Context,
    ExecError, ExecPolicy, Limits, NdRange, NullSink,
};

/// Which kernel version won.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Keep the original (local memory enabled).
    WithLocalMemory,
    /// Use the Grover-transformed version.
    WithoutLocalMemory,
    /// Within the similarity threshold — either works; the tuner returns
    /// the original for stability.
    Similar,
}

impl Choice {
    /// Stable machine-readable tag (`with_local_memory`,
    /// `without_local_memory`, `similar`) — shared by the CLI's `--json`
    /// output and the telemetry decision record.
    pub fn kind(&self) -> &'static str {
        match self {
            Choice::WithLocalMemory => "with_local_memory",
            Choice::WithoutLocalMemory => "without_local_memory",
            Choice::Similar => "similar",
        }
    }
}

/// Why a tuning run was demoted to the original kernel regardless of the
/// measured cycle counts. The tuner never recommends a transformed kernel
/// that failed to run, panicked, timed out, or produced different output
/// bits — [`Tuner::best_kernel`] falls back to the original instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The transformed kernel's output buffers differ bit-for-bit from the
    /// original's on the representative workload.
    OutputMismatch {
        /// Index of the first differing buffer (creation order).
        buffer: u32,
        /// First differing element inside that buffer.
        index: usize,
    },
    /// The transformed kernel failed with an execution error.
    ExecFailed(String),
    /// A measurement of the transformed kernel panicked; the panic was
    /// isolated to the race thread and converted.
    Panicked(String),
    /// The transformed measurement exceeded the wall-clock deadline.
    DeadlineExceeded,
    /// No measurement was attempted at all: a serving layer's circuit
    /// breaker was open (the tuner had been failing repeatedly) and the
    /// conservative original-kernel decision was served instead. Decisions
    /// carrying this reason are degraded placeholders — they must never be
    /// cached or persisted.
    CircuitOpen(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::OutputMismatch { buffer, index } => write!(
                f,
                "transformed kernel output differs (buffer {buffer}, element {index})"
            ),
            FallbackReason::ExecFailed(e) => write!(f, "transformed kernel failed: {e}"),
            FallbackReason::Panicked(m) => write!(f, "transformed measurement panicked: {m}"),
            FallbackReason::DeadlineExceeded => {
                f.write_str("transformed measurement exceeded the deadline")
            }
            FallbackReason::CircuitOpen(detail) => {
                write!(f, "tuner circuit breaker open: {detail}")
            }
        }
    }
}

/// Stable machine-readable tag for a [`FallbackReason`] (CLI `--json`).
impl FallbackReason {
    /// One of `output_mismatch`, `exec_error`, `panic`, `deadline`,
    /// `circuit_open`.
    pub fn kind(&self) -> &'static str {
        match self {
            FallbackReason::OutputMismatch { .. } => "output_mismatch",
            FallbackReason::ExecFailed(_) => "exec_error",
            FallbackReason::Panicked(_) => "panic",
            FallbackReason::DeadlineExceeded => "deadline",
            FallbackReason::CircuitOpen(_) => "circuit_open",
        }
    }
}

/// Retry policy for transient measurement failures (panics and deadline
/// overruns; deterministic [`ExecError`]s are never retried).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per measurement, including the first (min 1).
    pub max_attempts: u32,
    /// Sleep between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
        }
    }
}

/// Outcome of one tuning run.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Device the decision applies to.
    pub device: String,
    /// The winning version.
    pub choice: Choice,
    /// The pass sequence (spec form, e.g.
    /// `local-removal,barrier-elim,index-simplify`) that produced the
    /// winning transformed candidate. Recorded even when `choice` keeps
    /// the original: it names the best candidate the race found.
    pub sequence: String,
    /// `np = t_with / t_without` (paper §VI-B). `0.0` when the transformed
    /// version never completed a measurement (see `fallback`).
    pub np: f64,
    /// Simulated cycles with local memory.
    pub cycles_with: u64,
    /// Simulated cycles without local memory (`0` when the transformed
    /// version never completed a measurement).
    pub cycles_without: u64,
    /// What Grover did to the kernel.
    pub report: GroverReport,
    /// `Some` when the decision was demoted to [`Choice::WithLocalMemory`]
    /// by the hardening pipeline rather than by the cycle race.
    pub fallback: Option<FallbackReason>,
    /// `Some(confidence)` when the decision came from the predictive model
    /// with **zero launches** (`cycles_with`/`cycles_without` are then `0`
    /// and `np` is the model's estimate); `None` when it was measured.
    pub predicted: Option<f64>,
}

/// A representative workload: a factory producing a fresh context,
/// argument list and launch geometry for each measurement run.
pub struct Workload {
    make: Box<dyn Fn() -> (Context, Vec<ArgValue>, NdRange)>,
}

impl Workload {
    /// Wrap a workload factory.
    pub fn new(make: impl Fn() -> (Context, Vec<ArgValue>, NdRange) + 'static) -> Workload {
        Workload {
            make: Box::new(make),
        }
    }

    fn instantiate(&self) -> (Context, Vec<ArgValue>, NdRange) {
        (self.make)()
    }
}

/// Tuning failures.
///
/// These report failures of the *original* kernel or of the tuner itself —
/// there is no correct version left to fall back to. Failures of the
/// *transformed* kernel never surface here; they demote the [`Decision`]
/// to the original kernel with a recorded [`FallbackReason`] instead.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// Grover could not remove any local memory — there is nothing to tune.
    NothingToDisable(String),
    /// A requested pass sequence failed to parse or validate
    /// ([`grover_core::SequenceError`], rendered).
    InvalidSequence(String),
    /// No device model of that name exists.
    UnknownDevice(String),
    /// The interpreter failed while measuring.
    Execution(String),
    /// A measurement of the original kernel panicked (isolated from the
    /// process and converted).
    Panicked(String),
    /// A measurement of the original kernel exceeded the wall-clock
    /// deadline even after retries.
    Deadline,
    /// Tuner invariant violation (a bug).
    Internal(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NothingToDisable(r) => {
                write!(f, "kernel has no removable local memory:\n{r}")
            }
            TuneError::InvalidSequence(e) => write!(f, "invalid pass sequence: {e}"),
            TuneError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            TuneError::Execution(e) => write!(f, "execution failed: {e}"),
            TuneError::Panicked(m) => write!(f, "measurement panicked: {m}"),
            TuneError::Deadline => f.write_str("measurement exceeded the wall-clock deadline"),
            TuneError::Internal(m) => write!(f, "internal tuner error: {m}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// The auto-tuner. Decisions are cached per `(kernel name, device)`.
///
/// Since PR 9 a tuning run is an *N-way sequence race*: the original
/// kernel plus one transformed candidate per pass sequence (seeded per
/// device profile from `grover_devsim::candidate_sequences`, or overridden
/// via [`Tuner::sequences`]) are measured concurrently on scoped threads —
/// each measurement owns its device model, context and trace, so they are
/// independent and the measured cycle counts are identical to a
/// back-to-back run. The fastest candidate becomes the transformed side of
/// the decision, and its sequence is recorded in [`Decision::sequence`].
/// `policy` additionally selects the work-group schedule used inside each
/// measurement.
///
/// # Hardening
///
/// The tune/launch path degrades gracefully: a panic in either race thread
/// is caught ([`TuneError::Panicked`] / [`FallbackReason::Panicked`]), each
/// measurement runs under `limits` (instruction budget + optional
/// wall-clock deadline), transient failures are retried per `retry`, and —
/// with `verify_outputs` on — both versions are re-run on the workload and
/// their output buffers bit-compared. Any failure or mismatch of the
/// *transformed* kernel demotes the decision to the original with a
/// [`FallbackReason`], so [`Tuner::best_kernel`] can never return a broken
/// kernel; only a failure of the *original* kernel is a [`TuneError`].
pub struct Tuner {
    /// Similarity threshold (paper uses 5 %).
    pub threshold: f64,
    /// Work-group schedule used for the measurement launches.
    pub policy: ExecPolicy,
    /// Execution backend for every launch this tuner performs (race
    /// measurements and the differential-output guard alike).
    pub backend: Backend,
    /// Per-measurement execution limits (instruction budget and optional
    /// wall-clock deadline, enforced by the runtime watchdog).
    pub limits: Limits,
    /// Retry policy for transient measurement failures.
    pub retry: RetryPolicy,
    /// Run the differential-output guard after measuring (default on).
    /// The guard re-runs both versions serially on fresh workload
    /// instantiations, so the workload factory must be deterministic —
    /// which meaningful tuning requires anyway.
    pub verify_outputs: bool,
    /// Restrict the Grover transform to these `__local` buffers
    /// (`None` = remove all).
    pub buffers: Option<Vec<String>>,
    /// Candidate pass sequences (spec strings) to race. `None` seeds the
    /// bounded per-device set from
    /// `grover_devsim::candidate_sequences`; an explicit list (e.g. the
    /// CLI's `--passes`) restricts the race to exactly those sequences.
    pub sequences: Option<Vec<String>>,
    /// Telemetry sink. Each uncached [`Tuner::tune_pair`] records one
    /// `tune` span (both race measurements appear as nested `launch`
    /// spans), `retry`/`measure`/`verify` events, and a final `decision`
    /// event; cache hits record a `decision` event with `cached: true`.
    /// Defaults to the no-op recorder: nothing is constructed or stored.
    pub recorder: Arc<dyn Recorder>,
    /// Parent span for the `tune` spans this tuner records. A serving
    /// layer that traces requests sets this to the request's span so the
    /// whole tune — race launches included — nests under it and inherits
    /// its trace id; standalone callers leave it `None` (root spans).
    pub parent: Option<SpanId>,
    /// Attach a per-opcode execution profile to race measurements: each
    /// nested `launch` span gains a `profile` event with per-opcode-kind
    /// count/charge attributes. Only the bytecode backend can profile, so
    /// this has no effect under [`Backend::Interp`]. Default off.
    pub profile_ops: bool,
    /// Predictive model consulted by [`Tuner::predict_first`] mode.
    /// `None` means every tune is measured.
    pub predictor: Option<Arc<PredictModel>>,
    /// Answer from [`Tuner::predictor`] before measuring: when the model's
    /// confidence clears [`Tuner::predict_threshold`] the decision is
    /// served with zero launches; otherwise the model abstains and the
    /// measured race runs as usual (and a disagreeing measured outcome
    /// increments [`Tuner::predict_wrong`]). Default off.
    pub predict_first: bool,
    /// Minimum model confidence for a zero-launch predicted decision.
    pub predict_threshold: f64,
    cache: HashMap<(String, String), Decision>,
    transformed: HashMap<(String, String), Function>,
    races: u64,
    launches: u64,
    predict_hits: u64,
    predict_abstains: u64,
    predict_wrong: u64,
}

/// One transformed contender in a sequence race.
struct Candidate {
    /// The sequence spec that produced it.
    sequence: String,
    /// The transformed kernel.
    kernel: Function,
    /// What the pipeline did.
    report: GroverReport,
}

impl Default for Tuner {
    fn default() -> Tuner {
        Tuner::new()
    }
}

impl Tuner {
    /// A tuner with the paper's 5 % similarity threshold.
    pub fn new() -> Tuner {
        Tuner {
            threshold: 0.05,
            policy: ExecPolicy::Serial,
            backend: Backend::Interp,
            limits: Limits::default(),
            retry: RetryPolicy::default(),
            verify_outputs: true,
            buffers: None,
            sequences: None,
            recorder: Arc::new(NoopRecorder),
            parent: None,
            profile_ops: false,
            predictor: None,
            predict_first: false,
            predict_threshold: 0.7,
            cache: HashMap::new(),
            transformed: HashMap::new(),
            races: 0,
            launches: 0,
            predict_hits: 0,
            predict_abstains: 0,
            predict_wrong: 0,
        }
    }

    /// A tuner measuring under an explicit work-group schedule.
    pub fn with_policy(policy: ExecPolicy) -> Tuner {
        Tuner {
            policy,
            ..Tuner::new()
        }
    }

    /// Number of cached decisions.
    pub fn cached_decisions(&self) -> usize {
        self.cache.len()
    }

    /// Number of race measurements this tuner has actually executed.
    /// A cache hit serves the stored [`Decision`] without racing, so this
    /// counter is how callers (tests, the `grover-serve` metrics) prove
    /// that repeated tunes do not re-measure.
    pub fn races_run(&self) -> u64 {
        self.races
    }

    /// Number of individual kernel launches this tuner has executed —
    /// race measurements, retries, and differential-output verification
    /// runs all count. A predicted decision performs none; callers (the
    /// `grover-serve` `grover_serve_launches_total` metric, the
    /// `serve_load --predict` scenario) use this to *prove* the
    /// zero-launch property rather than assert it.
    pub fn launches_run(&self) -> u64 {
        self.launches
    }

    /// Decisions served from the model with zero launches.
    pub fn predict_hits(&self) -> u64 {
        self.predict_hits
    }

    /// Predict-first tunes where the model abstained (no model, unknown
    /// device, or confidence below [`Tuner::predict_threshold`]) and the
    /// measured race ran instead.
    pub fn predict_abstains(&self) -> u64 {
        self.predict_abstains
    }

    /// Abstained predictions whose verdict disagreed with the measured
    /// race that followed — the model's observable error counter.
    pub fn predict_wrong(&self) -> u64 {
        self.predict_wrong
    }

    /// Tune `kernel` for `device` using `workload`; cached after the first
    /// call. Runs the sequence race: one transformed candidate per spec in
    /// [`Tuner::sequences`] (or the device-seeded default set) against the
    /// original kernel.
    pub fn tune(
        &mut self,
        kernel: &Function,
        device: &str,
        workload: &Workload,
    ) -> Result<Decision, TuneError> {
        let key = (kernel.name.clone(), device.to_string());
        if let Some(d) = self.cache.get(&key) {
            if self.recorder.enabled() {
                self.recorder
                    .event("decision", self.parent, &decision_attrs(&key.0, d, true));
            }
            return Ok(d.clone());
        }
        // Fail fast on a bad device name before any transform work.
        if Device::by_name(device).is_none() {
            return Err(TuneError::UnknownDevice(device.to_string()));
        }
        let candidates = self.build_candidates(kernel, device)?;

        // Predict-first: consult the model before spending any launch.
        // A confident answer is served directly (zero launches); an
        // abstention falls through to the measured race, whose outcome is
        // then compared against the abstained verdict.
        let mut abstained: Option<Prediction> = None;
        if self.predict_first {
            match self.predict_decision(kernel, device, &candidates, workload) {
                (Some(d), _) => return Ok(d),
                (None, p) => abstained = p,
            }
        }
        let d = self.tune_candidates(kernel, candidates, device, workload)?;
        if let Some(p) = abstained {
            if choice_of(p.verdict) != d.choice {
                self.predict_wrong += 1;
                if self.recorder.enabled() {
                    self.recorder.event(
                        "predict.wrong",
                        self.parent,
                        &[
                            ("kernel", Value::from(kernel.name.as_str())),
                            ("device", Value::from(device)),
                            ("predicted", Value::from(p.verdict.kind())),
                            ("measured", Value::from(d.choice.kind())),
                            ("confidence", Value::from(p.confidence)),
                        ],
                    );
                }
            }
        }
        Ok(d)
    }

    /// The model half of predict-first mode: extract features (static,
    /// no launch), score, and either build a zero-launch [`Decision`] or
    /// abstain. Returns `(hit decision, prediction)` — the prediction is
    /// returned even on abstain so the caller can grade it against the
    /// measured race.
    fn predict_decision(
        &mut self,
        kernel: &Function,
        device: &str,
        candidates: &[Candidate],
        workload: &Workload,
    ) -> (Option<Decision>, Option<Prediction>) {
        let Some(model) = self.predictor.clone() else {
            self.predict_abstains += 1;
            return (None, None);
        };
        let recorder = self.recorder.clone();
        let rec: &dyn Recorder = &*recorder;
        // Geometry comes from one workload instantiation; building a
        // context is pure host work, not a launch.
        let (_ctx, _args, nd) = workload.instantiate();
        let fv = FeatureVector::extract(kernel, nd.global, nd.local);

        let span = rec
            .enabled()
            .then(|| rec.span_start("predict", self.parent));
        if let Some(span) = span {
            rec.span_attr(span, "kernel", Value::from(kernel.name.as_str()));
            rec.span_attr(span, "device", Value::from(device));
            rec.span_attr(span, "threshold", Value::from(self.predict_threshold));
            rec.span_attr(span, "features", Value::from(fv.values_json()));
        }
        let p = model.predict(device, &fv);
        let result = match p {
            Some(p) if p.confidence >= self.predict_threshold => {
                self.predict_hits += 1;
                if let Some(span) = span {
                    rec.event(
                        "outcome",
                        Some(span),
                        &[
                            ("outcome", Value::from("hit")),
                            ("verdict", Value::from(p.verdict.kind())),
                            ("confidence", Value::from(p.confidence)),
                            ("np_est", Value::from(p.np_est)),
                            ("exact_match", Value::from(p.exact_match)),
                            ("neighbor", Value::from(p.neighbor_kernel.as_str())),
                        ],
                    );
                }
                // The default-sequence candidate stands in as the
                // transformed side; a predicted decision names it so
                // `best_kernel` resolves without a race.
                let winner = &candidates[0];
                self.transformed
                    .entry((kernel.name.clone(), device.to_string()))
                    .or_insert_with(|| winner.kernel.clone());
                let d = Decision {
                    device: device.to_string(),
                    choice: choice_of(p.verdict),
                    sequence: winner.sequence.clone(),
                    np: p.np_est,
                    cycles_with: 0,
                    cycles_without: 0,
                    report: winner.report.clone(),
                    fallback: None,
                    predicted: Some(p.confidence),
                };
                self.cache
                    .insert((kernel.name.clone(), device.to_string()), d.clone());
                (Some(d), Some(p))
            }
            p => {
                self.predict_abstains += 1;
                if let Some(span) = span {
                    let mut attrs = vec![("outcome", Value::from("abstain"))];
                    if let Some(p) = &p {
                        attrs.push(("verdict", Value::from(p.verdict.kind())));
                        attrs.push(("confidence", Value::from(p.confidence)));
                    } else {
                        attrs.push(("reason", Value::from("no model for device")));
                    }
                    rec.event("outcome", Some(span), &attrs);
                }
                (None, p)
            }
        };
        if let Some(span) = span {
            rec.span_end(span);
        }
        result
    }

    /// Tune an externally-prepared `(original, transformed)` pair — for
    /// callers that run their own transform/optimisation pipeline (e.g. the
    /// CLI's benchmark harness, which may restrict Grover to a subset of
    /// buffers). The pair races exactly as before PR 9 (two launches); the
    /// decision records the tuned pipeline's sequence, which is what
    /// `prepare_pair`-style callers apply. Caches under
    /// `(kernel.name, device)` exactly like [`Tuner::tune`], and registers
    /// `transformed` so [`Tuner::best_kernel`] resolves it.
    pub fn tune_pair(
        &mut self,
        kernel: &Function,
        transformed: &Function,
        report: GroverReport,
        device: &str,
        workload: &Workload,
    ) -> Result<Decision, TuneError> {
        // Fail fast on a bad device name before spending any measurement.
        if Device::by_name(device).is_none() {
            return Err(TuneError::UnknownDevice(device.to_string()));
        }
        let candidate = Candidate {
            sequence: Sequence::tuned_pipeline().spec(),
            kernel: transformed.clone(),
            report,
        };
        self.tune_candidates(kernel, vec![candidate], device, workload)
    }

    /// Build one transformed candidate per sequence spec: parse + validate
    /// the sequence, apply it to a fresh clone, refuse kernels with nothing
    /// to disable. Every candidate set starts from the same pristine
    /// kernel, so all candidates report the same removals and differ only
    /// in cleanup.
    fn build_candidates(
        &self,
        kernel: &Function,
        device: &str,
    ) -> Result<Vec<Candidate>, TuneError> {
        let specs: Vec<String> = match &self.sequences {
            Some(s) => s.clone(),
            None => grover_devsim::candidate_sequences(device)
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        if specs.is_empty() {
            return Err(TuneError::InvalidSequence(
                "empty candidate sequence set".into(),
            ));
        }
        let options = self.grover_options();
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            let seq = Sequence::parse(&spec)
                .map_err(|e| TuneError::InvalidSequence(format!("`{spec}`: {e}")))?;
            let mut k = kernel.clone();
            let pr = apply_sequence(&mut k, &seq, &options);
            if pr.report.removed_count() == 0 {
                return Err(TuneError::NothingToDisable(pr.report.to_text()));
            }
            out.push(Candidate {
                sequence: seq.spec(),
                kernel: k,
                report: pr.report,
            });
        }
        Ok(out)
    }

    /// The cache-check + telemetry shell around the race.
    fn tune_candidates(
        &mut self,
        kernel: &Function,
        candidates: Vec<Candidate>,
        device: &str,
        workload: &Workload,
    ) -> Result<Decision, TuneError> {
        let recorder = self.recorder.clone();
        let rec: &dyn Recorder = &*recorder;
        let key = (kernel.name.clone(), device.to_string());
        if let Some(d) = self.cache.get(&key) {
            if rec.enabled() {
                rec.event("decision", self.parent, &decision_attrs(&key.0, d, true));
            }
            return Ok(d.clone());
        }

        let span = rec.enabled().then(|| rec.span_start("tune", self.parent));
        if let Some(span) = span {
            rec.span_attr(span, "kernel", Value::from(kernel.name.as_str()));
            rec.span_attr(span, "device", Value::from(device));
            rec.span_attr(span, "policy", Value::from(policy_name(self.policy)));
            rec.span_attr(span, "backend", Value::from(self.backend.name()));
            rec.span_attr(span, "threshold", Value::from(self.threshold));
            rec.span_attr(span, "verify_outputs", Value::from(self.verify_outputs));
            rec.span_attr(span, "candidates", Value::from(candidates.len()));
            let seqs: Vec<&str> = candidates.iter().map(|c| c.sequence.as_str()).collect();
            rec.span_attr(span, "sequences", Value::from(seqs.join(";")));
        }
        let result = self.race_candidates(kernel, &candidates, device, workload, span);
        if let Some(span) = span {
            match &result {
                Ok(d) => {
                    rec.event(
                        "decision",
                        Some(span),
                        &decision_attrs(&kernel.name, d, false),
                    );
                }
                Err(e) => rec.span_attr(span, "error", Value::from(e.to_string())),
            }
            rec.span_end(span);
        }
        result
    }

    /// The uncached measurement body: race the original against every
    /// candidate, retry transients, verify the winner, decide. `span` is
    /// the enclosing `tune` span (`None` when the recorder is disabled).
    fn race_candidates(
        &mut self,
        kernel: &Function,
        candidates: &[Candidate],
        device: &str,
        workload: &Workload,
        span: Option<SpanId>,
    ) -> Result<Decision, TuneError> {
        let recorder = self.recorder.clone();
        let rec: &dyn Recorder = &*recorder;
        let policy = self.policy;
        let backend = self.backend;
        let limits = self.limits;
        let retry = self.retry;
        let profile_ops = self.profile_ops;
        self.races += 1;

        // Race the original plus every candidate: the original on this
        // thread, each candidate on its own scoped thread. The workloads
        // are instantiated up front on this thread (the factory need not be
        // `Sync`); each measurement then runs fully independently. Each is
        // wrapped in `catch_unwind`, so a panicking measurement is isolated
        // to its race thread and converted instead of aborting the tuner.
        let w_with = workload.instantiate();
        let w_cands: Vec<_> = candidates.iter().map(|_| workload.instantiate()).collect();
        let (res_with, cand_results) = std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .iter()
                .zip(w_cands)
                .map(|(c, w)| {
                    let ck = &c.kernel;
                    s.spawn(move || {
                        simulate_caught(
                            ck,
                            device,
                            w,
                            policy,
                            backend,
                            &limits,
                            rec,
                            span,
                            profile_ops,
                        )
                    })
                })
                .collect();
            let with = simulate_caught(
                kernel,
                device,
                w_with,
                policy,
                backend,
                &limits,
                rec,
                span,
                profile_ops,
            );
            // `simulate_caught` already catches panics; `join` only fails if
            // one escapes the isolation (a bug) — still convert, never abort.
            let cands: Vec<Result<u64, MeasureFailure>> = handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(MeasureFailure::Panicked(panic_message(p.as_ref())))
                    })
                })
                .collect();
            (with, cands)
        });
        // Every simulate above was one launch: the original plus each
        // candidate.
        self.launches += 1 + candidates.len() as u64;

        // Transient failures (panics, deadline overruns) are retried
        // serially on fresh workload instantiations.
        let attempts_with = Cell::new(1u32);
        let res_with = retry_measure(res_with, retry, || {
            self.launches += 1;
            attempts_with.set(attempts_with.get() + 1);
            if rec.enabled() {
                rec.event(
                    "retry",
                    span,
                    &retry_attrs("original", None, attempts_with.get()),
                );
            }
            simulate_caught(
                kernel,
                device,
                workload.instantiate(),
                policy,
                backend,
                &limits,
                rec,
                span,
                profile_ops,
            )
        });
        let mut cand_cycles: Vec<Result<u64, MeasureFailure>> =
            Vec::with_capacity(candidates.len());
        for (c, first) in candidates.iter().zip(cand_results) {
            let attempts = Cell::new(1u32);
            let res = retry_measure(first, retry, || {
                self.launches += 1;
                attempts.set(attempts.get() + 1);
                if rec.enabled() {
                    rec.event(
                        "retry",
                        span,
                        &retry_attrs("transformed", Some(&c.sequence), attempts.get()),
                    );
                }
                simulate_caught(
                    &c.kernel,
                    device,
                    workload.instantiate(),
                    policy,
                    backend,
                    &limits,
                    rec,
                    span,
                    profile_ops,
                )
            });
            if rec.enabled() {
                rec.event(
                    "measure",
                    span,
                    &measure_attrs("transformed", Some(&c.sequence), &res, attempts.get()),
                );
            }
            cand_cycles.push(res);
        }
        if rec.enabled() {
            rec.event(
                "measure",
                span,
                &measure_attrs("original", None, &res_with, attempts_with.get()),
            );
        }

        // The original kernel must measure: without a working baseline
        // there is nothing to fall back to.
        let cycles_with = res_with.map_err(fatal)?;

        // Winner: the fastest candidate that measured (earliest wins ties,
        // so with equal cycles the default sequence is preferred — it is
        // always candidate 0 of the seeded sets).
        let mut best: Option<(usize, u64)> = None;
        for (i, r) in cand_cycles.iter().enumerate() {
            if let Ok(c) = r {
                if best.is_none_or(|(_, bc)| *c < bc) {
                    best = Some((i, *c));
                }
            }
        }

        let mut fallback: Option<FallbackReason> = None;
        let (winner_idx, cycles_without) = match best {
            Some((i, c)) => (i, c),
            None => {
                // Every candidate failed: demote, reporting the first
                // failure (candidate 0 is the default sequence).
                let first = cand_cycles
                    .into_iter()
                    .next()
                    .unwrap_or(Err(MeasureFailure::Panicked("no candidates".into())));
                fallback = Some(match first {
                    Err(f) => reason_of(f),
                    Ok(_) => unreachable!("best is None but a candidate measured"),
                });
                (0, 0)
            }
        };
        let winner = &candidates[winner_idx];

        // Differential-output guard: re-run the original and the winning
        // candidate serially on fresh instantiations and bit-compare every
        // buffer. A reference failure is fatal; a winner failure or any
        // differing bit demotes the whole decision to the original —
        // conservative by design: a search that produced even one
        // wrong-output candidate is not trusted for this kernel.
        if fallback.is_none() && self.verify_outputs {
            self.launches += 1;
            let reference = run_for_outputs(kernel, workload, &limits, backend).map_err(fatal)?;
            self.launches += 1;
            match run_for_outputs(&winner.kernel, workload, &limits, backend) {
                Err(f) => fallback = Some(reason_of(f)),
                Ok(candidate) => {
                    if let Some((buffer, index)) = first_bit_mismatch(&reference, &candidate) {
                        fallback = Some(FallbackReason::OutputMismatch { buffer, index });
                    }
                }
            }
            if rec.enabled() {
                let mut attrs = vec![
                    ("ok", Value::from(fallback.is_none())),
                    ("sequence", Value::from(winner.sequence.as_str())),
                ];
                if let Some(reason) = &fallback {
                    attrs.push(("reason", Value::from(reason.to_string())));
                }
                rec.event("verify", span, &attrs);
            }
        }

        let np = if cycles_without == 0 {
            0.0
        } else {
            cycles_with as f64 / cycles_without as f64
        };
        let choice = if fallback.is_some() {
            Choice::WithLocalMemory
        } else if np > 1.0 + self.threshold {
            Choice::WithoutLocalMemory
        } else if np < 1.0 - self.threshold {
            Choice::WithLocalMemory
        } else {
            Choice::Similar
        };
        self.transformed
            .entry((kernel.name.clone(), device.to_string()))
            .or_insert_with(|| winner.kernel.clone());
        let d = Decision {
            device: device.to_string(),
            choice,
            sequence: winner.sequence.clone(),
            np,
            cycles_with,
            cycles_without,
            report: winner.report.clone(),
            fallback,
            predicted: None,
        };
        self.cache
            .insert((kernel.name.clone(), device.to_string()), d.clone());
        Ok(d)
    }

    /// The kernel version the tuner recommends for `device`.
    ///
    /// Guaranteed to be runnable: any failure or output divergence of the
    /// transformed version during [`Tuner::tune`] demotes the decision, so
    /// this returns the original kernel in every fallback case.
    pub fn best_kernel(
        &mut self,
        kernel: &Function,
        device: &str,
        workload: &Workload,
    ) -> Result<Function, TuneError> {
        let d = self.tune(kernel, device, workload)?;
        Ok(match d.choice {
            Choice::WithoutLocalMemory => self
                .transformed
                .get(&(kernel.name.clone(), device.to_string()))
                .cloned()
                .ok_or_else(|| {
                    TuneError::Internal("transformed kernel not cached by tune()".into())
                })?,
            _ => kernel.clone(),
        })
    }

    /// Tune across several devices at once (the per-platform specialisation
    /// table the paper's future work describes).
    pub fn tune_all(
        &mut self,
        kernel: &Function,
        devices: &[&str],
        workload: &Workload,
    ) -> Vec<(String, Result<Decision, TuneError>)> {
        devices
            .iter()
            .map(|&d| (d.to_string(), self.tune(kernel, d, workload)))
            .collect()
    }

    fn grover_options(&self) -> GroverOptions {
        GroverOptions {
            buffers: self.buffers.clone(),
            keep_barriers: false,
        }
    }
}

/// A single measurement failure, before it is classified as fatal
/// (original kernel → [`TuneError`]) or demoting (transformed kernel →
/// [`FallbackReason`]).
enum MeasureFailure {
    Exec(ExecError),
    Panicked(String),
}

impl MeasureFailure {
    /// Worth retrying? Panics and deadline overruns may be environmental
    /// (scheduling jitter, injected faults with limited fires);
    /// deterministic interpreter errors are not.
    fn transient(&self) -> bool {
        matches!(
            self,
            MeasureFailure::Panicked(_)
                | MeasureFailure::Exec(ExecError::DeadlineExceeded)
                | MeasureFailure::Exec(ExecError::WorkerPanic { .. })
        )
    }
}

fn fatal(f: MeasureFailure) -> TuneError {
    match f {
        MeasureFailure::Panicked(m) => TuneError::Panicked(m),
        MeasureFailure::Exec(ExecError::WorkerPanic { message, .. }) => {
            TuneError::Panicked(message)
        }
        MeasureFailure::Exec(ExecError::DeadlineExceeded) => TuneError::Deadline,
        MeasureFailure::Exec(e) => TuneError::Execution(e.to_string()),
    }
}

fn reason_of(f: MeasureFailure) -> FallbackReason {
    match f {
        MeasureFailure::Panicked(m) => FallbackReason::Panicked(m),
        MeasureFailure::Exec(ExecError::WorkerPanic { message, .. }) => {
            FallbackReason::Panicked(message)
        }
        MeasureFailure::Exec(ExecError::DeadlineExceeded) => FallbackReason::DeadlineExceeded,
        MeasureFailure::Exec(e) => FallbackReason::ExecFailed(e.to_string()),
    }
}

/// Map a model verdict onto the tuner's choice vocabulary (they share
/// the same wire names; the types stay separate so `grover-predict`
/// remains dependency-free of the tuner).
fn choice_of(v: Verdict) -> Choice {
    match v {
        Verdict::WithLocalMemory => Choice::WithLocalMemory,
        Verdict::WithoutLocalMemory => Choice::WithoutLocalMemory,
        Verdict::Similar => Choice::Similar,
    }
}

fn policy_name(policy: ExecPolicy) -> &'static str {
    match policy {
        ExecPolicy::Serial => "serial",
        ExecPolicy::Parallel { .. } => "parallel",
    }
}

/// `(kind, detail)` tags of a measurement failure, matching the
/// [`FallbackReason::kind`] vocabulary.
fn failure_tag(f: &MeasureFailure) -> (&'static str, String) {
    match f {
        MeasureFailure::Panicked(m) => ("panic", m.clone()),
        MeasureFailure::Exec(ExecError::WorkerPanic { message, .. }) => ("panic", message.clone()),
        MeasureFailure::Exec(ExecError::DeadlineExceeded) => {
            ("deadline", "wall-clock deadline exceeded".to_string())
        }
        MeasureFailure::Exec(e) => ("exec_error", e.to_string()),
    }
}

fn retry_attrs(
    version: &'static str,
    sequence: Option<&str>,
    attempt: u32,
) -> Vec<(&'static str, Value)> {
    let mut attrs = vec![
        ("version", Value::from(version)),
        ("attempt", Value::from(attempt)),
    ];
    if let Some(seq) = sequence {
        attrs.push(("sequence", Value::from(seq.to_string())));
    }
    attrs
}

fn measure_attrs(
    version: &'static str,
    sequence: Option<&str>,
    result: &Result<u64, MeasureFailure>,
    attempts: u32,
) -> Vec<(&'static str, Value)> {
    let mut attrs = vec![
        ("version", Value::from(version)),
        ("attempts", Value::from(attempts)),
    ];
    if let Some(seq) = sequence {
        attrs.push(("sequence", Value::from(seq.to_string())));
    }
    match result {
        Ok(cycles) => {
            attrs.push(("ok", Value::from(true)));
            attrs.push(("cycles", Value::from(*cycles)));
        }
        Err(f) => {
            let (kind, detail) = failure_tag(f);
            attrs.push(("ok", Value::from(false)));
            attrs.push(("failure", Value::from(kind)));
            attrs.push(("detail", Value::from(detail)));
        }
    }
    attrs
}

/// The one-record summary of a tuning outcome: the race measurements, the
/// normalised performance, the verdict and — when demoted — the structured
/// fallback reason.
fn decision_attrs(kernel: &str, d: &Decision, cached: bool) -> Vec<(&'static str, Value)> {
    let mut attrs = vec![
        ("kernel", Value::from(kernel.to_string())),
        ("device", Value::from(d.device.as_str())),
        ("choice", Value::from(d.choice.kind())),
        ("sequence", Value::from(d.sequence.as_str())),
        ("np", Value::from(d.np)),
        ("cycles_with", Value::from(d.cycles_with)),
        ("cycles_without", Value::from(d.cycles_without)),
        ("cached", Value::from(cached)),
    ];
    if let Some(reason) = &d.fallback {
        attrs.push(("fallback_kind", Value::from(reason.kind())));
        attrs.push(("fallback_detail", Value::from(reason.to_string())));
    }
    attrs
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Retry `first` via `again` while the failure is transient, up to
/// `retry.max_attempts` total attempts with `retry.backoff` between them.
fn retry_measure<T>(
    first: Result<T, MeasureFailure>,
    retry: RetryPolicy,
    mut again: impl FnMut() -> Result<T, MeasureFailure>,
) -> Result<T, MeasureFailure> {
    let mut result = first;
    let mut attempts = 1u32;
    while attempts < retry.max_attempts.max(1) {
        match &result {
            Err(f) if f.transient() => {
                if !retry.backoff.is_zero() {
                    std::thread::sleep(retry.backoff);
                }
                attempts += 1;
                result = again();
            }
            _ => break,
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    kernel: &Function,
    device: &str,
    workload: (Context, Vec<ArgValue>, NdRange),
    policy: ExecPolicy,
    backend: Backend,
    limits: &Limits,
    rec: &dyn Recorder,
    parent: Option<SpanId>,
    profile_ops: bool,
) -> Result<u64, MeasureFailure> {
    // The device name is validated by `tune_pair` before any measurement;
    // a lookup failure here means the registry changed under us.
    let mut dev = Device::by_name(device).ok_or_else(|| {
        MeasureFailure::Exec(ExecError::Internal(format!(
            "device `{device}` disappeared mid-tune"
        )))
    })?;
    let (mut ctx, args, nd) = workload;
    // With profiling on, the launch span gains a `profile` event; the
    // aggregate itself is not needed here, the recorder carries it.
    let mut profile = None;
    enqueue_observed_profiled(
        &mut ctx,
        kernel,
        &args,
        &nd,
        &mut dev,
        limits,
        policy,
        backend,
        rec,
        parent,
        profile_ops.then_some(&mut profile),
    )
    .map_err(MeasureFailure::Exec)?;
    Ok(dev.finish().cycles)
}

/// [`simulate`] with panic isolation: a panic anywhere in the measurement
/// (interpreter, device model, injected fault) becomes a
/// [`MeasureFailure::Panicked`] instead of unwinding into the race scope.
#[allow(clippy::too_many_arguments)]
fn simulate_caught(
    kernel: &Function,
    device: &str,
    workload: (Context, Vec<ArgValue>, NdRange),
    policy: ExecPolicy,
    backend: Backend,
    limits: &Limits,
    rec: &dyn Recorder,
    parent: Option<SpanId>,
    profile_ops: bool,
) -> Result<u64, MeasureFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        simulate(
            kernel,
            device,
            workload,
            policy,
            backend,
            limits,
            rec,
            parent,
            profile_ops,
        )
    }))
    .unwrap_or_else(|p| Err(MeasureFailure::Panicked(panic_message(p.as_ref()))))
}

/// Run `kernel` once, serially and untraced, returning the final context
/// for the differential-output guard.
fn run_for_outputs(
    kernel: &Function,
    workload: &Workload,
    limits: &Limits,
    backend: Backend,
) -> Result<Context, MeasureFailure> {
    let (mut ctx, args, nd) = workload.instantiate();
    let run = catch_unwind(AssertUnwindSafe(|| {
        enqueue_with_backend(
            &mut ctx,
            kernel,
            &args,
            &nd,
            &mut NullSink,
            limits,
            ExecPolicy::Serial,
            backend,
        )
    }));
    match run {
        Ok(Ok(_)) => Ok(ctx),
        Ok(Err(e)) => Err(MeasureFailure::Exec(e)),
        Err(p) => Err(MeasureFailure::Panicked(panic_message(p.as_ref()))),
    }
}

/// First bit-level difference between two contexts' buffers, as
/// `(buffer, element)` — `None` when identical. Floats compare by bit
/// pattern, so NaNs compare equal to themselves and `-0.0 != 0.0`.
fn first_bit_mismatch(a: &Context, b: &Context) -> Option<(u32, usize)> {
    let (ab, bb) = (a.buffers(), b.buffers());
    if ab.len() != bb.len() {
        return Some((ab.len().min(bb.len()) as u32, 0));
    }
    for (i, (x, y)) in ab.iter().zip(bb).enumerate() {
        let diff = match (x, y) {
            (BufferData::F32(x), BufferData::F32(y)) => mismatch_at(x, y, |v| v.to_bits() as u64),
            (BufferData::I32(x), BufferData::I32(y)) => mismatch_at(x, y, |v| *v as u32 as u64),
            (BufferData::I64(x), BufferData::I64(y)) => mismatch_at(x, y, |v| *v as u64),
            // Differing element types at the same slot: flag element 0.
            _ => Some(0),
        };
        if let Some(j) = diff {
            return Some((i as u32, j));
        }
    }
    None
}

fn mismatch_at<T>(a: &[T], b: &[T], key: impl Fn(&T) -> u64) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| key(x) != key(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};

    fn staged_kernel() -> Function {
        compile(
            "__kernel void rev(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 int wx = get_group_id(0);
                 lm[lx] = in[wx * 16 + lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[wx * 16 + lx] = lm[15 - lx];
             }",
            &BuildOptions::new(),
        )
        .unwrap()
        .kernels
        .remove(0)
    }

    fn workload() -> Workload {
        Workload::new(|| {
            let mut ctx = Context::new();
            let a = ctx.buffer_f32(&vec![1.0; 256]);
            let b = ctx.zeros_f32(256);
            (
                ctx,
                vec![ArgValue::Buffer(a), ArgValue::Buffer(b)],
                NdRange::d1(256, 16),
            )
        })
    }

    #[test]
    fn tunes_and_caches() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let d1 = t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(t.cached_decisions(), 1);
        let d2 = t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(d1.np, d2.np);
        assert!(d1.cycles_with > 0 && d1.cycles_without > 0);
    }

    #[test]
    fn cache_hits_do_not_race() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        assert_eq!(t.races_run(), 0);
        t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(t.races_run(), 1);
        t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(t.races_run(), 1, "cached decision must not re-measure");
    }

    #[test]
    fn bytecode_backend_tunes_to_the_same_decision() {
        // The device model consumes the same access trace either way, so
        // cycle counts — and therefore the decision — must be identical,
        // and races_run() accounting must be backend-agnostic.
        let k = staged_kernel();
        let mut ti = Tuner::new();
        let di = ti.tune(&k, "SNB", &workload()).unwrap();
        let mut tb = Tuner::new();
        tb.backend = Backend::Bytecode;
        let db = tb.tune(&k, "SNB", &workload()).unwrap();
        assert_eq!(tb.races_run(), 1);
        assert_eq!(di.choice, db.choice);
        assert_eq!(di.np, db.np);
        assert_eq!(
            (di.cycles_with, di.cycles_without),
            (db.cycles_with, db.cycles_without)
        );
        assert!(db.fallback.is_none(), "{:?}", db.fallback);
    }

    #[test]
    fn decisions_differ_across_devices() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let all = t.tune_all(&k, &["SNB", "Fermi"], &w);
        assert_eq!(all.len(), 2);
        assert_eq!(t.cached_decisions(), 2);
        for (_, d) in &all {
            assert!(d.is_ok());
        }
    }

    #[test]
    fn best_kernel_has_no_local_memory_when_transformed_wins() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let d = t.tune(&k, "SNB", &w).unwrap();
        let best = t.best_kernel(&k, "SNB", &w).unwrap();
        match d.choice {
            Choice::WithoutLocalMemory => assert_eq!(best.local_mem_bytes(), 0),
            _ => assert_eq!(best.local_mem_bytes(), k.local_mem_bytes()),
        }
    }

    #[test]
    fn untunable_kernel_reports_cleanly() {
        let k = compile(
            "__kernel void plain(__global float* a) { a[0] = 1.0f; }",
            &BuildOptions::new(),
        )
        .unwrap()
        .kernels
        .remove(0);
        let w = Workload::new(|| {
            let mut ctx = Context::new();
            let a = ctx.zeros_f32(4);
            (ctx, vec![ArgValue::Buffer(a)], NdRange::d1(1, 1))
        });
        let mut t = Tuner::new();
        assert!(matches!(
            t.tune(&k, "SNB", &w),
            Err(TuneError::NothingToDisable(_))
        ));
    }

    #[test]
    fn unknown_device_rejected() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        assert!(matches!(
            t.tune(&k, "TPU", &w),
            Err(TuneError::UnknownDevice(_))
        ));
    }

    #[test]
    fn tuning_records_decision_telemetry() {
        let k = staged_kernel();
        let w = workload();
        let rec = Arc::new(grover_obs::MemoryRecorder::new());
        let mut t = Tuner::new();
        t.recorder = rec.clone();
        let d = t.tune(&k, "SNB", &w).unwrap();

        let snap = rec.snapshot();
        let tune = snap.span("tune").expect("tune span recorded");
        assert_eq!(tune.attr_str("kernel"), Some("rev"));
        assert_eq!(tune.attr_str("device"), Some("SNB"));
        // The original plus every seeded candidate appear as launch spans
        // nested in the tune span.
        let n_cands = grover_devsim::candidate_sequences("SNB").len();
        assert!(n_cands >= 2, "seeded set should be a real search space");
        let launches = snap.spans_named("launch");
        assert_eq!(launches.len(), 1 + n_cands);
        for l in &launches {
            assert_eq!(l.parent, Some(tune.id));
            assert!(l.attr_u64("instructions").unwrap() > 0);
        }
        let measures = snap.events_named("measure");
        assert_eq!(measures.len(), 1 + n_cands);
        let decisions = snap.events_named("decision");
        assert_eq!(decisions.len(), 1);
        assert_eq!(
            decisions[0].attr("choice").and_then(Value::as_str),
            Some(d.choice.kind())
        );
        assert_eq!(
            decisions[0].attr("sequence").and_then(Value::as_str),
            Some(d.sequence.as_str())
        );
        assert_eq!(
            decisions[0].attr("cached").and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(false)
        );

        // A cache hit records a decision event tagged cached.
        t.tune(&k, "SNB", &w).unwrap();
        let snap = rec.snapshot();
        let decisions = snap.events_named("decision");
        assert_eq!(decisions.len(), 2);
        assert!(matches!(
            decisions[1].attr("cached"),
            Some(Value::Bool(true))
        ));
        // No second tune span was opened.
        assert_eq!(snap.spans_named("tune").len(), 1);
    }

    #[test]
    fn decision_records_winning_sequence_from_seeded_set() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let d = t.tune(&k, "SNB", &w).unwrap();
        let specs = grover_devsim::candidate_sequences("SNB");
        assert!(
            specs.contains(&d.sequence.as_str()),
            "winning sequence `{}` not in the seeded set",
            d.sequence
        );
        assert_eq!(t.races_run(), 1, "one race covers the whole candidate set");
    }

    #[test]
    fn explicit_sequences_restrict_the_race() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        t.sequences = Some(vec!["local-removal".into()]);
        let d = t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(d.sequence, "local-removal");
        assert!(d.fallback.is_none(), "{:?}", d.fallback);
        // An illegal explicit sequence is rejected before any measurement.
        let mut t2 = Tuner::new();
        t2.sequences = Some(vec!["barrier-elim".into()]);
        assert!(matches!(
            t2.tune(&k, "SNB", &w),
            Err(TuneError::InvalidSequence(_))
        ));
        assert_eq!(t2.races_run(), 0);
    }

    #[test]
    fn tune_pair_still_races_two_and_labels_the_tuned_pipeline() {
        let k = staged_kernel();
        let w = workload();
        let rec = Arc::new(grover_obs::MemoryRecorder::new());
        let mut t = Tuner::new();
        t.recorder = rec.clone();
        let mut transformed = k.clone();
        let report = grover_core::Grover::new().run_on(&mut transformed);
        let d = t.tune_pair(&k, &transformed, report, "SNB", &w).unwrap();
        assert_eq!(d.sequence, Sequence::tuned_pipeline().spec());
        assert_eq!(rec.snapshot().spans_named("launch").len(), 2);
    }

    #[test]
    fn gpu_prefers_local_memory_for_uncoalesced_reads() {
        // The reversal makes the transformed version read backwards within
        // each warp-chunk; the GPU should tend to keep local memory or be
        // similar, while SNB drops it. At minimum the decisions must be
        // internally consistent with np.
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        for dev in ["SNB", "Fermi"] {
            let d = t.tune(&k, dev, &w).unwrap();
            match d.choice {
                Choice::WithoutLocalMemory => assert!(d.np > 1.05),
                Choice::WithLocalMemory => assert!(d.np < 0.95),
                Choice::Similar => assert!(d.np >= 0.95 && d.np <= 1.05),
            }
        }
    }
}
