#![warn(missing_docs)]
//! # grover-tuner
//!
//! The auto-tuning framework the paper sketches as future work (§VIII):
//! *"Ultimately, we aim to incorporate Grover into a high-level auto-tuning
//! framework for OpenCL kernels, where code specialization is automated for
//! different classes of platforms."*
//!
//! Given a kernel and a representative workload, the [`Tuner`]:
//!
//! 1. runs the Grover pass to obtain the local-memory-free version,
//! 2. races both versions on the target device model,
//! 3. returns the winning kernel — and caches the decision per
//!    `(kernel, device)` so later launches pay nothing.
//!
//! ```
//! use grover_frontend::{compile, BuildOptions};
//! use grover_runtime::{ArgValue, Context, NdRange};
//! use grover_tuner::{Tuner, Workload};
//!
//! let module = compile(
//!     "__kernel void rev(__global float* in, __global float* out) {
//!          __local float lm[16];
//!          int lx = get_local_id(0);
//!          int wx = get_group_id(0);
//!          lm[lx] = in[wx * 16 + lx];
//!          barrier(CLK_LOCAL_MEM_FENCE);
//!          out[wx * 16 + lx] = lm[15 - lx];
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//! let kernel = module.kernel("rev").unwrap();
//!
//! let mut tuner = Tuner::new();
//! let workload = Workload::new(|| {
//!     let mut ctx = Context::new();
//!     let a = ctx.buffer_f32(&[0.0; 64]);
//!     let b = ctx.zeros_f32(64);
//!     (ctx, vec![ArgValue::Buffer(a), ArgValue::Buffer(b)], NdRange::d1(64, 16))
//! });
//! let decision = tuner.tune(kernel, "SNB", &workload).unwrap();
//! assert!(decision.np > 0.0);
//! let _best = tuner.best_kernel(kernel, "SNB", &workload).unwrap();
//! ```

use std::collections::HashMap;

use grover_core::{Grover, GroverReport};
use grover_devsim::Device;
use grover_ir::Function;
use grover_runtime::{enqueue_with_policy, ArgValue, Context, ExecPolicy, Limits, NdRange};

/// Which kernel version won.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Keep the original (local memory enabled).
    WithLocalMemory,
    /// Use the Grover-transformed version.
    WithoutLocalMemory,
    /// Within the similarity threshold — either works; the tuner returns
    /// the original for stability.
    Similar,
}

/// Outcome of one tuning run.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Device the decision applies to.
    pub device: String,
    /// The winning version.
    pub choice: Choice,
    /// `np = t_with / t_without` (paper §VI-B).
    pub np: f64,
    /// Simulated cycles with local memory.
    pub cycles_with: u64,
    /// Simulated cycles without local memory.
    pub cycles_without: u64,
    /// What Grover did to the kernel.
    pub report: GroverReport,
}

/// A representative workload: a factory producing a fresh context,
/// argument list and launch geometry for each measurement run.
pub struct Workload {
    make: Box<dyn Fn() -> (Context, Vec<ArgValue>, NdRange)>,
}

impl Workload {
    /// Wrap a workload factory.
    pub fn new(make: impl Fn() -> (Context, Vec<ArgValue>, NdRange) + 'static) -> Workload {
        Workload {
            make: Box::new(make),
        }
    }

    fn instantiate(&self) -> (Context, Vec<ArgValue>, NdRange) {
        (self.make)()
    }
}

/// Tuning failures.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// Grover could not remove any local memory — there is nothing to tune.
    NothingToDisable(String),
    /// No device model of that name exists.
    UnknownDevice(String),
    /// The interpreter failed while measuring.
    Execution(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NothingToDisable(r) => {
                write!(f, "kernel has no removable local memory:\n{r}")
            }
            TuneError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            TuneError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// The auto-tuner. Decisions are cached per `(kernel name, device)`.
///
/// The two kernel versions of one tuning run are *raced on two scoped
/// threads*: each measurement owns its device model, context and trace, so
/// they are independent and the measured cycle counts are identical to a
/// back-to-back run. `policy` additionally selects the work-group schedule
/// used inside each measurement.
#[derive(Default)]
pub struct Tuner {
    /// Similarity threshold (paper uses 5 %).
    pub threshold: f64,
    /// Work-group schedule used for the measurement launches.
    pub policy: ExecPolicy,
    cache: HashMap<(String, String), Decision>,
    transformed: HashMap<String, Function>,
}

impl Tuner {
    /// A tuner with the paper's 5 % similarity threshold.
    pub fn new() -> Tuner {
        Tuner {
            threshold: 0.05,
            policy: ExecPolicy::Serial,
            cache: HashMap::new(),
            transformed: HashMap::new(),
        }
    }

    /// A tuner measuring under an explicit work-group schedule.
    pub fn with_policy(policy: ExecPolicy) -> Tuner {
        Tuner {
            policy,
            ..Tuner::new()
        }
    }

    /// Number of cached decisions.
    pub fn cached_decisions(&self) -> usize {
        self.cache.len()
    }

    /// Tune `kernel` for `device` using `workload`; cached after the first
    /// call.
    pub fn tune(
        &mut self,
        kernel: &Function,
        device: &str,
        workload: &Workload,
    ) -> Result<Decision, TuneError> {
        let key = (kernel.name.clone(), device.to_string());
        if let Some(d) = self.cache.get(&key) {
            return Ok(d.clone());
        }
        let (transformed, report) = self.transform(kernel)?;

        // Race the two versions on two scoped threads. The workloads are
        // instantiated up front on this thread (the factory need not be
        // `Sync`); each measurement then runs fully independently.
        let w_with = workload.instantiate();
        let w_without = workload.instantiate();
        let policy = self.policy;
        let transformed_ref = &transformed;
        let (cycles_with, cycles_without) = std::thread::scope(|s| {
            let with = s.spawn(move || simulate(kernel, device, w_with, policy));
            let without = simulate(transformed_ref, device, w_without, policy);
            (with.join().expect("tuner race thread panicked"), without)
        });
        let cycles_with = cycles_with?;
        let cycles_without = cycles_without?;
        let np = cycles_with as f64 / cycles_without.max(1) as f64;
        let choice = if np > 1.0 + self.threshold {
            Choice::WithoutLocalMemory
        } else if np < 1.0 - self.threshold {
            Choice::WithLocalMemory
        } else {
            Choice::Similar
        };
        let d = Decision {
            device: device.to_string(),
            choice,
            np,
            cycles_with,
            cycles_without,
            report,
        };
        self.cache.insert(key, d.clone());
        Ok(d)
    }

    /// The kernel version the tuner recommends for `device`.
    pub fn best_kernel(
        &mut self,
        kernel: &Function,
        device: &str,
        workload: &Workload,
    ) -> Result<Function, TuneError> {
        let d = self.tune(kernel, device, workload)?;
        Ok(match d.choice {
            Choice::WithoutLocalMemory => self
                .transformed
                .get(&kernel.name)
                .cloned()
                .expect("transform cached by tune()"),
            _ => kernel.clone(),
        })
    }

    /// Tune across several devices at once (the per-platform specialisation
    /// table the paper's future work describes).
    pub fn tune_all(
        &mut self,
        kernel: &Function,
        devices: &[&str],
        workload: &Workload,
    ) -> Vec<(String, Result<Decision, TuneError>)> {
        devices
            .iter()
            .map(|&d| (d.to_string(), self.tune(kernel, d, workload)))
            .collect()
    }

    fn transform(&mut self, kernel: &Function) -> Result<(Function, GroverReport), TuneError> {
        if let Some(t) = self.transformed.get(&kernel.name) {
            // Re-run for the report only on a scratch copy (cheap).
            let mut scratch = kernel.clone();
            let report = Grover::new().run_on(&mut scratch);
            return Ok((t.clone(), report));
        }
        let mut transformed = kernel.clone();
        let report = Grover::new().run_on(&mut transformed);
        if report.removed_count() == 0 {
            return Err(TuneError::NothingToDisable(report.to_text()));
        }
        grover_ir::passes::PassManager::optimize_pipeline().run_to_fixpoint(&mut transformed, 8);
        self.transformed
            .insert(kernel.name.clone(), transformed.clone());
        Ok((transformed, report))
    }
}

fn simulate(
    kernel: &Function,
    device: &str,
    workload: (Context, Vec<ArgValue>, NdRange),
    policy: ExecPolicy,
) -> Result<u64, TuneError> {
    let mut dev =
        Device::by_name(device).ok_or_else(|| TuneError::UnknownDevice(device.to_string()))?;
    let (mut ctx, args, nd) = workload;
    enqueue_with_policy(
        &mut ctx,
        kernel,
        &args,
        &nd,
        &mut dev,
        &Limits::default(),
        policy,
    )
    .map_err(|e| TuneError::Execution(e.to_string()))?;
    Ok(dev.finish().cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};

    fn staged_kernel() -> Function {
        compile(
            "__kernel void rev(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 int wx = get_group_id(0);
                 lm[lx] = in[wx * 16 + lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[wx * 16 + lx] = lm[15 - lx];
             }",
            &BuildOptions::new(),
        )
        .unwrap()
        .kernels
        .remove(0)
    }

    fn workload() -> Workload {
        Workload::new(|| {
            let mut ctx = Context::new();
            let a = ctx.buffer_f32(&vec![1.0; 256]);
            let b = ctx.zeros_f32(256);
            (
                ctx,
                vec![ArgValue::Buffer(a), ArgValue::Buffer(b)],
                NdRange::d1(256, 16),
            )
        })
    }

    #[test]
    fn tunes_and_caches() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let d1 = t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(t.cached_decisions(), 1);
        let d2 = t.tune(&k, "SNB", &w).unwrap();
        assert_eq!(d1.np, d2.np);
        assert!(d1.cycles_with > 0 && d1.cycles_without > 0);
    }

    #[test]
    fn decisions_differ_across_devices() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let all = t.tune_all(&k, &["SNB", "Fermi"], &w);
        assert_eq!(all.len(), 2);
        assert_eq!(t.cached_decisions(), 2);
        for (_, d) in &all {
            assert!(d.is_ok());
        }
    }

    #[test]
    fn best_kernel_has_no_local_memory_when_transformed_wins() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        let d = t.tune(&k, "SNB", &w).unwrap();
        let best = t.best_kernel(&k, "SNB", &w).unwrap();
        match d.choice {
            Choice::WithoutLocalMemory => assert_eq!(best.local_mem_bytes(), 0),
            _ => assert_eq!(best.local_mem_bytes(), k.local_mem_bytes()),
        }
    }

    #[test]
    fn untunable_kernel_reports_cleanly() {
        let k = compile(
            "__kernel void plain(__global float* a) { a[0] = 1.0f; }",
            &BuildOptions::new(),
        )
        .unwrap()
        .kernels
        .remove(0);
        let w = Workload::new(|| {
            let mut ctx = Context::new();
            let a = ctx.zeros_f32(4);
            (ctx, vec![ArgValue::Buffer(a)], NdRange::d1(1, 1))
        });
        let mut t = Tuner::new();
        assert!(matches!(
            t.tune(&k, "SNB", &w),
            Err(TuneError::NothingToDisable(_))
        ));
    }

    #[test]
    fn unknown_device_rejected() {
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        assert!(matches!(
            t.tune(&k, "TPU", &w),
            Err(TuneError::UnknownDevice(_))
        ));
    }

    #[test]
    fn gpu_prefers_local_memory_for_uncoalesced_reads() {
        // The reversal makes the transformed version read backwards within
        // each warp-chunk; the GPU should tend to keep local memory or be
        // similar, while SNB drops it. At minimum the decisions must be
        // internally consistent with np.
        let k = staged_kernel();
        let w = workload();
        let mut t = Tuner::new();
        for dev in ["SNB", "Fermi"] {
            let d = t.tune(&k, dev, &w).unwrap();
            match d.choice {
                Choice::WithoutLocalMemory => assert!(d.np > 1.05),
                Choice::WithLocalMemory => assert!(d.np < 0.95),
                Choice::Similar => assert!(d.np >= 0.95 && d.np <= 1.05),
            }
        }
    }
}
